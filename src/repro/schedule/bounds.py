"""Latency bounds of a fault-tolerant schedule.

* The **lower bound** (0-crash latency) is read off the committed times:
  the latest instant at which at least one replica of each task is done.
* The **upper bound** — "always achieved even with ε failures ... computed
  using as a finish time the completion time of the last replica of a task"
  (paper §4.2) — is obtained by a worst-case forward propagation over the
  commit log: every replica waits for the *last* supply of each predecessor
  (as if the earlier copies had been lost) and every resource chain is
  propagated pessimistically.
"""

from __future__ import annotations

from repro.schedule.schedule import CommEvent, Replica, Schedule


def latency_lower_bound(schedule: Schedule) -> float:
    """Alias of :meth:`Schedule.latency` (0-crash latency)."""
    return schedule.latency()


def latency_upper_bound(schedule: Schedule) -> float:
    """Worst-case latency over every ≤ ε failure pattern (see module doc).

    The propagation preserves the committed per-resource order, delays
    every message until its source's worst-case completion, and starts
    every replica after the worst-case arrival of *all* its supplies.
    """
    m = schedule.instance.num_procs
    proc_ub = [0.0] * m
    send_ub = [0.0] * m
    recv_ub = [0.0] * m
    link_ub: dict[tuple[int, int], float] = {}
    replica_ub: dict[int, float] = {}  # replica.seq -> worst-case finish
    event_ub: dict[int, float] = {}  # event.seq -> worst-case arrival

    for entry in schedule.commit_log:
        if isinstance(entry, CommEvent):
            lk = (entry.src_proc, entry.dst_proc)
            start = max(
                entry.start,
                replica_ub[entry.src_replica.seq],
                send_ub[entry.src_proc],
                recv_ub[entry.dst_proc],
                link_ub.get(lk, 0.0),
            )
            finish = start + entry.duration
            event_ub[entry.seq] = finish
            send_ub[entry.src_proc] = finish
            recv_ub[entry.dst_proc] = finish
            link_ub[lk] = finish
        else:
            r: Replica = entry
            data = 0.0
            for pred_events in r.inputs.values():
                worst = max(event_ub[e.seq] for e in pred_events)
                if worst > data:
                    data = worst
            for local in r.local_inputs.values():
                lb = replica_ub[local.seq]
                if lb > data:
                    data = lb
            start = max(r.start, proc_ub[r.proc], data)
            finish = start + r.duration
            replica_ub[r.seq] = finish
            proc_ub[r.proc] = finish

    return max(
        max(replica_ub[r.seq] for r in reps) for reps in schedule.replicas
    )
