"""Chrome-trace export of schedules and crash replays.

Writes the ``chrome://tracing`` / Perfetto JSON array format: one lane per
processor for computations, one lane per port for transfers.  Loading the
file in a trace viewer gives an interactive Gantt with zoom — far more
usable than ASCII for the paper-scale schedules.  Replay results export
the *actual* post-failure timeline, with dropped messages and dead
replicas omitted.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Optional

from repro.fault.simulator import ExecutionResult, ReplicaStatus
from repro.schedule.schedule import Schedule

# Trace viewers sort lanes by tid; keep computations first.
_COMPUTE_LANE = 0
_SEND_LANE = 1
_RECV_LANE = 2


def _event(name: str, cat: str, pid: int, tid: int, start: float, dur: float,
           args: Optional[dict] = None) -> dict:
    return {
        "name": name,
        "cat": cat,
        "ph": "X",  # complete event
        "pid": pid,
        "tid": tid,
        "ts": start * 1000.0,  # viewer expects microseconds; scale for zoom
        "dur": dur * 1000.0,
        "args": args or {},
    }


def schedule_to_trace(schedule: Schedule) -> list[dict]:
    """Trace events of the committed (0-crash) schedule."""
    names = schedule.instance.graph.names
    events: list[dict] = []
    for reps in schedule.replicas:
        for r in reps:
            events.append(
                _event(
                    f"{names[r.task]}#{r.index}",
                    f"compute/{r.kind}",
                    pid=r.proc,
                    tid=_COMPUTE_LANE,
                    start=r.start,
                    dur=r.duration,
                    args={"task": r.task, "replica": r.index, "kind": r.kind},
                )
            )
    for e in schedule.events:
        label = f"{names[e.src_task]}->{names[e.dst_task]}"
        args = {"volume": e.volume, "src": e.src_proc, "dst": e.dst_proc}
        events.append(
            _event(label, "send", e.src_proc, _SEND_LANE, e.start, e.duration, args)
        )
        events.append(
            _event(label, "recv", e.dst_proc, _RECV_LANE, e.start, e.duration, args)
        )
    return events


def replay_to_trace(result: ExecutionResult) -> list[dict]:
    """Trace events of an executed (possibly failed) schedule replay."""
    schedule = result.schedule
    names = schedule.instance.graph.names
    events: list[dict] = []
    for out in result.replica_outcomes.values():
        r = out.replica
        if out.status is not ReplicaStatus.COMPLETED:
            continue
        events.append(
            _event(
                f"{names[r.task]}#{r.index}",
                f"compute/{r.kind}",
                pid=r.proc,
                tid=_COMPUTE_LANE,
                start=out.start,
                dur=out.finish - out.start,
                args={"task": r.task, "replica": r.index},
            )
        )
    for eo in result.event_outcomes.values():
        if not eo.delivered:
            continue
        e = eo.event
        label = f"{names[e.src_task]}->{names[e.dst_task]}"
        dur = eo.finish - eo.start
        events.append(_event(label, "send", e.src_proc, _SEND_LANE, eo.start, dur))
        events.append(_event(label, "recv", e.dst_proc, _RECV_LANE, eo.start, dur))
    for proc in result.scenario.failed_procs:
        events.append(
            _event(
                "FAILURE",
                "fault",
                pid=proc,
                tid=_COMPUTE_LANE,
                start=result.scenario.fail_time(proc),
                dur=0.0,
            )
        )
    return events


def write_trace(
    source: Schedule | ExecutionResult, path: str | Path
) -> Path:
    """Write a trace JSON file loadable in chrome://tracing / Perfetto."""
    if isinstance(source, Schedule):
        events = schedule_to_trace(source)
    else:
        events = replay_to_trace(source)
    path = Path(path)
    path.write_text(json.dumps(events))
    return path
