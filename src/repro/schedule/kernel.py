"""The vectorized placement kernel (fast-path trial evaluation).

:class:`TrialKernel` mirrors the arithmetic of
``ScheduleBuilder._place(record=False)`` — eq. (6) message serialization
under the bi-directional one-port model and its variants — **without**
touching the network's undo log.  A slow-path ``trial()`` reserves every
message on the real network and rolls the reservations back; profiling
shows that reserve-and-rollback bookkeeping dominates scheduler wall
clock (>80% on the figure campaigns).  The kernel instead reads the
network's committed frontiers and simulates the serialization locally,
so evaluating a candidate has no side effects to undo.

Model support comes from the **resource-frontier protocol**
(:mod:`repro.comm.base`): every network model declares its contended
resources via ``kernel_caps()`` and exposes them through
``frontier_view()``.  The kernel dispatches purely on the declared
capabilities — it never inspects concrete model types — and covers:

* scalar port/link frontiers (the paper's bi-directional one-port, the
  §2 uni-port and no-overlap variants, and the contention-free
  macro-dataflow model);
* **routed** models (§7 sparse topologies): serialization takes the max
  over the per-hop link frontiers of each message's static route, and
  the epoch cache tracks per-directed-link versions so two routes
  sharing a physical link invalidate each other;
* **gap-timeline** models (``OnePortNetwork(policy="insertion")``):
  trials replay the insertion scan against trial-local copies of the
  busy-interval timelines.

A model whose ``kernel_caps()`` is ``None`` (or declares a combination
the kernel cannot mirror) falls back to the exact slow path with a
one-time ``logging`` warning — ``fast=True`` never changes results.

Three evaluation paths, all producing **bit-identical** :class:`Trial`
results (same IEEE-754 operations in the same order — the equivalence
test suite asserts identical commit logs end to end):

* ``batch_trials`` — candidate finish times for *all* eligible
  processors of a task in one pass over shared per-task message state.
  Small platforms use a tuned scalar loop; past ``numpy_threshold``
  work items the kernel switches to a NumPy formulation that lexsorts
  the eq. (6) keys for every candidate at once and advances the
  serialization frontier matrices step by step (scalar-frontier models
  only; routed and gap-timeline algebra always runs the scalar loop).
* ``trial_with_heads`` — one candidate with designated per-predecessor
  suppliers (CAFT's one-to-one rounds pick different heads per
  candidate) over the shared per-task entry state.
* an **epoch cache** — FTBAR re-scores every free task against every
  processor after every placement, but a placement only dirties the
  processors (and, for routed models, directed links) it touched.  Each
  committed replica/message bumps the epochs of the resources it
  reserved; a cached trial is reused verbatim when the epochs of every
  resource it read are unchanged and the supplier pools did not grow.
"""

from __future__ import annotations

import logging
from bisect import insort
from typing import Mapping, Optional, Sequence

import numpy as np

from repro.comm.base import KernelCaps, common_gap_start
from repro.schedule.schedule import Replica, Trial
from repro.utils.errors import SchedulingError

_INF = float("inf")

logger = logging.getLogger(__name__)

#: model signatures already warned about (one warning per model kind)
_fallback_warned: set[str] = set()


def _unsupported_reason(caps: Optional[KernelCaps]) -> Optional[str]:
    """Why the kernel cannot serve a model; ``None`` = fully supported."""
    if caps is None:
        return "it declares no kernel capabilities (kernel_caps() is None)"
    if caps.routed and (caps.gap_timelines or caps.shared_port or caps.compute_blocks):
        return (
            "the kernel has no evaluator for routed combined with "
            "gap-timeline/shared-port/no-overlap capabilities"
        )
    if caps.gap_timelines and (caps.shared_port or caps.compute_blocks):
        return (
            "the kernel has no evaluator for gap timelines combined with "
            "shared-port/no-overlap capabilities"
        )
    if caps.shared_port and caps.compute_blocks:
        return (
            "the kernel has no evaluator for a shared port combined with "
            "compute-blocking communication"
        )
    if not caps.contention and (
        caps.routed or caps.gap_timelines or caps.shared_port or caps.compute_blocks
    ):
        return "a contention-free model cannot declare contended-resource capabilities"
    return None


def _warn_fallback(network, reason: str) -> None:
    """One-time warning when ``fast=True`` degrades to the exact path."""
    key = (
        f"{type(network).__module__}.{type(network).__qualname__}"
        f":{getattr(network, 'name', '')}"
    )
    if key in _fallback_warned:
        return
    _fallback_warned.add(key)
    logger.warning(
        "fast=True: network model %r (%s) is outside the placement kernel — %s; "
        "falling back to the exact reserve-and-rollback path "
        "(identical schedules, slower trials)",
        getattr(network, "name", type(network).__name__),
        type(network).__qualname__,
        reason,
    )


def _caps_kind(caps: KernelCaps) -> str:
    """Internal evaluator family for a supported capability set."""
    if not caps.contention:
        return "macro"
    if caps.routed:
        return "routed"
    if caps.gap_timelines:
        return "insertion"
    if caps.shared_port:
        return "uniport"
    if caps.compute_blocks:
        return "nooverlap"
    return "oneport"


class _TaskEntries:
    """Per-task supplier state shared by every candidate processor.

    Built once per (task, supplier-pool version) and reused across the
    whole candidate sweep — this is the per-predecessor
    message-serialization state the kernel caches.
    """

    __slots__ = (
        "preds",
        "vols",
        "pools",
        "local",
        "selfsuff",
        "srcs",
        "sig",
        "np_arrays",
        "np_proc_tables",
        "np_padded",
    )

    def __init__(self, graph, task: int, sources: Mapping[int, Sequence[Replica]]):
        preds = graph.preds(task)
        self.preds = preds
        self.vols: list[float] = []
        #: per pred slot: [(index, src proc, ready time), ...] in pool order
        self.pools: list[list[tuple[int, int, float]]] = []
        #: per pred slot: proc -> earliest co-located supply (min by (finish, index))
        self.local: list[dict[int, float]] = []
        #: per pred slot: procs hosting a self-sufficient co-located replica
        self.selfsuff: list[frozenset[int]] = []
        srcs: set[int] = set()
        for pred in preds:
            try:
                srcs_list = sources[pred]
            except KeyError:
                raise SchedulingError(
                    f"no sources provided for predecessor t{pred} of t{task}"
                ) from None
            if not srcs_list:
                raise SchedulingError(
                    f"empty source list for predecessor t{pred} of t{task}"
                )
            self.vols.append(graph.volume(pred, task))
            pool = []
            local: dict[int, tuple[float, int]] = {}
            suff = set()
            for r in srcs_list:
                proc = r.proc
                pool.append((r.index, proc, r.finish))
                srcs.add(proc)
                key = (r.finish, r.index)
                prev = local.get(proc)
                if prev is None or key < prev:
                    local[proc] = key
                if r.support <= frozenset((proc,)):
                    suff.add(proc)
            self.pools.append(pool)
            self.local.append({p: k[0] for p, k in local.items()})
            self.selfsuff.append(frozenset(suff))
        self.srcs = sorted(srcs)
        self.sig = tuple(len(p) for p in self.pools)
        self.np_arrays = None
        self.np_proc_tables = None
        self.np_padded: dict = {}

    def arrays(self):
        """Flat NumPy arrays over all pool entries (built lazily)."""
        if self.np_arrays is None:
            pred_l, idx_l, src_l, ready_l, slot_l, vol_l = [], [], [], [], [], []
            for slot, (pred, pool) in enumerate(zip(self.preds, self.pools)):
                vol = self.vols[slot]
                for index, src, ready in pool:
                    pred_l.append(pred)
                    idx_l.append(index)
                    src_l.append(src)
                    ready_l.append(ready)
                    slot_l.append(slot)
                    vol_l.append(vol)
            self.np_arrays = (
                np.asarray(pred_l, dtype=np.int64),
                np.asarray(idx_l, dtype=np.int64),
                np.asarray(src_l, dtype=np.int64),
                np.asarray(ready_l, dtype=np.float64),
                np.asarray(slot_l, dtype=np.int64),
                np.asarray(vol_l, dtype=np.float64),
            )
        return self.np_arrays

    def proc_tables(self, num_procs: int, strict: bool):
        """Per-(slot, proc) local-supply and suppression tables (lazy).

        ``local_sup[s, p]`` is the earliest co-located supply of slot ``s``
        on processor ``p`` (``inf`` when none); ``suppressed[s, p]`` marks
        predecessors whose whole remote pool is dropped on ``p`` (strict
        mode, or a self-sufficient co-located replica).
        """
        if self.np_proc_tables is None:
            nslots = len(self.preds)
            local_sup = np.full((nslots, num_procs), _INF)
            suppressed = np.zeros((nslots, num_procs), dtype=bool)
            for slot in range(nslots):
                suff = self.selfsuff[slot]
                for p, finish in self.local[slot].items():
                    local_sup[slot, p] = finish
                    if strict or p in suff:
                        suppressed[slot, p] = True
            self.np_proc_tables = (local_sup, suppressed)
        return self.np_proc_tables

    def padded(self, rmax: int, smax: int, num_procs: int, strict: bool):
        """All per-task arrays padded to the sweep's ``(rmax, smax)`` shape.

        Cached per shape: a task re-swept with the same global padding
        (the common FTBAR case) contributes zero assembly work beyond a
        stack of cached rows.
        """
        key = (rmax, smax)
        cached = self.np_padded.get(key)
        if cached is not None:
            return cached
        pred_a, idx_a, src_a, ready_a, slot_a, vol_a = self.arrays()
        r = pred_a.size
        nslots = len(self.preds)
        pred = np.zeros(rmax, dtype=np.int64)
        idx = np.zeros(rmax, dtype=np.int64)
        src = np.zeros(rmax, dtype=np.int64)
        ready = np.zeros(rmax)
        slot = np.zeros(rmax, dtype=np.int64)
        vol = np.zeros(rmax)
        mask = np.zeros(rmax, dtype=bool)
        sup = np.zeros((rmax, num_procs), dtype=bool)
        local = np.full((smax, num_procs), _INF)
        slotmask = np.zeros(smax, dtype=bool)
        pred[:r] = pred_a
        idx[:r] = idx_a
        src[:r] = src_a
        ready[:r] = ready_a
        slot[:r] = slot_a
        vol[:r] = vol_a
        mask[:r] = True
        slotmask[:nslots] = True
        if nslots:
            local_sup, suppressed = self.proc_tables(num_procs, strict)
            local[:nslots] = local_sup
            sup[:r] = suppressed[slot_a]
        cached = (pred, idx, src, ready, slot, vol, mask, sup, local, slotmask)
        self.np_padded[key] = cached
        return cached


class TrialKernel:
    """Exact, side-effect-free trial evaluation over frontier views."""

    #: switch to the NumPy batch formulation past this many work items
    #: (candidates × pool entries); below it the scalar loop wins.
    numpy_threshold = 2048
    #: vectorize a cross-task sweep once it has at least this many
    #: uncached (task, processor) rows; below that the scalar loop beats
    #: the NumPy dispatch overhead (the crossover sits around the
    #: paper's m=20 platforms).
    sweep_numpy_threshold = 256

    __slots__ = (
        "builder",
        "network",
        "instance",
        "graph",
        "caps",
        "kind",
        "_frontiers",
        "_vector_ok",
        "_cost",
        "_delay",
        "_m",
        "_version",
        "_send_changed",
        "_recv_changed",
        "_link_changed",
        "_entries",
        "_cache",
    )

    def __init__(self, builder, caps: KernelCaps) -> None:
        self.builder = builder
        self.network = builder.network
        self.instance = builder.instance
        self.graph = builder.instance.graph
        self.caps = caps
        self.kind = _caps_kind(caps)
        view = self.network.frontier_view()
        if view is None:
            raise SchedulingError(
                f"network model {self.network.name!r} declares kernel_caps() "
                "but frontier_view() returned None"
            )
        self._frontiers = view
        #: the NumPy batch formulation covers the scalar-frontier algebra
        #: only; routed hop maxima and gap-timeline scans stay scalar
        self._vector_ok = not (caps.routed or caps.gap_timelines)
        self._cost = builder.instance.exec_cost.tolist()
        #: unit delays come from the *network's* platform (for routed
        #: models these are the end-to-end route delays), exactly what
        #: the slow path's ``transfer_time`` uses
        self._delay = view.delay
        self._m = builder.instance.num_procs
        #: monotone commit counter plus, per processor, the version at
        #: which its send side (port + outgoing links) and receive side
        #: (port, incoming links, ready time, compute floor) last moved
        self._version = 0
        self._send_changed = [0] * self._m
        self._recv_changed = [0] * self._m
        #: routed models: per-directed-physical-link versions — two
        #: routes sharing a hop must invalidate each other's cache lines
        self._link_changed = [0] * view.num_links if caps.routed else None
        #: task -> (pool signature, _TaskEntries)
        self._entries: dict[int, tuple[tuple, _TaskEntries]] = {}
        #: task -> (pool signature, {proc: (version, Trial)})
        self._cache: dict[int, tuple[tuple, dict]] = {}

    @classmethod
    def create(cls, builder) -> Optional["TrialKernel"]:
        """Kernel for ``builder``'s network, or ``None`` (with a one-time
        warning) when the model's declared capabilities are unsupported."""
        caps = builder.network.kernel_caps()
        reason = _unsupported_reason(caps)
        if reason is not None:
            _warn_fallback(builder.network, reason)
            return None
        return cls(builder, caps)

    # ------------------------------------------------------------------
    # Cache invalidation
    # ------------------------------------------------------------------
    def note_commit(self, proc: int, placed) -> None:
        """Record which resources a commit dirtied.

        ``proc`` hosts the new replica: its ready time, receive port,
        incoming links and compute floor moved (receive side).  Every
        placed message with nonzero duration moved its sender's port and
        the link(s) toward ``proc`` (send side; for routed models every
        directed hop of the message's route gets its epoch bumped).  The
        contention-free macro model reserves nothing, so only the host's
        ready time moves.

        The shared-port (uniport) model has one engine per processor —
        its send and receive frontiers are the *same* array — so there
        every touched processor moves on both sides at once.
        """
        self._version += 1
        v = self._version
        kind = self.kind
        recv_changed = self._recv_changed
        recv_changed[proc] = v
        if kind == "macro":
            return
        send_changed = self._send_changed
        if kind == "routed":
            link_changed = self._link_changed
            hop_row = self._frontiers.route_hops
            for _pred, r, start, finish in placed:
                if finish > start:
                    send_changed[r.proc] = v
                    for h in hop_row[r.proc][proc]:
                        link_changed[h] = v
            return
        uni = kind == "uniport"
        if uni:
            # the host's receive activity occupies its shared port, which
            # is also what suppliers' sender_bound/send state reads
            send_changed[proc] = v
        for _pred, r, start, finish in placed:
            if finish > start:
                send_changed[r.proc] = v
                if uni:
                    # a sender's shared port is likewise its receive side
                    recv_changed[r.proc] = v
        if kind == "nooverlap":
            # note_compute advances the host's send port as well
            send_changed[proc] = v

    # ------------------------------------------------------------------
    # Entry building / caching
    # ------------------------------------------------------------------
    def _entries_for(self, task: int, sources) -> tuple[_TaskEntries, bool]:
        """Entry state for ``task``; second element: came from the cache line.

        Only *canonical* source maps — every pool is the live
        ``schedule.replicas[pred]`` list — are cached: those lists are
        append-only, so (task, per-pool length) fully determines their
        content.  An arbitrary filtered pool of the same length would
        alias the cache line, so it is built fresh (and the caller must
        not reuse cached trials for it either).
        """
        preds = self.graph.preds(task)
        replicas = self.builder.schedule.replicas
        try:
            canonical = all(sources[p] is replicas[p] for p in preds)
        except KeyError as exc:
            raise SchedulingError(
                f"no sources provided for predecessor t{exc.args[0]} of t{task}"
            ) from None
        if not canonical:
            return _TaskEntries(self.graph, task, sources), False
        sig = tuple(len(sources[p]) for p in preds)
        cached = self._entries.get(task)
        if cached is not None and cached[0] == sig:
            return cached[1], True
        entries = _TaskEntries(self.graph, task, sources)
        self._entries[task] = (sig, entries)
        return entries, True

    def _srcs_changed_after(self, entries: _TaskEntries) -> int:
        """Latest version at which any supplier's send side moved.

        A trial of this task on candidate ``p`` reads ``send_free[src]``
        and the link frontier(s) toward ``p`` for every supplier ``src``
        — both move only when ``src`` sends (routed link sharing is
        covered separately by the per-hop epochs).  Shared by every
        candidate, so the cache validity check per processor is O(1)
        for clique models: a cached trial computed at version ``v`` is
        exact iff ``v >= max(srcs_changed, recv_changed[p])`` (plus
        ``send_changed[p]`` for the no-overlap compute floor, plus the
        hop epochs of every supplier route for routed models).
        """
        if self.kind == "macro":
            return 0
        send_changed = self._send_changed
        latest = 0
        for s in entries.srcs:
            c = send_changed[s]
            if c > latest:
                latest = c
        return latest

    def _hops_changed_after(self, entries: _TaskEntries, proc: int) -> int:
        """Latest version at which any supplier-route hop toward ``proc``
        moved (routed models only — route sharing invalidation)."""
        link_changed = self._link_changed
        hop_row = self._frontiers.route_hops
        latest = 0
        for s in entries.srcs:
            for h in hop_row[s][proc]:
                c = link_changed[h]
                if c > latest:
                    latest = c
        return latest

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def batch_trials(
        self,
        task: int,
        procs: Sequence[int],
        sources: Mapping[int, Sequence[Replica]],
    ) -> list[Trial]:
        """Candidate trials for every processor in ``procs`` (one pass)."""
        entries, _cacheable = self._entries_for(task, sources)
        if (
            self._vector_ok
            and len(procs) * max(1, sum(entries.sig)) >= self.numpy_threshold
        ):
            return self._batch_numpy(task, procs, entries)
        return [self._eval(task, p, entries) for p in procs]

    def trial_with_heads(
        self,
        task: int,
        proc: int,
        sources: Mapping[int, Sequence[Replica]],
        heads: Mapping[int, Replica],
    ) -> Trial:
        """One candidate where each predecessor in ``heads`` supplies via
        its designated replica only (CAFT's one-to-one rounds); the rest
        fall back to the full ``sources`` pool.  Sharing ``sources``
        across the candidate sweep lets the per-task entry state be built
        once instead of once per processor.
        """
        entries, _cacheable = self._entries_for(task, sources)
        return self._eval(task, proc, entries, heads)

    def sweep_trials(
        self,
        tasks: Sequence[int],
        sources_map: Mapping[int, Mapping[int, Sequence[Replica]]],
    ) -> dict[int, list[Trial]]:
        """Trials for *every* (free task, processor) pair in one pass.

        FTBAR's step pattern: re-score all free tasks against all
        processors after every placement.  Cached rows whose inputs are
        untouched are reused; the remaining rows are evaluated together —
        one NumPy pass once the sweep is big enough to pay for itself.
        Free tasks have no replicas yet, so every processor is eligible.
        """
        m = self._m
        version = self._version
        recv_changed = self._recv_changed
        send_changed = self._send_changed
        nooverlap = self.kind == "nooverlap"
        routed = self.kind == "routed"

        out: dict[int, list[Optional[Trial]]] = {}
        misses: list[tuple[_TaskEntries, int, int]] = []
        slots: list[tuple[int, int, dict]] = []  # (task, proc index, cache dict)
        for task in tasks:
            entries, cacheable = self._entries_for(task, sources_map[task])
            if not cacheable:
                # non-canonical pools must not alias the trial cache
                self._cache.pop(task, None)
                per_proc: dict[int, tuple[int, Trial]] = {}
            else:
                cached = self._cache.get(task)
                if cached is None or cached[0] != entries.sig:
                    per_proc = {}
                    self._cache[task] = (entries.sig, per_proc)
                else:
                    per_proc = cached[1]
            srcs_changed = self._srcs_changed_after(entries)
            trials: list[Optional[Trial]] = [None] * m
            for p in range(m):
                hit = per_proc.get(p)
                if hit is not None:
                    v = hit[0]
                    if (
                        v >= srcs_changed
                        and v >= recv_changed[p]
                        and (not nooverlap or v >= send_changed[p])
                        and (not routed or v >= self._hops_changed_after(entries, p))
                    ):
                        trials[p] = hit[1]
                        continue
                misses.append((entries, task, p))
                slots.append((task, p, per_proc))
            out[task] = trials

        if misses:
            if self._vector_ok and len(misses) >= self.sweep_numpy_threshold:
                fresh = self._eval_rows(misses)
            else:
                fresh = [self._eval(t, p, e) for e, t, p in misses]
            for (task, p, per_proc), trial in zip(slots, fresh):
                per_proc[p] = (version, trial)
                out[task][p] = trial
        return out

    # ------------------------------------------------------------------
    # Scalar evaluation (exact mirror of ScheduleBuilder._place)
    # ------------------------------------------------------------------
    def _finish_trial(
        self,
        task: int,
        proc: int,
        loc: list,
        arrival: list,
        floor: float,
    ) -> Trial:
        """Shared eq. (6) epilogue: merge local/remote supplies into the
        data-ready time, apply the compute floor and processor ready
        time, and materialize the :class:`Trial`.  Single-sourced so the
        scalar, routed and insertion evaluators cannot drift apart."""
        data_ready = 0.0
        for slot in range(len(loc)):
            supply = loc[slot]
            if supply is None:
                supply = _INF
            a = arrival[slot]
            if a < supply:
                supply = a
            if supply > data_ready:
                data_ready = supply

        start = self.builder.proc_ready[proc]
        if floor > start:
            start = floor
        if data_ready > start:
            start = data_ready
        finish = start + self._cost[task][proc]
        return Trial(task, proc, start, finish, data_ready)

    def _eval(
        self,
        task: int,
        proc: int,
        entries: _TaskEntries,
        heads: Optional[Mapping[int, Replica]] = None,
    ) -> Trial:
        kind = self.kind
        if kind == "routed":
            return self._eval_routed(task, proc, entries, heads)
        if kind == "insertion":
            return self._eval_insertion(task, proc, entries, heads)
        view = self._frontiers
        m = self._m
        delay = self._delay
        strict = self.builder.strict_local_suppression
        preds = entries.preds
        vols = entries.vols
        pools = entries.pools
        locals_ = entries.local
        selfsuff = entries.selfsuff
        nslots = len(preds)
        macro = kind == "macro"
        if not macro:
            send0 = view.send_free
            link0 = view.link_free
            lbase = proc  # link index of src -> proc is src * m + proc

        # eq. (6): collect remote messages with their sender-side keys.
        # (The contention-free macro model needs no keys: arrivals are
        # order-independent, so the sort is skipped entirely.)
        remote: list[tuple] = []
        loc: list[Optional[float]] = [None] * nslots
        for slot in range(nslots):
            pred = preds[slot]
            if heads is not None and pred in heads:
                # Designated one-to-one supplier: sole source for this
                # predecessor — co-located means pure local supply.
                h = heads[pred]
                src = h.proc
                if src == proc:
                    loc[slot] = h.finish
                    continue
                ready = h.finish
                w = vols[slot] * delay[src][proc]
                if macro or w == 0.0:
                    key = ready
                else:
                    key = ready
                    sf = send0[src]
                    if sf > key:
                        key = sf
                    lf = link0[src * m + lbase]
                    if lf > key:
                        key = lf
                    key += w
                remote.append((key, pred, h.index, src, slot, ready, w))
                continue
            local = locals_[slot]
            lf_local = local.get(proc)
            if lf_local is not None:
                loc[slot] = lf_local
                if strict or proc in selfsuff[slot]:
                    continue
            vol = vols[slot]
            for index, src, ready in pools[slot]:
                if src == proc:
                    continue
                w = vol * delay[src][proc]
                if macro or w == 0.0:
                    key = ready
                else:
                    key = ready
                    sf = send0[src]
                    if sf > key:
                        key = sf
                    lf = link0[src * m + lbase]
                    if lf > key:
                        key = lf
                    key += w
                remote.append((key, pred, index, src, slot, ready, w))

        # Serialize the messages against simulated port/link frontiers.
        arrival = [_INF] * nslots
        if macro:
            for _key, _pred, _index, _src, slot, ready, w in remote:
                f = ready + w
                if f < arrival[slot]:
                    arrival[slot] = f
            floor = 0.0
        else:
            remote.sort()
            # Uniport aliasing needs no special casing: ``send_free`` IS
            # ``recv_free`` there, so ``send0`` reads the shared port and
            # the overlays below touch disjoint indices (src != proc).
            rf = view.recv_free[proc]
            sf_sim: dict[int, float] = {}
            lf_sim: dict[int, float] = {}
            for _key, _pred, _index, src, slot, ready, w in remote:
                if w == 0.0:
                    f = ready
                else:
                    start = ready
                    s = sf_sim.get(src)
                    if s is None:
                        s = send0[src]
                    if s > start:
                        start = s
                    if rf > start:
                        start = rf
                    l = lf_sim.get(src)
                    if l is None:
                        l = link0[src * m + lbase]
                    if l > start:
                        start = l
                    f = start + w
                    sf_sim[src] = f
                    rf = f
                    lf_sim[src] = f
                if f < arrival[slot]:
                    arrival[slot] = f
            if kind == "nooverlap":
                floor = send0[proc]
                if rf > floor:
                    floor = rf
            else:
                floor = 0.0

        return self._finish_trial(task, proc, loc, arrival, floor)

    def _collect_messages(self, proc, entries, heads, key_of):
        """eq. (6) prologue shared by the routed/insertion evaluators.

        Splits each predecessor's supply into a co-located replica and
        remote messages sorted by their sender-side keys (``key_of(src,
        ready, w)``) — the same slot loop ``_eval`` inlines for the
        scalar-frontier models, with the key computation abstracted.
        """
        delay = self._delay
        strict = self.builder.strict_local_suppression
        preds = entries.preds
        vols = entries.vols
        pools = entries.pools
        locals_ = entries.local
        selfsuff = entries.selfsuff
        nslots = len(preds)
        remote: list[tuple] = []
        loc: list[Optional[float]] = [None] * nslots
        for slot in range(nslots):
            pred = preds[slot]
            if heads is not None and pred in heads:
                h = heads[pred]
                src = h.proc
                if src == proc:
                    loc[slot] = h.finish
                    continue
                ready = h.finish
                w = vols[slot] * delay[src][proc]
                key = ready if w == 0.0 else key_of(src, ready, w)
                remote.append((key, pred, h.index, src, slot, ready, w))
                continue
            local = locals_[slot]
            lf_local = local.get(proc)
            if lf_local is not None:
                loc[slot] = lf_local
                if strict or proc in selfsuff[slot]:
                    continue
            vol = vols[slot]
            for index, src, ready in pools[slot]:
                if src == proc:
                    continue
                w = vol * delay[src][proc]
                key = ready if w == 0.0 else key_of(src, ready, w)
                remote.append((key, pred, index, src, slot, ready, w))
        remote.sort()
        return loc, remote

    def _eval_routed(
        self,
        task: int,
        proc: int,
        entries: _TaskEntries,
        heads: Optional[Mapping[int, Replica]] = None,
    ) -> Trial:
        """Route-aware serialization (§7): a message's start clears its
        sender port, the receiver port and **every** directed hop of its
        static route — the max over the hop frontiers replaces the single
        link scalar of the clique models."""
        view = self._frontiers
        send0 = view.send_free
        link0 = view.link_free
        hop_row = view.route_hops
        nslots = len(entries.preds)

        def key_of(src, ready, w):
            key = ready
            sf = send0[src]
            if sf > key:
                key = sf
            for hp in hop_row[src][proc]:
                lf = link0[hp]
                if lf > key:
                    key = lf
            return key + w

        loc, remote = self._collect_messages(proc, entries, heads, key_of)

        arrival = [_INF] * nslots
        rf = view.recv_free[proc]
        sf_sim: dict[int, float] = {}
        lf_sim: dict[int, float] = {}  # per directed hop id
        for _key, _pred, _index, src, slot, ready, w in remote:
            if w == 0.0:
                f = ready
            else:
                start = ready
                s = sf_sim.get(src)
                if s is None:
                    s = send0[src]
                if s > start:
                    start = s
                if rf > start:
                    start = rf
                hops = hop_row[src][proc]
                for hp in hops:
                    l = lf_sim.get(hp)
                    if l is None:
                        l = link0[hp]
                    if l > start:
                        start = l
                f = start + w
                sf_sim[src] = f
                rf = f
                for hp in hops:
                    lf_sim[hp] = f
            if f < arrival[slot]:
                arrival[slot] = f

        return self._finish_trial(task, proc, loc, arrival, 0.0)

    def _eval_insertion(
        self,
        task: int,
        proc: int,
        entries: _TaskEntries,
        heads: Optional[Mapping[int, Replica]] = None,
    ) -> Trial:
        """Gap-aware serialization for the insertion policy: eq. (6)
        ordering still comes from the scalar sender-side frontiers (that
        is what ``sender_bound`` reads), but each message is then placed
        by the same first-common-gap scan ``place_transfer`` runs — over
        trial-local copies of the busy timelines, so nothing is
        reserved."""
        view = self._frontiers
        m = self._m
        send0 = view.send_free
        link0 = view.link_free
        nslots = len(entries.preds)

        def key_of(src, ready, w):
            key = ready
            sf = send0[src]
            if sf > key:
                key = sf
            lf = link0[src * m + proc]
            if lf > key:
                key = lf
            return key + w

        loc, remote = self._collect_messages(proc, entries, heads, key_of)

        arrival = [_INF] * nslots
        send_tl = view.send_timelines
        recv_tl = view.recv_timelines
        link_tl = view.link_timelines
        #: trial-local overlays: committed intervals + this trial's
        #: simulated reservations (copy-on-first-touch per resource;
        #: the link toward ``proc`` is unique per sender, so both the
        #: send and link overlays key on ``src``)
        recv_iv = list(recv_tl[proc].intervals)
        send_iv: dict[int, list] = {}
        link_iv: dict[int, list] = {}
        for _key, _pred, _index, src, slot, ready, w in remote:
            if w == 0.0:
                f = ready
            else:
                siv = send_iv.get(src)
                if siv is None:
                    siv = list(send_tl[src].intervals)
                    send_iv[src] = siv
                liv = link_iv.get(src)
                if liv is None:
                    liv = list(link_tl[src * m + proc].intervals)
                    link_iv[src] = liv
                # the same first-common-gap scan place_transfer runs,
                # against the trial-local overlays
                start = common_gap_start((siv, recv_iv, liv), ready, w)
                f = start + w
                insort(siv, (start, f))
                insort(recv_iv, (start, f))
                insort(liv, (start, f))
            if f < arrival[slot]:
                arrival[slot] = f

        return self._finish_trial(task, proc, loc, arrival, 0.0)

    # ------------------------------------------------------------------
    # NumPy batch evaluation (one pass over arbitrary (task, proc) rows)
    # ------------------------------------------------------------------
    def _batch_numpy(self, task: int, procs, entries: _TaskEntries) -> list[Trial]:
        jobs = [(entries, task, p) for p in procs]
        return self._eval_rows(jobs)

    def _eval_rows(self, jobs) -> list[Trial]:
        """One NumPy pass over arbitrary ``(entries, task, proc)`` rows.

        The workhorse behind both the per-task candidate sweep and the
        cross-task FTBAR sweep: every row's eq. (6) serialization runs in
        lockstep against its own frontier vectors, with per-row lexsorted
        message orders.  Operations mirror the scalar path exactly (same
        IEEE-754 maxima/additions in the same order), so results are
        bit-identical.  Scalar-frontier models only (``_vector_ok``).
        """
        kind = self.kind
        view = self._frontiers
        m = self._m
        macro = kind == "macro"
        strict = self.builder.strict_local_suppression
        nrows = len(jobs)
        rows = np.arange(nrows)
        proc = np.fromiter((j[2] for j in jobs), dtype=np.int64, count=nrows)
        task_ids = np.fromiter((j[1] for j in jobs), dtype=np.int64, count=nrows)
        pr = np.asarray(self.builder.proc_ready, dtype=np.float64)[proc]
        cost = self.instance.exec_cost[task_ids, proc]

        # Distinct entry objects -> padded (T, Rmax)/(T, Smax) tables.
        table_ix: dict[int, int] = {}
        uniq: list[_TaskEntries] = []
        for e, _t, _p in jobs:
            if id(e) not in table_ix:
                table_ix[id(e)] = len(uniq)
                uniq.append(e)
        tix = np.fromiter(
            (table_ix[id(j[0])] for j in jobs), dtype=np.int64, count=nrows
        )
        flats = [e.arrays() for e in uniq]
        Rmax = max(f[0].size for f in flats)
        Smax = max(len(e.preds) for e in uniq)

        if not macro:
            send0 = np.asarray(view.send_free, dtype=np.float64)
            recv0 = np.asarray(view.recv_free, dtype=np.float64)
            link0 = np.asarray(view.link_free, dtype=np.float64).reshape(m, m)

        if Rmax == 0:
            data_ready = np.zeros(nrows)
        else:
            pads = [e.padded(Rmax, Smax, m, strict) for e in uniq]
            Tpred = np.stack([p[0] for p in pads])
            Tidx = np.stack([p[1] for p in pads])
            Tsrc = np.stack([p[2] for p in pads])
            Tready = np.stack([p[3] for p in pads])
            Tslot = np.stack([p[4] for p in pads])
            Tvol = np.stack([p[5] for p in pads])
            Tmask = np.stack([p[6] for p in pads])
            Tsup = np.stack([p[7] for p in pads])
            Tlocal = np.stack([p[8] for p in pads])
            Tslotmask = np.stack([p[9] for p in pads])

            SRC = Tsrc[tix]
            READY = Tready[tix]
            PRED = Tpred[tix]
            IDX = Tidx[tix]
            SLOT = Tslot[tix]
            D = view.delay_np
            W = Tvol[tix] * D[SRC, proc[:, None]]
            pcol = proc[:, None]
            valid = Tmask[tix] & (SRC != pcol)
            valid &= ~np.take_along_axis(
                Tsup[tix], pcol[:, :, None], axis=2
            )[:, :, 0]

            arrival = np.full((nrows, Smax), _INF)
            if macro:
                fin = np.where(valid, READY + W, _INF)
                np.minimum.at(
                    arrival,
                    (np.repeat(rows, Rmax)[valid.ravel()], SLOT.ravel()[valid.ravel()]),
                    fin.ravel()[valid.ravel()],
                )
                floor = np.zeros(nrows)
            else:
                LF0 = link0[SRC, pcol]
                base = np.maximum(READY, send0[SRC])
                key = np.where(W > 0.0, np.maximum(base, LF0) + W, READY)
                key_masked = np.where(valid, key, _INF)
                order = np.lexsort((SRC, IDX, PRED, key_masked))
                counts = valid.sum(axis=1)

                SF = np.broadcast_to(send0, (nrows, m)).copy()
                RF = recv0[proc].copy()
                LFm = link0.T[proc].copy()  # (nrows, m): link src -> proc
                uni = kind == "uniport"
                for k in range(int(counts.max()) if nrows else 0):
                    act = k < counts
                    if not act.any():
                        break
                    j = order[:, k]
                    src = SRC[rows, j]
                    ready = READY[rows, j]
                    w = W[rows, j]
                    slot = SLOT[rows, j]
                    start = np.maximum(
                        np.maximum(ready, SF[rows, src]),
                        np.maximum(RF, LFm[rows, src]),
                    )
                    fin = np.where(w > 0.0, start + w, ready)
                    upd = act & (w > 0.0)
                    if upd.any():
                        SF[rows[upd], src[upd]] = fin[upd]
                        if uni:
                            SF[rows[upd], proc[upd]] = fin[upd]
                        RF[upd] = fin[upd]
                        LFm[rows[upd], src[upd]] = fin[upd]
                    cur = arrival[rows[act], slot[act]]
                    arrival[rows[act], slot[act]] = np.minimum(cur, fin[act])
                if kind == "nooverlap":
                    floor = np.maximum(send0[proc], RF)
                else:
                    floor = np.zeros(nrows)

            LS = np.take_along_axis(
                Tlocal[tix], pcol[:, :, None], axis=2
            )[:, :, 0]
            supply = np.minimum(LS, arrival)
            supply = np.where(Tslotmask[tix], supply, -_INF)
            if Smax:
                data_ready = np.maximum(supply.max(axis=1), 0.0)
            else:
                data_ready = np.zeros(nrows)

        if Rmax == 0:
            if kind == "nooverlap":
                floor = np.maximum(send0[proc], recv0[proc])
            else:
                floor = np.zeros(nrows)

        start = np.maximum(np.maximum(pr, floor), data_ready)
        finish = start + cost
        return [
            Trial(int(t), int(p), float(s), float(f), float(d))
            for t, p, s, f, d in zip(task_ids, proc, start, finish, data_ready)
        ]
