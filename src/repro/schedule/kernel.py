"""The vectorized placement kernel (fast-path trial evaluation).

:class:`TrialKernel` mirrors the arithmetic of
``ScheduleBuilder._place(record=False)`` — eq. (6) message serialization
under the bi-directional one-port model and its §2 variants — **without**
touching the network's undo log.  A slow-path ``trial()`` reserves every
message on the real network and rolls the reservations back; profiling
shows that reserve-and-rollback bookkeeping dominates scheduler wall
clock (>80% on the figure campaigns).  The kernel instead reads the
network's committed scalar frontiers (send/receive ports, links) and
simulates the serialization locally, so evaluating a candidate has no
side effects to undo.

Three evaluation paths, all producing **bit-identical** :class:`Trial`
results (same IEEE-754 operations in the same order — the equivalence
test suite asserts identical commit logs end to end):

* ``batch_trials`` — candidate finish times for *all* eligible
  processors of a task in one pass over shared per-task message state.
  Small platforms use a tuned scalar loop; past ``numpy_threshold``
  work items the kernel switches to a NumPy formulation that lexsorts
  the eq. (6) keys for every candidate at once and advances the
  serialization frontier matrices step by step.
* ``single_trial`` — one candidate with per-processor sources (CAFT's
  one-to-one rounds pick different designated suppliers per candidate).
* an **epoch cache** — FTBAR re-scores every free task against every
  processor after every placement, but a placement only dirties the
  processors it touched.  Each committed replica/message bumps a
  per-processor epoch; a cached trial is reused verbatim when the
  epochs of every processor it read are unchanged and the supplier
  pools did not grow.

Supported models: ``OnePortNetwork`` (append policy), ``UniPortNetwork``,
``NoOverlapOnePortNetwork`` and ``MacroDataflowNetwork``.  Anything else
(insertion policy, routed topologies, user subclasses) silently falls
back to the exact slow path — ``fast=True`` never changes results.
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence

import numpy as np

from repro.comm.macrodataflow import MacroDataflowNetwork
from repro.comm.oneport import (
    NoOverlapOnePortNetwork,
    OnePortNetwork,
    UniPortNetwork,
)
from repro.schedule.schedule import Replica, Trial
from repro.utils.errors import SchedulingError

_INF = float("inf")


def _detect_kind(network) -> Optional[str]:
    """Classify a network model for the kernel; ``None`` = unsupported."""
    t = type(network)
    if t is MacroDataflowNetwork:
        return "macro"
    if t is OnePortNetwork:
        return "oneport" if network.policy == "append" else None
    if t is UniPortNetwork:
        return "uniport"
    if t is NoOverlapOnePortNetwork:
        return "nooverlap"
    return None


class _TaskEntries:
    """Per-task supplier state shared by every candidate processor.

    Built once per (task, supplier-pool version) and reused across the
    whole candidate sweep — this is the per-predecessor
    message-serialization state the kernel caches.
    """

    __slots__ = (
        "preds",
        "vols",
        "pools",
        "local",
        "selfsuff",
        "srcs",
        "sig",
        "np_arrays",
        "np_proc_tables",
        "np_padded",
    )

    def __init__(self, graph, task: int, sources: Mapping[int, Sequence[Replica]]):
        preds = graph.preds(task)
        self.preds = preds
        self.vols: list[float] = []
        #: per pred slot: [(index, src proc, ready time), ...] in pool order
        self.pools: list[list[tuple[int, int, float]]] = []
        #: per pred slot: proc -> earliest co-located supply (min by (finish, index))
        self.local: list[dict[int, float]] = []
        #: per pred slot: procs hosting a self-sufficient co-located replica
        self.selfsuff: list[frozenset[int]] = []
        srcs: set[int] = set()
        for pred in preds:
            try:
                srcs_list = sources[pred]
            except KeyError:
                raise SchedulingError(
                    f"no sources provided for predecessor t{pred} of t{task}"
                ) from None
            if not srcs_list:
                raise SchedulingError(
                    f"empty source list for predecessor t{pred} of t{task}"
                )
            self.vols.append(graph.volume(pred, task))
            pool = []
            local: dict[int, tuple[float, int]] = {}
            suff = set()
            for r in srcs_list:
                proc = r.proc
                pool.append((r.index, proc, r.finish))
                srcs.add(proc)
                key = (r.finish, r.index)
                prev = local.get(proc)
                if prev is None or key < prev:
                    local[proc] = key
                if r.support <= frozenset((proc,)):
                    suff.add(proc)
            self.pools.append(pool)
            self.local.append({p: k[0] for p, k in local.items()})
            self.selfsuff.append(frozenset(suff))
        self.srcs = sorted(srcs)
        self.sig = tuple(len(p) for p in self.pools)
        self.np_arrays = None
        self.np_proc_tables = None
        self.np_padded: dict = {}

    def arrays(self):
        """Flat NumPy arrays over all pool entries (built lazily)."""
        if self.np_arrays is None:
            pred_l, idx_l, src_l, ready_l, slot_l, vol_l = [], [], [], [], [], []
            for slot, (pred, pool) in enumerate(zip(self.preds, self.pools)):
                vol = self.vols[slot]
                for index, src, ready in pool:
                    pred_l.append(pred)
                    idx_l.append(index)
                    src_l.append(src)
                    ready_l.append(ready)
                    slot_l.append(slot)
                    vol_l.append(vol)
            self.np_arrays = (
                np.asarray(pred_l, dtype=np.int64),
                np.asarray(idx_l, dtype=np.int64),
                np.asarray(src_l, dtype=np.int64),
                np.asarray(ready_l, dtype=np.float64),
                np.asarray(slot_l, dtype=np.int64),
                np.asarray(vol_l, dtype=np.float64),
            )
        return self.np_arrays

    def proc_tables(self, num_procs: int, strict: bool):
        """Per-(slot, proc) local-supply and suppression tables (lazy).

        ``local_sup[s, p]`` is the earliest co-located supply of slot ``s``
        on processor ``p`` (``inf`` when none); ``suppressed[s, p]`` marks
        predecessors whose whole remote pool is dropped on ``p`` (strict
        mode, or a self-sufficient co-located replica).
        """
        if self.np_proc_tables is None:
            nslots = len(self.preds)
            local_sup = np.full((nslots, num_procs), _INF)
            suppressed = np.zeros((nslots, num_procs), dtype=bool)
            for slot in range(nslots):
                suff = self.selfsuff[slot]
                for p, finish in self.local[slot].items():
                    local_sup[slot, p] = finish
                    if strict or p in suff:
                        suppressed[slot, p] = True
            self.np_proc_tables = (local_sup, suppressed)
        return self.np_proc_tables

    def padded(self, rmax: int, smax: int, num_procs: int, strict: bool):
        """All per-task arrays padded to the sweep's ``(rmax, smax)`` shape.

        Cached per shape: a task re-swept with the same global padding
        (the common FTBAR case) contributes zero assembly work beyond a
        stack of cached rows.
        """
        key = (rmax, smax)
        cached = self.np_padded.get(key)
        if cached is not None:
            return cached
        pred_a, idx_a, src_a, ready_a, slot_a, vol_a = self.arrays()
        r = pred_a.size
        nslots = len(self.preds)
        pred = np.zeros(rmax, dtype=np.int64)
        idx = np.zeros(rmax, dtype=np.int64)
        src = np.zeros(rmax, dtype=np.int64)
        ready = np.zeros(rmax)
        slot = np.zeros(rmax, dtype=np.int64)
        vol = np.zeros(rmax)
        mask = np.zeros(rmax, dtype=bool)
        sup = np.zeros((rmax, num_procs), dtype=bool)
        local = np.full((smax, num_procs), _INF)
        slotmask = np.zeros(smax, dtype=bool)
        pred[:r] = pred_a
        idx[:r] = idx_a
        src[:r] = src_a
        ready[:r] = ready_a
        slot[:r] = slot_a
        vol[:r] = vol_a
        mask[:r] = True
        slotmask[:nslots] = True
        if nslots:
            local_sup, suppressed = self.proc_tables(num_procs, strict)
            local[:nslots] = local_sup
            sup[:r] = suppressed[slot_a]
        cached = (pred, idx, src, ready, slot, vol, mask, sup, local, slotmask)
        self.np_padded[key] = cached
        return cached


class TrialKernel:
    """Exact, side-effect-free trial evaluation over scalar network state."""

    #: switch to the NumPy batch formulation past this many work items
    #: (candidates × pool entries); below it the scalar loop wins.
    numpy_threshold = 2048
    #: vectorize a cross-task sweep once it has at least this many
    #: uncached (task, processor) rows; below that the scalar loop beats
    #: the NumPy dispatch overhead (the crossover sits around the
    #: paper's m=20 platforms).
    sweep_numpy_threshold = 256

    __slots__ = (
        "builder",
        "network",
        "instance",
        "graph",
        "kind",
        "_cost",
        "_delay",
        "_m",
        "_version",
        "_send_changed",
        "_recv_changed",
        "_entries",
        "_cache",
    )

    def __init__(self, builder, kind: str) -> None:
        self.builder = builder
        self.network = builder.network
        self.instance = builder.instance
        self.graph = builder.instance.graph
        self.kind = kind
        self._cost = builder.instance.exec_cost.tolist()
        self._delay = builder.instance.platform.delay_matrix.tolist()
        self._m = builder.instance.num_procs
        #: monotone commit counter plus, per processor, the version at
        #: which its send side (port + outgoing links) and receive side
        #: (port, incoming links, ready time, compute floor) last moved
        self._version = 0
        self._send_changed = [0] * self._m
        self._recv_changed = [0] * self._m
        #: task -> (pool signature, _TaskEntries)
        self._entries: dict[int, tuple[tuple, _TaskEntries]] = {}
        #: task -> (pool signature, {proc: (version, Trial)})
        self._cache: dict[int, tuple[tuple, dict]] = {}

    @classmethod
    def create(cls, builder) -> Optional["TrialKernel"]:
        kind = _detect_kind(builder.network)
        if kind is None:
            return None
        return cls(builder, kind)

    # ------------------------------------------------------------------
    # Cache invalidation
    # ------------------------------------------------------------------
    def note_commit(self, proc: int, placed) -> None:
        """Record which processors a commit dirtied.

        ``proc`` hosts the new replica: its ready time, receive port,
        incoming links and compute floor moved (receive side).  Every
        placed message with nonzero duration moved its sender's port and
        the link toward ``proc`` (send side).  The contention-free macro
        model reserves nothing, so only the host's ready time moves.

        The uniport model shares one engine per processor — its send and
        receive frontiers are the *same* array — so there every touched
        processor moves on both sides at once.
        """
        self._version += 1
        v = self._version
        kind = self.kind
        recv_changed = self._recv_changed
        recv_changed[proc] = v
        if kind == "macro":
            return
        send_changed = self._send_changed
        uni = kind == "uniport"
        if uni:
            # the host's receive activity occupies its shared port, which
            # is also what suppliers' sender_bound/send state reads
            send_changed[proc] = v
        for _pred, r, start, finish in placed:
            if finish > start:
                send_changed[r.proc] = v
                if uni:
                    # a sender's shared port is likewise its receive side
                    recv_changed[r.proc] = v
        if kind == "nooverlap":
            # note_compute advances the host's send port as well
            send_changed[proc] = v

    # ------------------------------------------------------------------
    # Entry building / caching
    # ------------------------------------------------------------------
    def _entries_for(self, task: int, sources) -> tuple[_TaskEntries, bool]:
        """Entry state for ``task``; second element: came from the cache line.

        Only *canonical* source maps — every pool is the live
        ``schedule.replicas[pred]`` list — are cached: those lists are
        append-only, so (task, per-pool length) fully determines their
        content.  An arbitrary filtered pool of the same length would
        alias the cache line, so it is built fresh (and the caller must
        not reuse cached trials for it either).
        """
        preds = self.graph.preds(task)
        replicas = self.builder.schedule.replicas
        try:
            canonical = all(sources[p] is replicas[p] for p in preds)
        except KeyError as exc:
            raise SchedulingError(
                f"no sources provided for predecessor t{exc.args[0]} of t{task}"
            ) from None
        if not canonical:
            return _TaskEntries(self.graph, task, sources), False
        sig = tuple(len(sources[p]) for p in preds)
        cached = self._entries.get(task)
        if cached is not None and cached[0] == sig:
            return cached[1], True
        entries = _TaskEntries(self.graph, task, sources)
        self._entries[task] = (sig, entries)
        return entries, True

    def _srcs_changed_after(self, entries: _TaskEntries) -> int:
        """Latest version at which any supplier's send side moved.

        A trial of this task on candidate ``p`` reads ``send_free[src]``
        and ``link_free[src -> p]`` for every supplier ``src`` — both move
        only when ``src`` sends.  Shared by every candidate, so the cache
        validity check per processor is O(1): a cached trial computed at
        version ``v`` is exact iff ``v >= max(srcs_changed,
        recv_changed[p])`` (plus ``send_changed[p]`` for the no-overlap
        compute floor).
        """
        if self.kind == "macro":
            return 0
        send_changed = self._send_changed
        latest = 0
        for s in entries.srcs:
            c = send_changed[s]
            if c > latest:
                latest = c
        return latest

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def batch_trials(
        self,
        task: int,
        procs: Sequence[int],
        sources: Mapping[int, Sequence[Replica]],
    ) -> list[Trial]:
        """Candidate trials for every processor in ``procs`` (one pass)."""
        entries, _cacheable = self._entries_for(task, sources)
        if len(procs) * max(1, sum(entries.sig)) >= self.numpy_threshold:
            return self._batch_numpy(task, procs, entries)
        return [self._eval(task, p, entries) for p in procs]

    def trial_with_heads(
        self,
        task: int,
        proc: int,
        sources: Mapping[int, Sequence[Replica]],
        heads: Mapping[int, Replica],
    ) -> Trial:
        """One candidate where each predecessor in ``heads`` supplies via
        its designated replica only (CAFT's one-to-one rounds); the rest
        fall back to the full ``sources`` pool.  Sharing ``sources``
        across the candidate sweep lets the per-task entry state be built
        once instead of once per processor.
        """
        entries, _cacheable = self._entries_for(task, sources)
        return self._eval(task, proc, entries, heads)

    def sweep_trials(
        self,
        tasks: Sequence[int],
        sources_map: Mapping[int, Mapping[int, Sequence[Replica]]],
    ) -> dict[int, list[Trial]]:
        """Trials for *every* (free task, processor) pair in one pass.

        FTBAR's step pattern: re-score all free tasks against all
        processors after every placement.  Cached rows whose inputs are
        untouched are reused; the remaining rows are evaluated together —
        one NumPy pass once the sweep is big enough to pay for itself.
        Free tasks have no replicas yet, so every processor is eligible.
        """
        m = self._m
        version = self._version
        recv_changed = self._recv_changed
        send_changed = self._send_changed
        nooverlap = self.kind == "nooverlap"

        out: dict[int, list[Optional[Trial]]] = {}
        misses: list[tuple[_TaskEntries, int, int]] = []
        slots: list[tuple[int, int, dict]] = []  # (task, proc index, cache dict)
        for task in tasks:
            entries, cacheable = self._entries_for(task, sources_map[task])
            if not cacheable:
                # non-canonical pools must not alias the trial cache
                self._cache.pop(task, None)
                per_proc: dict[int, tuple[int, Trial]] = {}
            else:
                cached = self._cache.get(task)
                if cached is None or cached[0] != entries.sig:
                    per_proc = {}
                    self._cache[task] = (entries.sig, per_proc)
                else:
                    per_proc = cached[1]
            srcs_changed = self._srcs_changed_after(entries)
            trials: list[Optional[Trial]] = [None] * m
            for p in range(m):
                hit = per_proc.get(p)
                if hit is not None:
                    v = hit[0]
                    if (
                        v >= srcs_changed
                        and v >= recv_changed[p]
                        and (not nooverlap or v >= send_changed[p])
                    ):
                        trials[p] = hit[1]
                        continue
                misses.append((entries, task, p))
                slots.append((task, p, per_proc))
            out[task] = trials

        if misses:
            if len(misses) >= self.sweep_numpy_threshold:
                fresh = self._eval_rows(misses)
            else:
                fresh = [self._eval(t, p, e) for e, t, p in misses]
            for (task, p, per_proc), trial in zip(slots, fresh):
                per_proc[p] = (version, trial)
                out[task][p] = trial
        return out

    # ------------------------------------------------------------------
    # Scalar evaluation (exact mirror of ScheduleBuilder._place)
    # ------------------------------------------------------------------
    def _eval(
        self,
        task: int,
        proc: int,
        entries: _TaskEntries,
        heads: Optional[Mapping[int, Replica]] = None,
    ) -> Trial:
        kind = self.kind
        net = self.network
        m = self._m
        delay = self._delay
        strict = self.builder.strict_local_suppression
        preds = entries.preds
        vols = entries.vols
        pools = entries.pools
        locals_ = entries.local
        selfsuff = entries.selfsuff
        nslots = len(preds)
        macro = kind == "macro"
        if not macro:
            send0 = net._send_free
            link0 = net._link_free
            lbase = proc  # link index of src -> proc is src * m + proc

        # eq. (6): collect remote messages with their sender-side keys.
        # (The contention-free macro model needs no keys: arrivals are
        # order-independent, so the sort is skipped entirely.)
        remote: list[tuple] = []
        loc: list[Optional[float]] = [None] * nslots
        for slot in range(nslots):
            pred = preds[slot]
            if heads is not None and pred in heads:
                # Designated one-to-one supplier: sole source for this
                # predecessor — co-located means pure local supply.
                h = heads[pred]
                src = h.proc
                if src == proc:
                    loc[slot] = h.finish
                    continue
                ready = h.finish
                w = vols[slot] * delay[src][proc]
                if macro or w == 0.0:
                    key = ready
                else:
                    key = ready
                    sf = send0[src]
                    if sf > key:
                        key = sf
                    lf = link0[src * m + lbase]
                    if lf > key:
                        key = lf
                    key += w
                remote.append((key, pred, h.index, src, slot, ready, w))
                continue
            local = locals_[slot]
            lf_local = local.get(proc)
            if lf_local is not None:
                loc[slot] = lf_local
                if strict or proc in selfsuff[slot]:
                    continue
            vol = vols[slot]
            for index, src, ready in pools[slot]:
                if src == proc:
                    continue
                w = vol * delay[src][proc]
                if macro or w == 0.0:
                    key = ready
                else:
                    key = ready
                    sf = send0[src]
                    if sf > key:
                        key = sf
                    lf = link0[src * m + lbase]
                    if lf > key:
                        key = lf
                    key += w
                remote.append((key, pred, index, src, slot, ready, w))

        # Serialize the messages against simulated port/link frontiers.
        arrival = [_INF] * nslots
        if macro:
            for _key, _pred, _index, _src, slot, ready, w in remote:
                f = ready + w
                if f < arrival[slot]:
                    arrival[slot] = f
            floor = 0.0
        else:
            remote.sort()
            # Uniport aliasing needs no special casing: ``_send_free`` IS
            # ``_recv_free`` there, so ``send0`` reads the shared port and
            # the overlays below touch disjoint indices (src != proc).
            rf = net._recv_free[proc]
            sf_sim: dict[int, float] = {}
            lf_sim: dict[int, float] = {}
            for _key, _pred, _index, src, slot, ready, w in remote:
                if w == 0.0:
                    f = ready
                else:
                    start = ready
                    s = sf_sim.get(src)
                    if s is None:
                        s = send0[src]
                    if s > start:
                        start = s
                    if rf > start:
                        start = rf
                    l = lf_sim.get(src)
                    if l is None:
                        l = link0[src * m + lbase]
                    if l > start:
                        start = l
                    f = start + w
                    sf_sim[src] = f
                    rf = f
                    lf_sim[src] = f
                if f < arrival[slot]:
                    arrival[slot] = f
            if kind == "nooverlap":
                floor = send0[proc]
                if rf > floor:
                    floor = rf
            else:
                floor = 0.0

        data_ready = 0.0
        for slot in range(nslots):
            supply = loc[slot]
            if supply is None:
                supply = _INF
            a = arrival[slot]
            if a < supply:
                supply = a
            if supply > data_ready:
                data_ready = supply

        start = self.builder.proc_ready[proc]
        if floor > start:
            start = floor
        if data_ready > start:
            start = data_ready
        finish = start + self._cost[task][proc]
        return Trial(task, proc, start, finish, data_ready)

    # ------------------------------------------------------------------
    # NumPy batch evaluation (one pass over arbitrary (task, proc) rows)
    # ------------------------------------------------------------------
    def _batch_numpy(self, task: int, procs, entries: _TaskEntries) -> list[Trial]:
        jobs = [(entries, task, p) for p in procs]
        return self._eval_rows(jobs)

    def _eval_rows(self, jobs) -> list[Trial]:
        """One NumPy pass over arbitrary ``(entries, task, proc)`` rows.

        The workhorse behind both the per-task candidate sweep and the
        cross-task FTBAR sweep: every row's eq. (6) serialization runs in
        lockstep against its own frontier vectors, with per-row lexsorted
        message orders.  Operations mirror the scalar path exactly (same
        IEEE-754 maxima/additions in the same order), so results are
        bit-identical.
        """
        kind = self.kind
        net = self.network
        m = self._m
        macro = kind == "macro"
        strict = self.builder.strict_local_suppression
        nrows = len(jobs)
        rows = np.arange(nrows)
        proc = np.fromiter((j[2] for j in jobs), dtype=np.int64, count=nrows)
        task_ids = np.fromiter((j[1] for j in jobs), dtype=np.int64, count=nrows)
        pr = np.asarray(self.builder.proc_ready, dtype=np.float64)[proc]
        cost = self.instance.exec_cost[task_ids, proc]

        # Distinct entry objects -> padded (T, Rmax)/(T, Smax) tables.
        table_ix: dict[int, int] = {}
        uniq: list[_TaskEntries] = []
        for e, _t, _p in jobs:
            if id(e) not in table_ix:
                table_ix[id(e)] = len(uniq)
                uniq.append(e)
        tix = np.fromiter(
            (table_ix[id(j[0])] for j in jobs), dtype=np.int64, count=nrows
        )
        T = len(uniq)
        flats = [e.arrays() for e in uniq]
        Rmax = max(f[0].size for f in flats)
        Smax = max(len(e.preds) for e in uniq)

        if not macro:
            send0 = np.asarray(net._send_free, dtype=np.float64)
            recv0 = np.asarray(net._recv_free, dtype=np.float64)
            link0 = np.asarray(net._link_free, dtype=np.float64).reshape(m, m)

        if Rmax == 0:
            data_ready = np.zeros(nrows)
        else:
            pads = [e.padded(Rmax, Smax, m, strict) for e in uniq]
            Tpred = np.stack([p[0] for p in pads])
            Tidx = np.stack([p[1] for p in pads])
            Tsrc = np.stack([p[2] for p in pads])
            Tready = np.stack([p[3] for p in pads])
            Tslot = np.stack([p[4] for p in pads])
            Tvol = np.stack([p[5] for p in pads])
            Tmask = np.stack([p[6] for p in pads])
            Tsup = np.stack([p[7] for p in pads])
            Tlocal = np.stack([p[8] for p in pads])
            Tslotmask = np.stack([p[9] for p in pads])

            SRC = Tsrc[tix]
            READY = Tready[tix]
            PRED = Tpred[tix]
            IDX = Tidx[tix]
            SLOT = Tslot[tix]
            D = self.instance.platform.delay_matrix
            W = Tvol[tix] * D[SRC, proc[:, None]]
            pcol = proc[:, None]
            valid = Tmask[tix] & (SRC != pcol)
            valid &= ~np.take_along_axis(
                Tsup[tix], pcol[:, :, None], axis=2
            )[:, :, 0]

            arrival = np.full((nrows, Smax), _INF)
            if macro:
                fin = np.where(valid, READY + W, _INF)
                np.minimum.at(
                    arrival,
                    (np.repeat(rows, Rmax)[valid.ravel()], SLOT.ravel()[valid.ravel()]),
                    fin.ravel()[valid.ravel()],
                )
                floor = np.zeros(nrows)
            else:
                LF0 = link0[SRC, pcol]
                base = np.maximum(READY, send0[SRC])
                key = np.where(W > 0.0, np.maximum(base, LF0) + W, READY)
                key_masked = np.where(valid, key, _INF)
                order = np.lexsort((SRC, IDX, PRED, key_masked))
                counts = valid.sum(axis=1)

                SF = np.broadcast_to(send0, (nrows, m)).copy()
                RF = recv0[proc].copy()
                LFm = link0.T[proc].copy()  # (nrows, m): link src -> proc
                uni = kind == "uniport"
                for k in range(int(counts.max()) if nrows else 0):
                    act = k < counts
                    if not act.any():
                        break
                    j = order[:, k]
                    src = SRC[rows, j]
                    ready = READY[rows, j]
                    w = W[rows, j]
                    slot = SLOT[rows, j]
                    start = np.maximum(
                        np.maximum(ready, SF[rows, src]),
                        np.maximum(RF, LFm[rows, src]),
                    )
                    fin = np.where(w > 0.0, start + w, ready)
                    upd = act & (w > 0.0)
                    if upd.any():
                        SF[rows[upd], src[upd]] = fin[upd]
                        if uni:
                            SF[rows[upd], proc[upd]] = fin[upd]
                        RF[upd] = fin[upd]
                        LFm[rows[upd], src[upd]] = fin[upd]
                    cur = arrival[rows[act], slot[act]]
                    arrival[rows[act], slot[act]] = np.minimum(cur, fin[act])
                if kind == "nooverlap":
                    floor = np.maximum(send0[proc], RF)
                else:
                    floor = np.zeros(nrows)

            LS = np.take_along_axis(
                Tlocal[tix], pcol[:, :, None], axis=2
            )[:, :, 0]
            supply = np.minimum(LS, arrival)
            supply = np.where(Tslotmask[tix], supply, -_INF)
            if Smax:
                data_ready = np.maximum(supply.max(axis=1), 0.0)
            else:
                data_ready = np.zeros(nrows)

        if Rmax == 0:
            if kind == "nooverlap":
                floor = np.maximum(send0[proc], recv0[proc])
            else:
                floor = np.zeros(nrows)

        start = np.maximum(np.maximum(pr, floor), data_ready)
        finish = start + cost
        return [
            Trial(int(t), int(p), float(s), float(f), float(d))
            for t, p, s, f, d in zip(task_ids, proc, start, finish, data_ready)
        ]
