"""The vectorized placement kernel (fast-path trial evaluation).

:class:`TrialKernel` mirrors the arithmetic of
``ScheduleBuilder._place(record=False)`` — eq. (6) message serialization
under the bi-directional one-port model and its variants — **without**
touching the network's undo log.  A slow-path ``trial()`` reserves every
message on the real network and rolls the reservations back; profiling
shows that reserve-and-rollback bookkeeping dominates scheduler wall
clock (>80% on the figure campaigns).  The kernel instead reads the
network's committed frontiers and simulates the serialization locally,
so evaluating a candidate has no side effects to undo.

Model support comes from the **resource-frontier protocol**
(:mod:`repro.comm.base`): every network model declares its contended
resources via ``kernel_caps()`` and exposes them through
``frontier_view()``.  The kernel dispatches purely on the declared
capabilities — it never inspects concrete model types — and covers:

* scalar port/link frontiers (the paper's bi-directional one-port, the
  §2 uni-port and no-overlap variants, and the contention-free
  macro-dataflow model);
* **routed** models (§7 sparse topologies): serialization takes the max
  over the per-hop link frontiers of each message's static route, and
  the epoch cache tracks per-directed-link versions so two routes
  sharing a physical link invalidate each other;
* **gap-timeline** models (``OnePortNetwork(policy="insertion")``):
  trials replay the insertion scan against trial-local copies of the
  busy-interval timelines.

A model whose ``kernel_caps()`` is ``None`` (or declares a combination
the kernel cannot mirror) falls back to the exact slow path with a
one-time ``logging`` warning — ``fast=True`` never changes results.

Three evaluation paths, all producing **bit-identical** :class:`Trial`
results (same IEEE-754 operations in the same order — the equivalence
test suite asserts identical commit logs end to end):

* ``sweep_trials_batch`` — trials for arbitrary (task, candidate
  processor) pairs in one batched call: FTBAR's full free-task × all-
  processor re-scoring sweep, and (through ``batch_trials``) the
  HEFT/FTSA per-task candidate loops.  The eq. (6) message prologue —
  supplier pools, sender-side key bases, suppression tables — is built
  once per task and shared across every candidate processor; uncached
  rows are evaluated together, one vectorized pass per evaluator family
  once the sweep is big enough to pay for itself:

  - scalar-frontier models lexsort the eq. (6) keys for every row at
    once and advance the serialization frontier matrices step by step
    (``_eval_rows``);
  - **routed** models compute every route's hop maximum as one CSR
    ``np.maximum.reduceat`` over the committed link frontiers and run
    the serialization recurrence ``f = max(key, rf + w)`` in lockstep
    across rows (``_eval_rows_routed``) — exact, because every
    simulated frontier a later message could read is dominated by the
    receiver frontier (see the evaluator docstring);
  - **gap-timeline** models share the vectorized key prologue and
    replay each row's first-common-gap placements against trial-local
    NumPy gap-array overlays (``_eval_rows_insertion``), copied on
    first touch per resource.
* ``trial_with_heads`` — one candidate with designated per-predecessor
  suppliers (CAFT's one-to-one rounds pick different heads per
  candidate) over the shared per-task entry state.
* an **epoch cache** — FTBAR re-scores every free task against every
  processor after every placement, but a placement only dirties the
  processors (and, for routed models, directed links) it touched.  Each
  committed replica/message bumps the epochs of the resources it
  reserved; a cached trial is reused verbatim when the epochs of every
  resource it read are unchanged and the supplier pools did not grow.

``kernel_stats()`` exposes the observability counters (evaluator
family, epoch-cache hits/misses, batch vs scalar evaluation volumes).
"""

from __future__ import annotations

import logging
from bisect import bisect_right
from itertools import islice
from typing import Mapping, Optional, Sequence

import numpy as np

from repro.comm.base import KernelCaps
from repro.schedule.schedule import Replica, Trial
from repro.utils.errors import SchedulingError

_INF = float("inf")

logger = logging.getLogger(__name__)

#: model signatures already warned about (one warning per model kind)
_fallback_warned: set[str] = set()


def _caps_flags(caps: KernelCaps) -> str:
    """The declared capability flags as a ``+``-joined string (for the
    fallback warning, which must name what forced the slow path)."""
    return "+".join(
        name
        for name in ("shared_port", "compute_blocks", "gap_timelines", "routed")
        if getattr(caps, name)
    )


def _unsupported_reason(caps: Optional[KernelCaps]) -> Optional[str]:
    """Why the kernel cannot serve a model; ``None`` = fully supported."""
    if caps is None:
        return "it declares no kernel capabilities (kernel_caps() is None)"
    flags = _caps_flags(caps)
    if caps.routed and (caps.gap_timelines or caps.shared_port or caps.compute_blocks):
        return (
            f"it declares {flags!r}: the kernel has no evaluator for routed "
            "combined with gap-timeline/shared-port/no-overlap capabilities"
        )
    if caps.gap_timelines and (caps.shared_port or caps.compute_blocks):
        return (
            f"it declares {flags!r}: the kernel has no evaluator for gap "
            "timelines combined with shared-port/no-overlap capabilities"
        )
    if caps.shared_port and caps.compute_blocks:
        return (
            f"it declares {flags!r}: the kernel has no evaluator for a "
            "shared port combined with compute-blocking communication"
        )
    if not caps.contention and flags:
        return (
            f"it declares contention=False together with {flags!r}: a "
            "contention-free model cannot declare contended-resource capabilities"
        )
    return None


def _warn_fallback(network, reason: str) -> None:
    """One-time warning when ``fast=True`` degrades to the exact path."""
    key = (
        f"{type(network).__module__}.{type(network).__qualname__}"
        f":{getattr(network, 'name', '')}"
    )
    if key in _fallback_warned:
        return
    _fallback_warned.add(key)
    logger.warning(
        "fast=True: network model %r (%s) is outside the placement kernel — %s; "
        "falling back to the exact reserve-and-rollback path "
        "(identical schedules, slower trials)",
        getattr(network, "name", type(network).__name__),
        type(network).__qualname__,
        reason,
    )


def _caps_kind(caps: KernelCaps) -> str:
    """Internal evaluator family for a supported capability set."""
    if not caps.contention:
        return "macro"
    if caps.routed:
        return "routed"
    if caps.gap_timelines:
        return "insertion"
    if caps.shared_port:
        return "uniport"
    if caps.compute_blocks:
        return "nooverlap"
    return "oneport"


class _GapOverlay:
    """Trial-local busy-interval overlay on one resource's gap vectors.

    Seeded by slice-copying the committed split ``(starts, ends)``
    mirror (:meth:`repro.comm.oneport._GapTimeline.gap_vectors`, cached
    per version, so repeated trials between commits share one build);
    the trial's simulated reservations are spliced in with C-backed
    ``bisect`` + ``list.insert``.  No per-trial tuple lists are built,
    and :meth:`earliest` skips the committed prefix the scalar interval
    walk re-scans on every call.

    Plain lists beat ndarray ``searchsorted`` here: the scans are a few
    dozen intervals long and run hundreds of thousands of times per
    campaign, so per-call constants dominate asymptotics.
    """

    __slots__ = ("starts", "ends")

    def __init__(self, vectors) -> None:
        starts, ends = vectors
        self.starts = starts[:]
        self.ends = ends[:]

    def earliest(self, ready: float, duration: float) -> float:
        """First feasible start for ``duration`` — bit-identical to
        :func:`repro.comm.base.earliest_gap` over the same intervals.

        ``bisect`` skips every interval ending at or before ``ready``
        (the scalar walk only advances ``t`` through those, and the gap
        test cannot fire inside them); from there the walk is the scalar
        one, with ``t = max(t, f)`` collapsing to ``t = f`` because ends
        are strictly increasing past the skip point.
        """
        ends = self.ends
        i = bisect_right(ends, ready)
        n = len(ends)
        if i == n:
            return ready
        starts = self.starts
        t = ready
        while i < n:
            if t + duration <= starts[i]:
                return t
            t = ends[i]
            i += 1
        return t

    def insert(self, start: float, finish: float) -> None:
        i = bisect_right(self.starts, start)
        self.starts.insert(i, start)
        self.ends.insert(i, finish)


def _common_gap3(ss, se, rs, re_, ls, le, ready: float, duration: float) -> float:
    """:func:`repro.comm.base.common_gap_start` over three gap vectors.

    The send/recv/link trio is the only shape ``place_transfer`` ever
    scans, so the fixed point is specialized to six flat lists with the
    per-resource gap walk inlined.  Each walk chains off the previous
    one's candidate (Gauss-Seidel) instead of restarting the round
    (Jacobi, what ``common_gap_start`` does); both iterations converge
    to the *least* common feasible start at or after ``ready`` — each
    per-resource ``earliest_gap`` map is monotone and inflationary, so
    every iterate stays bounded by any common fixed point — and no step
    does arithmetic on times (candidates are existing interval ends or
    ``ready`` itself), so the result is the identical float.  The
    replay calls this hundreds of thousands of times per campaign;
    dispatch and round count dominate, not asymptotics.

    A resource's walk is skipped when it was the last to move the
    candidate (round-robin with a quiet counter): the walk that set
    ``t`` already certified ``t`` feasible for its own resource, so
    re-walking it is pure confirmation overhead.  The sequence of
    walks actually executed is a subsequence of the plain rounds with
    identical inputs, so the least fixed point — and the exact float —
    is unchanged.
    """
    t = ready
    quiet = 0
    while True:
        t0 = t
        i = bisect_right(se, t)
        n = len(se)
        while i < n:
            if t + duration <= ss[i]:
                break
            t = se[i]
            i += 1
        if t == t0:
            quiet += 1
            if quiet == 3:
                return t
        else:
            quiet = 1
        t0 = t
        i = bisect_right(re_, t)
        n = len(re_)
        while i < n:
            if t + duration <= rs[i]:
                break
            t = re_[i]
            i += 1
        if t == t0:
            quiet += 1
            if quiet == 3:
                return t
        else:
            quiet = 1
        t0 = t
        i = bisect_right(le, t)
        n = len(le)
        while i < n:
            if t + duration <= ls[i]:
                break
            t = le[i]
            i += 1
        if t == t0:
            quiet += 1
            if quiet == 3:
                return t
        else:
            quiet = 1


class _TaskEntries:
    """Per-task supplier state shared by every candidate processor.

    Built once per (task, supplier-pool version) and reused across the
    whole candidate sweep — this is the per-predecessor
    message-serialization state the kernel caches.
    """

    __slots__ = (
        "preds",
        "vols",
        "pools",
        "local",
        "selfsuff",
        "srcs",
        "sig",
        "nwork",
        "np_arrays",
        "np_proc_tables",
        "np_padded",
        "np_sbase",
    )

    def __init__(self, graph, task: int, sources: Mapping[int, Sequence[Replica]]):
        preds = graph.preds(task)
        self.preds = preds
        self.vols: list[float] = []
        #: per pred slot: [(index, src proc, ready time), ...] in pool order
        self.pools: list[list[tuple[int, int, float]]] = []
        #: per pred slot: proc -> earliest co-located supply (min by (finish, index))
        self.local: list[dict[int, float]] = []
        #: per pred slot: procs hosting a self-sufficient co-located replica
        self.selfsuff: list[frozenset[int]] = []
        srcs: set[int] = set()
        for pred in preds:
            try:
                srcs_list = sources[pred]
            except KeyError:
                raise SchedulingError(
                    f"no sources provided for predecessor t{pred} of t{task}"
                ) from None
            if not srcs_list:
                raise SchedulingError(
                    f"empty source list for predecessor t{pred} of t{task}"
                )
            self.vols.append(graph.volume(pred, task))
            pool = []
            local: dict[int, tuple[float, int]] = {}
            suff = set()
            for r in srcs_list:
                proc = r.proc
                pool.append((r.index, proc, r.finish))
                srcs.add(proc)
                key = (r.finish, r.index)
                prev = local.get(proc)
                if prev is None or key < prev:
                    local[proc] = key
                if r.support <= frozenset((proc,)):
                    suff.add(proc)
            self.pools.append(pool)
            self.local.append({p: k[0] for p, k in local.items()})
            self.selfsuff.append(frozenset(suff))
        self.srcs = sorted(srcs)
        self.sig = tuple(len(p) for p in self.pools)
        self.nwork = max(1, sum(self.sig))
        self.np_arrays = None
        self.np_proc_tables = None
        self.np_padded: dict = {}
        self.np_sbase = None

    def sbase_pools(self, send0, version: int) -> list[list[float]]:
        """Per-slot sender-side key bases ``max(ready, send_free[src])``.

        The candidate-processor-independent half of each eq. (6) key:
        computed once per (task, commit version) and shared by every
        candidate processor of the sweep, instead of re-reading the
        sender frontier per (processor, pool entry).  Keyed by the
        kernel's commit version — ``send_free`` only moves on commits.
        """
        cached = self.np_sbase
        if cached is None or cached[0] != version:
            out = []
            for pool in self.pools:
                lst = []
                for _index, src, ready in pool:
                    sf = send0[src]
                    lst.append(sf if sf > ready else ready)
                out.append(lst)
            cached = (version, out)
            self.np_sbase = cached
        return cached[1]

    def arrays(self):
        """Flat NumPy arrays over all pool entries (built lazily)."""
        if self.np_arrays is None:
            pred_l, idx_l, src_l, ready_l, slot_l, vol_l = [], [], [], [], [], []
            for slot, (pred, pool) in enumerate(zip(self.preds, self.pools)):
                vol = self.vols[slot]
                for index, src, ready in pool:
                    pred_l.append(pred)
                    idx_l.append(index)
                    src_l.append(src)
                    ready_l.append(ready)
                    slot_l.append(slot)
                    vol_l.append(vol)
            self.np_arrays = (
                np.asarray(pred_l, dtype=np.int64),
                np.asarray(idx_l, dtype=np.int64),
                np.asarray(src_l, dtype=np.int64),
                np.asarray(ready_l, dtype=np.float64),
                np.asarray(slot_l, dtype=np.int64),
                np.asarray(vol_l, dtype=np.float64),
            )
        return self.np_arrays

    def proc_tables(self, num_procs: int, strict: bool):
        """Per-(slot, proc) local-supply and suppression tables (lazy).

        ``local_sup[s, p]`` is the earliest co-located supply of slot ``s``
        on processor ``p`` (``inf`` when none); ``suppressed[s, p]`` marks
        predecessors whose whole remote pool is dropped on ``p`` (strict
        mode, or a self-sufficient co-located replica).
        """
        if self.np_proc_tables is None:
            nslots = len(self.preds)
            local_sup = np.full((nslots, num_procs), _INF)
            suppressed = np.zeros((nslots, num_procs), dtype=bool)
            for slot in range(nslots):
                suff = self.selfsuff[slot]
                for p, finish in self.local[slot].items():
                    local_sup[slot, p] = finish
                    if strict or p in suff:
                        suppressed[slot, p] = True
            self.np_proc_tables = (local_sup, suppressed)
        return self.np_proc_tables

    def padded(self, rmax: int, smax: int, num_procs: int, strict: bool):
        """All per-task arrays padded to the sweep's ``(rmax, smax)`` shape.

        Cached per shape: a task re-swept with the same global padding
        (the common FTBAR case) contributes zero assembly work beyond a
        stack of cached rows.
        """
        key = (rmax, smax)
        cached = self.np_padded.get(key)
        if cached is not None:
            return cached
        pred_a, idx_a, src_a, ready_a, slot_a, vol_a = self.arrays()
        r = pred_a.size
        nslots = len(self.preds)
        pred = np.zeros(rmax, dtype=np.int64)
        idx = np.zeros(rmax, dtype=np.int64)
        src = np.zeros(rmax, dtype=np.int64)
        ready = np.zeros(rmax)
        slot = np.zeros(rmax, dtype=np.int64)
        vol = np.zeros(rmax)
        mask = np.zeros(rmax, dtype=bool)
        sup = np.zeros((rmax, num_procs), dtype=bool)
        local = np.full((smax, num_procs), _INF)
        slotmask = np.zeros(smax, dtype=bool)
        pred[:r] = pred_a
        idx[:r] = idx_a
        src[:r] = src_a
        ready[:r] = ready_a
        slot[:r] = slot_a
        vol[:r] = vol_a
        mask[:r] = True
        slotmask[:nslots] = True
        if nslots:
            local_sup, suppressed = self.proc_tables(num_procs, strict)
            local[:nslots] = local_sup
            sup[:r] = suppressed[slot_a]
        cached = (pred, idx, src, ready, slot, vol, mask, sup, local, slotmask)
        self.np_padded[key] = cached
        return cached


class TrialKernel:
    """Exact, side-effect-free trial evaluation over frontier views."""

    #: switch to the NumPy batch formulation past this many work items
    #: (candidates × pool entries); below it the scalar loop wins.
    numpy_threshold = 2048
    #: vectorize a cross-task sweep once it has at least this many
    #: uncached (task, processor) rows; below that the scalar loop beats
    #: the NumPy dispatch overhead (the crossover sits around the
    #: paper's m=20 platforms).
    sweep_numpy_threshold = 256
    #: vectorize routed sweeps at this many uncached rows — the lockstep
    #: recurrence carries one scalar frontier per row, so it pays off
    #: earlier than the clique matrix formulation.
    routed_numpy_threshold = 64
    #: vectorize insertion sweeps at this many uncached rows (the key
    #: prologue vectorizes; the per-row gap replay stays scalar).
    insertion_numpy_threshold = 64

    __slots__ = (
        "builder",
        "network",
        "instance",
        "graph",
        "caps",
        "kind",
        "_frontiers",
        "_vector_ok",
        "_cost",
        "_delay",
        "_m",
        "_version",
        "_send_changed",
        "_recv_changed",
        "_link_changed",
        "_entries",
        "_cache",
        "_ctx_version",
        "_routemax",
        "_routemax_rows",
        "_linkcol_rows",
        "_stats",
    )

    def __init__(self, builder, caps: KernelCaps) -> None:
        self.builder = builder
        self.network = builder.network
        self.instance = builder.instance
        self.graph = builder.instance.graph
        self.caps = caps
        self.kind = _caps_kind(caps)
        view = self.network.frontier_view()
        if view is None:
            raise SchedulingError(
                f"network model {self.network.name!r} declares kernel_caps() "
                "but frontier_view() returned None"
            )
        self._frontiers = view
        #: the NumPy batch formulation covers the scalar-frontier algebra
        #: only; routed hop maxima and gap-timeline scans stay scalar
        self._vector_ok = not (caps.routed or caps.gap_timelines)
        self._cost = builder.instance.exec_cost.tolist()
        #: unit delays come from the *network's* platform (for routed
        #: models these are the end-to-end route delays), exactly what
        #: the slow path's ``transfer_time`` uses
        self._delay = view.delay
        self._m = builder.instance.num_procs
        #: monotone commit counter plus, per processor, the version at
        #: which its send side (port + outgoing links) and receive side
        #: (port, incoming links, ready time, compute floor) last moved
        self._version = 0
        self._send_changed = [0] * self._m
        self._recv_changed = [0] * self._m
        #: routed models: per-directed-physical-link versions — two
        #: routes sharing a hop must invalidate each other's cache lines
        self._link_changed = [0] * view.num_links if caps.routed else None
        #: task -> (pool signature, _TaskEntries)
        self._entries: dict[int, tuple[tuple, _TaskEntries]] = {}
        #: task -> (pool signature, {proc: (version, Trial)})
        self._cache: dict[int, tuple[tuple, dict]] = {}
        #: commit version the per-version derived state below is valid
        #: for (-1 = never built)
        self._ctx_version = -1
        #: routed: (m, m) max committed hop frontier per (src, dst) route
        self._routemax: Optional[np.ndarray] = None
        #: routed: dst -> plain-list column of ``_routemax`` (scalar path)
        self._routemax_rows: dict[int, list] = {}
        #: insertion: dst -> plain-list link-frontier column (scalar path)
        self._linkcol_rows: dict[int, list] = {}
        #: observability counters (see :meth:`kernel_stats`)
        self._stats = {
            "cache_hits": 0,
            "cache_misses": 0,
            "batch_calls": 0,
            "batch_rows": 0,
            "scalar_calls": 0,
            "scalar_rows": 0,
        }

    @classmethod
    def create(cls, builder) -> Optional["TrialKernel"]:
        """Kernel for ``builder``'s network, or ``None`` (with a one-time
        warning) when the model's declared capabilities are unsupported."""
        caps = builder.network.kernel_caps()
        reason = _unsupported_reason(caps)
        if reason is not None:
            _warn_fallback(builder.network, reason)
            return None
        return cls(builder, caps)

    # ------------------------------------------------------------------
    # Cache invalidation
    # ------------------------------------------------------------------
    def note_commit(self, proc: int, placed) -> None:
        """Record which resources a commit dirtied.

        ``proc`` hosts the new replica: its ready time, receive port,
        incoming links and compute floor moved (receive side).  Every
        placed message with nonzero duration moved its sender's port and
        the link(s) toward ``proc`` (send side; for routed models every
        directed hop of the message's route gets its epoch bumped).  The
        contention-free macro model reserves nothing, so only the host's
        ready time moves.

        The shared-port (uniport) model has one engine per processor —
        its send and receive frontiers are the *same* array — so there
        every touched processor moves on both sides at once.
        """
        self._version += 1
        v = self._version
        kind = self.kind
        recv_changed = self._recv_changed
        recv_changed[proc] = v
        if kind == "macro":
            return
        send_changed = self._send_changed
        if kind == "routed":
            link_changed = self._link_changed
            hop_row = self._frontiers.route_hops
            for _pred, r, start, finish in placed:
                if finish > start:
                    send_changed[r.proc] = v
                    for h in hop_row[r.proc][proc]:
                        link_changed[h] = v
            return
        uni = kind == "uniport"
        if uni:
            # the host's receive activity occupies its shared port, which
            # is also what suppliers' sender_bound/send state reads
            send_changed[proc] = v
        for _pred, r, start, finish in placed:
            if finish > start:
                send_changed[r.proc] = v
                if uni:
                    # a sender's shared port is likewise its receive side
                    recv_changed[r.proc] = v
        if kind == "nooverlap":
            # note_compute advances the host's send port as well
            send_changed[proc] = v

    # ------------------------------------------------------------------
    # Entry building / caching
    # ------------------------------------------------------------------
    def _entries_for(self, task: int, sources) -> tuple[_TaskEntries, bool]:
        """Entry state for ``task``; second element: came from the cache line.

        Only *canonical* source maps — every pool is the live
        ``schedule.replicas[pred]`` list — are cached: those lists are
        append-only, so (task, per-pool length) fully determines their
        content.  An arbitrary filtered pool of the same length would
        alias the cache line, so it is built fresh (and the caller must
        not reuse cached trials for it either).
        """
        preds = self.graph.preds(task)
        replicas = self.builder.schedule.replicas
        try:
            canonical = all(sources[p] is replicas[p] for p in preds)
        except KeyError as exc:
            raise SchedulingError(
                f"no sources provided for predecessor t{exc.args[0]} of t{task}"
            ) from None
        if not canonical:
            return _TaskEntries(self.graph, task, sources), False
        sig = tuple(len(sources[p]) for p in preds)
        cached = self._entries.get(task)
        if cached is not None and cached[0] == sig:
            return cached[1], True
        entries = _TaskEntries(self.graph, task, sources)
        self._entries[task] = (sig, entries)
        return entries, True

    def _srcs_changed_after(self, entries: _TaskEntries) -> int:
        """Latest version at which any supplier's send side moved.

        A trial of this task on candidate ``p`` reads ``send_free[src]``
        and the link frontier(s) toward ``p`` for every supplier ``src``
        — both move only when ``src`` sends (routed link sharing is
        covered separately by the per-hop epochs).  Shared by every
        candidate, so the cache validity check per processor is O(1)
        for clique models: a cached trial computed at version ``v`` is
        exact iff ``v >= max(srcs_changed, recv_changed[p])`` (plus
        ``send_changed[p]`` for the no-overlap compute floor, plus the
        hop epochs of every supplier route for routed models).
        """
        if self.kind == "macro":
            return 0
        send_changed = self._send_changed
        latest = 0
        for s in entries.srcs:
            c = send_changed[s]
            if c > latest:
                latest = c
        return latest

    def _hops_changed_after(self, entries: _TaskEntries, proc: int) -> int:
        """Latest version at which any supplier-route hop toward ``proc``
        moved (routed models only — route sharing invalidation)."""
        link_changed = self._link_changed
        hop_row = self._frontiers.route_hops
        latest = 0
        for s in entries.srcs:
            for h in hop_row[s][proc]:
                c = link_changed[h]
                if c > latest:
                    latest = c
        return latest

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def batch_trials(
        self,
        task: int,
        procs: Sequence[int],
        sources: Mapping[int, Sequence[Replica]],
    ) -> list[Trial]:
        """Candidate trials for every processor in ``procs`` (one pass).

        A single-task slice of :meth:`sweep_trials_batch`: the HEFT/FTSA
        candidate loops share the same batched evaluators and (for
        canonical supplier pools) the same epoch cache as FTBAR's sweep.
        """
        return self.sweep_trials_batch(
            (task,), {task: sources}, procs={task: procs}
        )[task]

    def trial_with_heads(
        self,
        task: int,
        proc: int,
        sources: Mapping[int, Sequence[Replica]],
        heads: Mapping[int, Replica],
    ) -> Trial:
        """One candidate where each predecessor in ``heads`` supplies via
        its designated replica only (CAFT's one-to-one rounds); the rest
        fall back to the full ``sources`` pool.  Sharing ``sources``
        across the candidate sweep lets the per-task entry state be built
        once instead of once per processor.
        """
        entries, _cacheable = self._entries_for(task, sources)
        self._stats["scalar_calls"] += 1
        self._stats["scalar_rows"] += 1
        return self._eval(task, proc, entries, heads)

    def sweep_trials(
        self,
        tasks: Sequence[int],
        sources_map: Mapping[int, Mapping[int, Sequence[Replica]]],
    ) -> dict[int, list[Trial]]:
        """Trials for *every* (free task, processor) pair in one pass
        (FTBAR's re-scoring sweep) — see :meth:`sweep_trials_batch`."""
        return self.sweep_trials_batch(tasks, sources_map)

    def sweep_trials_batch(
        self,
        tasks: Sequence[int],
        sources_map: Mapping[int, Mapping[int, Sequence[Replica]]],
        procs: Optional[Mapping[int, Sequence[int]]] = None,
    ) -> dict[int, list[Trial]]:
        """Trials for every requested (task, candidate processor) pair in
        one batched call.

        ``procs`` maps each task to its candidate processors; ``None``
        means every processor for every task (FTBAR's step pattern:
        re-score all free tasks against all processors after every
        placement — free tasks have no replicas yet, so every processor
        is eligible).  Cached rows whose input epochs are untouched are
        reused; the remaining rows share one eq. (6) prologue per task
        and are evaluated together — one vectorized pass per evaluator
        family once the sweep is big enough to pay for itself.

        Returns ``{task: trials}`` with ``trials`` aligned to the task's
        candidate list (index == processor when ``procs`` is ``None``).
        """
        m = self._m
        version = self._version
        recv_changed = self._recv_changed
        send_changed = self._send_changed
        nooverlap = self.kind == "nooverlap"
        routed = self.kind == "routed"
        stats = self._stats

        out: dict[int, list[Optional[Trial]]] = {}
        misses: list[tuple[_TaskEntries, int, int]] = []
        #: per miss: (task, index in the task's trial list, proc, cache dict)
        slots: list[tuple[int, int, int, dict]] = []
        for task in tasks:
            plist = range(m) if procs is None else procs[task]
            entries, cacheable = self._entries_for(task, sources_map[task])
            if not cacheable:
                # non-canonical pools must not alias the trial cache
                self._cache.pop(task, None)
                per_proc: dict[int, tuple[int, Trial]] = {}
            else:
                cached = self._cache.get(task)
                if cached is None or cached[0] != entries.sig:
                    per_proc = {}
                    self._cache[task] = (entries.sig, per_proc)
                else:
                    per_proc = cached[1]
            srcs_changed = self._srcs_changed_after(entries)
            trials: list[Optional[Trial]] = [None] * len(plist)
            for i, p in enumerate(plist):
                hit = per_proc.get(p)
                if hit is not None:
                    v = hit[0]
                    if (
                        v >= srcs_changed
                        and v >= recv_changed[p]
                        and (not nooverlap or v >= send_changed[p])
                        and (not routed or v >= self._hops_changed_after(entries, p))
                    ):
                        trials[i] = hit[1]
                        stats["cache_hits"] += 1
                        continue
                stats["cache_misses"] += 1
                misses.append((entries, task, p))
                slots.append((task, i, p, per_proc))
            out[task] = trials

        if misses:
            fresh = self._eval_misses(misses)
            for (task, i, p, per_proc), trial in zip(slots, fresh):
                per_proc[p] = (version, trial)
                out[task][i] = trial
        return out

    def _eval_misses(self, misses) -> list[Trial]:
        """Evaluate uncached ``(entries, task, proc)`` rows, choosing the
        vectorized pass for the kernel's evaluator family once the batch
        is big enough to pay for the NumPy dispatch overhead."""
        n = len(misses)
        kind = self.kind
        stats = self._stats
        if kind == "routed":
            if n >= self.routed_numpy_threshold:
                stats["batch_calls"] += 1
                stats["batch_rows"] += n
                return self._eval_rows_routed(misses)
        elif kind == "insertion":
            if n >= self.insertion_numpy_threshold:
                stats["batch_calls"] += 1
                stats["batch_rows"] += n
                return self._eval_rows_insertion(misses)
        elif n >= self.sweep_numpy_threshold or (
            sum(e.nwork for e, _t, _p in misses) >= self.numpy_threshold
        ):
            stats["batch_calls"] += 1
            stats["batch_rows"] += n
            return self._eval_rows(misses)
        stats["scalar_calls"] += 1
        stats["scalar_rows"] += n
        return [self._eval(t, p, e) for e, t, p in misses]

    def kernel_stats(self) -> dict:
        """Observability counters: evaluator family, epoch-cache traffic,
        and how many rows went through the batched vs scalar evaluators.

        ``cache_hits``/``cache_misses`` count (task, proc) rows served
        from / past the epoch cache; ``batch_calls``/``batch_rows`` the
        vectorized evaluations, ``scalar_calls``/``scalar_rows`` the
        scalar ones (including CAFT's per-head trials).
        """
        s = dict(self._stats)
        s["evaluator"] = self.kind
        looked_up = s["cache_hits"] + s["cache_misses"]
        s["cache_hit_rate"] = s["cache_hits"] / looked_up if looked_up else 0.0
        return s

    # ------------------------------------------------------------------
    # Per-commit-version derived frontier state
    # ------------------------------------------------------------------
    def _sync_version(self) -> None:
        """Drop derived frontier state when a commit moved the frontiers."""
        if self._ctx_version != self._version:
            self._ctx_version = self._version
            self._routemax = None
            if self._routemax_rows:
                self._routemax_rows = {}
            if self._linkcol_rows:
                self._linkcol_rows = {}

    def _routemax_matrix(self) -> np.ndarray:
        """Routed models: ``(m, m)`` matrix of the max committed frontier
        over each static route's directed hops.

        One ``np.maximum.reduceat`` over the topology's flat hop CSR
        replaces ``m²`` Python hop loops; rebuilt once per commit and
        shared by the scalar evaluator (as plain-list columns) and the
        lockstep batch evaluator (as the full matrix).
        """
        self._sync_version()
        rm = self._routemax
        if rm is None:
            view = self._frontiers
            m = self._m
            indptr, ids = view.hop_csr()
            if ids.size:
                vals = np.asarray(view.link_free, dtype=np.float64)[ids]
                seg = indptr[:-1]
                empty = seg == indptr[1:]
                # reduceat cannot take an empty segment at the end of the
                # id array (and yields vals[seg] for interior ones):
                # clamp, then zero the empty rows — those are the
                # diagonal src == dst routes, which no message ever reads.
                out = np.maximum.reduceat(vals, np.minimum(seg, vals.size - 1))
                out[empty] = 0.0
            else:
                out = np.zeros(m * m)
            rm = self._routemax = out.reshape(m, m)
        return rm

    def _routemax_to(self, proc: int) -> list:
        """``_routemax``'s column toward ``proc`` as a plain list (the
        scalar routed evaluator indexes it per message source)."""
        self._sync_version()
        row = self._routemax_rows.get(proc)
        if row is None:
            row = self._routemax_matrix()[:, proc].tolist()
            self._routemax_rows[proc] = row
        return row

    def _linkcol_to(self, proc: int) -> list:
        """Committed link frontiers toward ``proc`` as a plain list
        indexed by source (clique link index ``src * m + proc``)."""
        self._sync_version()
        row = self._linkcol_rows.get(proc)
        if row is None:
            link0 = self._frontiers.link_free
            m = self._m
            row = [link0[src * m + proc] for src in range(m)]
            self._linkcol_rows[proc] = row
        return row

    # ------------------------------------------------------------------
    # Scalar evaluation (exact mirror of ScheduleBuilder._place)
    # ------------------------------------------------------------------
    def _finish_trial(
        self,
        task: int,
        proc: int,
        loc: list,
        arrival: list,
        floor: float,
    ) -> Trial:
        """Shared eq. (6) epilogue: merge local/remote supplies into the
        data-ready time, apply the compute floor and processor ready
        time, and materialize the :class:`Trial`.  Single-sourced so the
        scalar, routed and insertion evaluators cannot drift apart."""
        data_ready = 0.0
        for slot in range(len(loc)):
            supply = loc[slot]
            if supply is None:
                supply = _INF
            a = arrival[slot]
            if a < supply:
                supply = a
            if supply > data_ready:
                data_ready = supply

        start = self.builder.proc_ready[proc]
        if floor > start:
            start = floor
        if data_ready > start:
            start = data_ready
        finish = start + self._cost[task][proc]
        return Trial(task, proc, start, finish, data_ready)

    def _eval(
        self,
        task: int,
        proc: int,
        entries: _TaskEntries,
        heads: Optional[Mapping[int, Replica]] = None,
    ) -> Trial:
        kind = self.kind
        if kind == "routed":
            return self._eval_routed(task, proc, entries, heads)
        if kind == "insertion":
            return self._eval_insertion(task, proc, entries, heads)
        view = self._frontiers
        m = self._m
        delay = self._delay
        strict = self.builder.strict_local_suppression
        preds = entries.preds
        vols = entries.vols
        pools = entries.pools
        locals_ = entries.local
        selfsuff = entries.selfsuff
        nslots = len(preds)
        macro = kind == "macro"
        if not macro:
            send0 = view.send_free
            link0 = view.link_free
            lbase = proc  # link index of src -> proc is src * m + proc

        # eq. (6): collect remote messages with their sender-side keys.
        # (The contention-free macro model needs no keys: arrivals are
        # order-independent, so the sort is skipped entirely.)
        remote: list[tuple] = []
        loc: list[Optional[float]] = [None] * nslots
        for slot in range(nslots):
            pred = preds[slot]
            if heads is not None and pred in heads:
                # Designated one-to-one supplier: sole source for this
                # predecessor — co-located means pure local supply.
                h = heads[pred]
                src = h.proc
                if src == proc:
                    loc[slot] = h.finish
                    continue
                ready = h.finish
                w = vols[slot] * delay[src][proc]
                if macro or w == 0.0:
                    key = ready
                else:
                    key = ready
                    sf = send0[src]
                    if sf > key:
                        key = sf
                    lf = link0[src * m + lbase]
                    if lf > key:
                        key = lf
                    key += w
                remote.append((key, pred, h.index, src, slot, ready, w))
                continue
            local = locals_[slot]
            lf_local = local.get(proc)
            if lf_local is not None:
                loc[slot] = lf_local
                if strict or proc in selfsuff[slot]:
                    continue
            vol = vols[slot]
            for index, src, ready in pools[slot]:
                if src == proc:
                    continue
                w = vol * delay[src][proc]
                if macro or w == 0.0:
                    key = ready
                else:
                    key = ready
                    sf = send0[src]
                    if sf > key:
                        key = sf
                    lf = link0[src * m + lbase]
                    if lf > key:
                        key = lf
                    key += w
                remote.append((key, pred, index, src, slot, ready, w))

        # Serialize the messages against simulated port/link frontiers.
        arrival = [_INF] * nslots
        if macro:
            for _key, _pred, _index, _src, slot, ready, w in remote:
                f = ready + w
                if f < arrival[slot]:
                    arrival[slot] = f
            floor = 0.0
        else:
            remote.sort()
            # Uniport aliasing needs no special casing: ``send_free`` IS
            # ``recv_free`` there, so ``send0`` reads the shared port and
            # the overlays below touch disjoint indices (src != proc).
            rf = view.recv_free[proc]
            sf_sim: dict[int, float] = {}
            lf_sim: dict[int, float] = {}
            for _key, _pred, _index, src, slot, ready, w in remote:
                if w == 0.0:
                    f = ready
                else:
                    start = ready
                    s = sf_sim.get(src)
                    if s is None:
                        s = send0[src]
                    if s > start:
                        start = s
                    if rf > start:
                        start = rf
                    l = lf_sim.get(src)
                    if l is None:
                        l = link0[src * m + lbase]
                    if l > start:
                        start = l
                    f = start + w
                    sf_sim[src] = f
                    rf = f
                    lf_sim[src] = f
                if f < arrival[slot]:
                    arrival[slot] = f
            if kind == "nooverlap":
                floor = send0[proc]
                if rf > floor:
                    floor = rf
            else:
                floor = 0.0

        return self._finish_trial(task, proc, loc, arrival, floor)

    def _collect_messages(self, proc, entries, heads, extra):
        """eq. (6) prologue shared by the routed/insertion evaluators.

        Splits each predecessor's supply into a co-located replica and
        remote messages sorted by their sender-side keys — the same slot
        loop ``_eval`` inlines for the scalar-frontier models.
        ``extra[src]`` is the per-candidate-processor frontier a message
        from ``src`` additionally clears (the route-hop maximum for
        routed models, the directed-link scalar for insertion); the
        sender-side bases ``max(ready, send_free[src])`` come precomputed
        per task (:meth:`_TaskEntries.sbase_pools`), so the per-processor
        work is one max and one add per pool entry — no closure
        allocation, no repeated sender-frontier reads.
        """
        delay = self._delay
        send0 = self._frontiers.send_free
        strict = self.builder.strict_local_suppression
        preds = entries.preds
        vols = entries.vols
        pools = entries.pools
        locals_ = entries.local
        selfsuff = entries.selfsuff
        nslots = len(preds)
        sb_pools = entries.sbase_pools(send0, self._version)
        remote: list[tuple] = []
        loc: list[Optional[float]] = [None] * nslots
        for slot in range(nslots):
            pred = preds[slot]
            if heads is not None and pred in heads:
                h = heads[pred]
                src = h.proc
                if src == proc:
                    loc[slot] = h.finish
                    continue
                ready = h.finish
                w = vols[slot] * delay[src][proc]
                if w == 0.0:
                    key = ready
                else:
                    key = ready
                    sf = send0[src]
                    if sf > key:
                        key = sf
                    ex = extra[src]
                    if ex > key:
                        key = ex
                    key += w
                remote.append((key, pred, h.index, src, slot, ready, w))
                continue
            local = locals_[slot]
            lf_local = local.get(proc)
            if lf_local is not None:
                loc[slot] = lf_local
                if strict or proc in selfsuff[slot]:
                    continue
            vol = vols[slot]
            sbases = sb_pools[slot]
            pool = pools[slot]
            for i in range(len(pool)):
                index, src, ready = pool[i]
                if src == proc:
                    continue
                w = vol * delay[src][proc]
                if w == 0.0:
                    key = ready
                else:
                    key = sbases[i]
                    ex = extra[src]
                    if ex > key:
                        key = ex
                    key += w
                remote.append((key, pred, index, src, slot, ready, w))
        remote.sort()
        return loc, remote

    def _eval_routed(
        self,
        task: int,
        proc: int,
        entries: _TaskEntries,
        heads: Optional[Mapping[int, Replica]] = None,
    ) -> Trial:
        """Route-aware serialization (§7): a message's start clears its
        sender port, the receiver port and **every** directed hop of its
        static route.

        The committed half of each hop maximum is one precomputed
        per-(src, proc) value (:meth:`_routemax_matrix`); reception then
        serializes by the exact recurrence ``f = max(key, rf + w)``.
        This is bit-identical to simulating per-hop frontiers: after any
        prefix of the key-sorted messages, every simulated sender or hop
        frontier equals the finish of some earlier message, and the
        receiver frontier ``rf`` (updated to every finish) dominates all
        of them — so a message's start is ``max(base, rf)`` with ``base``
        its committed bound, and since IEEE-754 rounding is monotone,
        ``fl(max(base, rf) + w) = max(fl(base + w), fl(rf + w)) =
        max(key, fl(rf + w))``.
        """
        loc, remote = self._collect_messages(
            proc, entries, heads, self._routemax_to(proc)
        )

        arrival = [_INF] * len(entries.preds)
        rf = self._frontiers.recv_free[proc]
        for key, _pred, _index, _src, slot, ready, w in remote:
            if w == 0.0:
                f = ready
            else:
                t = rf + w
                f = key if key > t else t
                rf = f
            if f < arrival[slot]:
                arrival[slot] = f

        return self._finish_trial(task, proc, loc, arrival, 0.0)

    def _eval_insertion(
        self,
        task: int,
        proc: int,
        entries: _TaskEntries,
        heads: Optional[Mapping[int, Replica]] = None,
    ) -> Trial:
        """Gap-aware serialization for the insertion policy: eq. (6)
        ordering still comes from the scalar sender-side frontiers (that
        is what ``sender_bound`` reads), but each message is then placed
        by the same first-common-gap scan ``place_transfer`` runs — over
        trial-local :class:`_GapOverlay` copies of the busy timelines
        (NumPy gap arrays, copied on first touch per resource), so
        nothing is reserved.  A trial whose messages are all local or
        zero-volume touches no timeline and copies nothing — including
        the receiver's, which is only materialized for the first remote
        message.
        """
        view = self._frontiers
        m = self._m
        loc, remote = self._collect_messages(
            proc, entries, heads, self._linkcol_to(proc)
        )

        arrival = [_INF] * len(entries.preds)
        #: trial-local overlays (copy-on-first-touch per resource; the
        #: link toward ``proc`` is unique per sender, so both the send
        #: and link overlays key on ``src``)
        recv_ov: Optional[_GapOverlay] = None
        send_ov: dict[int, _GapOverlay] = {}
        link_ov: dict[int, _GapOverlay] = {}
        for _key, _pred, _index, src, slot, ready, w in remote:
            if w == 0.0:
                f = ready
            else:
                sov = send_ov.get(src)
                if sov is None:
                    sov = _GapOverlay(view.gap_arrays("send", src))
                    send_ov[src] = sov
                if recv_ov is None:
                    recv_ov = _GapOverlay(view.gap_arrays("recv", proc))
                lov = link_ov.get(src)
                if lov is None:
                    lov = _GapOverlay(view.gap_arrays("link", src * m + proc))
                    link_ov[src] = lov
                # the same first-common-gap scan place_transfer runs,
                # against the trial-local overlays (send/recv/link order)
                start = _common_gap3(
                    sov.starts, sov.ends,
                    recv_ov.starts, recv_ov.ends,
                    lov.starts, lov.ends,
                    ready, w,
                )
                f = start + w
                sov.insert(start, f)
                recv_ov.insert(start, f)
                lov.insert(start, f)
            if f < arrival[slot]:
                arrival[slot] = f

        return self._finish_trial(task, proc, loc, arrival, 0.0)

    # ------------------------------------------------------------------
    # NumPy batch evaluation (one pass over arbitrary (task, proc) rows)
    # ------------------------------------------------------------------
    def _assemble_rows(self, jobs):
        """Shared row-table assembly for the batch evaluators.

        Builds the padded per-row message tables for arbitrary
        ``(entries, task, proc)`` rows: distinct entry objects are padded
        once to the sweep's ``(Rmax, Smax)`` shape and gathered per row.
        Returns ``(proc, task_ids, pr, cost, tix, uniq, Rmax, Smax,
        tables)`` with ``tables`` ``None`` when no row has any
        predecessor (``Rmax == 0``).
        """
        nrows = len(jobs)
        strict = self.builder.strict_local_suppression
        m = self._m
        proc = np.fromiter((j[2] for j in jobs), dtype=np.int64, count=nrows)
        task_ids = np.fromiter((j[1] for j in jobs), dtype=np.int64, count=nrows)
        pr = np.asarray(self.builder.proc_ready, dtype=np.float64)[proc]
        cost = self.instance.exec_cost[task_ids, proc]

        table_ix: dict[int, int] = {}
        uniq: list[_TaskEntries] = []
        for e, _t, _p in jobs:
            if id(e) not in table_ix:
                table_ix[id(e)] = len(uniq)
                uniq.append(e)
        tix = np.fromiter(
            (table_ix[id(j[0])] for j in jobs), dtype=np.int64, count=nrows
        )
        Rmax = max(e.arrays()[0].size for e in uniq)
        Smax = max(len(e.preds) for e in uniq)
        if Rmax == 0:
            return proc, task_ids, pr, cost, tix, uniq, Rmax, Smax, None
        pads = [e.padded(Rmax, Smax, m, strict) for e in uniq]
        tables = tuple(np.stack([p[i] for p in pads]) for i in range(10))
        return proc, task_ids, pr, cost, tix, uniq, Rmax, Smax, tables

    def _eval_rows(self, jobs) -> list[Trial]:
        """One NumPy pass over arbitrary ``(entries, task, proc)`` rows.

        The workhorse behind both the per-task candidate sweep and the
        cross-task FTBAR sweep: every row's eq. (6) serialization runs in
        lockstep against its own frontier vectors, with per-row lexsorted
        message orders.  Operations mirror the scalar path exactly (same
        IEEE-754 maxima/additions in the same order), so results are
        bit-identical.  Scalar-frontier models only (``_vector_ok``).
        """
        kind = self.kind
        view = self._frontiers
        m = self._m
        macro = kind == "macro"
        strict = self.builder.strict_local_suppression
        nrows = len(jobs)
        rows = np.arange(nrows)
        proc = np.fromiter((j[2] for j in jobs), dtype=np.int64, count=nrows)
        task_ids = np.fromiter((j[1] for j in jobs), dtype=np.int64, count=nrows)
        pr = np.asarray(self.builder.proc_ready, dtype=np.float64)[proc]
        cost = self.instance.exec_cost[task_ids, proc]

        # Distinct entry objects -> padded (T, Rmax)/(T, Smax) tables.
        table_ix: dict[int, int] = {}
        uniq: list[_TaskEntries] = []
        for e, _t, _p in jobs:
            if id(e) not in table_ix:
                table_ix[id(e)] = len(uniq)
                uniq.append(e)
        tix = np.fromiter(
            (table_ix[id(j[0])] for j in jobs), dtype=np.int64, count=nrows
        )
        flats = [e.arrays() for e in uniq]
        Rmax = max(f[0].size for f in flats)
        Smax = max(len(e.preds) for e in uniq)

        if not macro:
            send0 = np.asarray(view.send_free, dtype=np.float64)
            recv0 = np.asarray(view.recv_free, dtype=np.float64)
            link0 = np.asarray(view.link_free, dtype=np.float64).reshape(m, m)

        if Rmax == 0:
            data_ready = np.zeros(nrows)
        else:
            pads = [e.padded(Rmax, Smax, m, strict) for e in uniq]
            Tpred = np.stack([p[0] for p in pads])
            Tidx = np.stack([p[1] for p in pads])
            Tsrc = np.stack([p[2] for p in pads])
            Tready = np.stack([p[3] for p in pads])
            Tslot = np.stack([p[4] for p in pads])
            Tvol = np.stack([p[5] for p in pads])
            Tmask = np.stack([p[6] for p in pads])
            Tsup = np.stack([p[7] for p in pads])
            Tlocal = np.stack([p[8] for p in pads])
            Tslotmask = np.stack([p[9] for p in pads])

            SRC = Tsrc[tix]
            READY = Tready[tix]
            PRED = Tpred[tix]
            IDX = Tidx[tix]
            SLOT = Tslot[tix]
            D = view.delay_np
            W = Tvol[tix] * D[SRC, proc[:, None]]
            pcol = proc[:, None]
            valid = Tmask[tix] & (SRC != pcol)
            valid &= ~np.take_along_axis(
                Tsup[tix], pcol[:, :, None], axis=2
            )[:, :, 0]

            arrival = np.full((nrows, Smax), _INF)
            if macro:
                fin = np.where(valid, READY + W, _INF)
                np.minimum.at(
                    arrival,
                    (np.repeat(rows, Rmax)[valid.ravel()], SLOT.ravel()[valid.ravel()]),
                    fin.ravel()[valid.ravel()],
                )
                floor = np.zeros(nrows)
            else:
                LF0 = link0[SRC, pcol]
                base = np.maximum(READY, send0[SRC])
                key = np.where(W > 0.0, np.maximum(base, LF0) + W, READY)
                key_masked = np.where(valid, key, _INF)
                order = np.lexsort((SRC, IDX, PRED, key_masked))
                counts = valid.sum(axis=1)

                SF = np.broadcast_to(send0, (nrows, m)).copy()
                RF = recv0[proc].copy()
                LFm = link0.T[proc].copy()  # (nrows, m): link src -> proc
                uni = kind == "uniport"
                for k in range(int(counts.max()) if nrows else 0):
                    act = k < counts
                    if not act.any():
                        break
                    j = order[:, k]
                    src = SRC[rows, j]
                    ready = READY[rows, j]
                    w = W[rows, j]
                    slot = SLOT[rows, j]
                    start = np.maximum(
                        np.maximum(ready, SF[rows, src]),
                        np.maximum(RF, LFm[rows, src]),
                    )
                    fin = np.where(w > 0.0, start + w, ready)
                    upd = act & (w > 0.0)
                    if upd.any():
                        SF[rows[upd], src[upd]] = fin[upd]
                        if uni:
                            SF[rows[upd], proc[upd]] = fin[upd]
                        RF[upd] = fin[upd]
                        LFm[rows[upd], src[upd]] = fin[upd]
                    cur = arrival[rows[act], slot[act]]
                    arrival[rows[act], slot[act]] = np.minimum(cur, fin[act])
                if kind == "nooverlap":
                    floor = np.maximum(send0[proc], RF)
                else:
                    floor = np.zeros(nrows)

            LS = np.take_along_axis(
                Tlocal[tix], pcol[:, :, None], axis=2
            )[:, :, 0]
            supply = np.minimum(LS, arrival)
            supply = np.where(Tslotmask[tix], supply, -_INF)
            if Smax:
                data_ready = np.maximum(supply.max(axis=1), 0.0)
            else:
                data_ready = np.zeros(nrows)

        if Rmax == 0:
            if kind == "nooverlap":
                floor = np.maximum(send0[proc], recv0[proc])
            else:
                floor = np.zeros(nrows)

        start = np.maximum(np.maximum(pr, floor), data_ready)
        finish = start + cost
        return [
            Trial(int(t), int(p), float(s), float(f), float(d))
            for t, p, s, f, d in zip(task_ids, proc, start, finish, data_ready)
        ]

    def _keys_and_order(self, view_extra, proc, tix, tables):
        """Vectorized eq. (6) key prologue shared by the routed and
        insertion batch evaluators.

        ``view_extra[src, dst]`` is the committed per-pair frontier each
        message additionally clears (route-hop max / link scalar).
        Returns the gathered message tables plus each row's lexsorted
        message order and valid-message count; the lexsort tiebreak
        ``(PRED, IDX, SRC)`` mirrors the scalar tuple sort — ``(pred,
        index)`` uniquely identifies a message, so later tuple fields are
        never reached.
        """
        view = self._frontiers
        (Tpred, Tidx, Tsrc, Tready, Tslot, Tvol, Tmask, Tsup, _Tl, _Tm) = tables
        SRC = Tsrc[tix]
        READY = Tready[tix]
        PRED = Tpred[tix]
        IDX = Tidx[tix]
        SLOT = Tslot[tix]
        pcol = proc[:, None]
        W = Tvol[tix] * view.delay_np[SRC, pcol]
        valid = Tmask[tix] & (SRC != pcol)
        valid &= ~np.take_along_axis(Tsup[tix], pcol[:, :, None], axis=2)[:, :, 0]

        send0 = np.asarray(view.send_free, dtype=np.float64)
        base = np.maximum(READY, send0[SRC])
        key = np.where(W > 0.0, np.maximum(base, view_extra[SRC, pcol]) + W, READY)
        key_masked = np.where(valid, key, _INF)
        order = np.lexsort((SRC, IDX, PRED, key_masked))
        counts = valid.sum(axis=1)
        return SRC, READY, SLOT, W, key, order, counts

    def _rows_epilogue(self, proc, task_ids, pr, cost, tix, tables, arrival, Smax):
        """Shared batch epilogue: merge local/remote supplies per row and
        materialize the trials (the vectorized ``_finish_trial``, with a
        zero compute floor — routed/insertion models never block
        compute)."""
        Tlocal, Tslotmask = tables[8], tables[9]
        LS = np.take_along_axis(Tlocal[tix], proc[:, None, None], axis=2)[:, :, 0]
        supply = np.minimum(LS, arrival)
        supply = np.where(Tslotmask[tix], supply, -_INF)
        if Smax:
            data_ready = np.maximum(supply.max(axis=1), 0.0)
        else:
            data_ready = np.zeros(len(task_ids))
        start = np.maximum(pr, data_ready)
        finish = start + cost
        return [
            Trial(t, p, s, f, d)
            for t, p, s, f, d in zip(
                task_ids.tolist(),
                proc.tolist(),
                start.tolist(),
                finish.tolist(),
                data_ready.tolist(),
            )
        ]

    def _eval_rows_routed(self, jobs) -> list[Trial]:
        """One lockstep pass over routed ``(entries, task, proc)`` rows.

        Every row's committed route-hop maxima come from the single CSR
        ``reduceat`` matrix, the eq. (6) keys for all rows are lexsorted
        at once, and the serialization recurrence ``f = max(key, rf +
        w)`` (see :meth:`_eval_routed` for the exactness argument)
        advances one receiver-frontier scalar per row in lockstep —
        bit-identical to the scalar evaluator.
        """
        proc, task_ids, pr, cost, tix, uniq, Rmax, Smax, tables = (
            self._assemble_rows(jobs)
        )
        nrows = len(jobs)
        if Rmax == 0:
            start = np.maximum(pr, 0.0)
            finish = start + cost
            return [
                Trial(int(t), int(p), float(s), float(f), 0.0)
                for t, p, s, f in zip(task_ids, proc, start, finish)
            ]
        SRC, READY, SLOT, W, key, order, counts = self._keys_and_order(
            self._routemax_matrix(), proc, tix, tables
        )
        rows = np.arange(nrows)
        arrival = np.full((nrows, Smax), _INF)
        RF = np.asarray(self._frontiers.recv_free, dtype=np.float64)[proc]
        for k in range(int(counts.max()) if nrows else 0):
            act = k < counts
            if not act.any():
                break
            j = order[:, k]
            w = W[rows, j]
            slot = SLOT[rows, j]
            fin = np.where(w > 0.0, np.maximum(key[rows, j], RF + w), READY[rows, j])
            upd = act & (w > 0.0)
            if upd.any():
                RF[upd] = fin[upd]
            cur = arrival[rows[act], slot[act]]
            arrival[rows[act], slot[act]] = np.minimum(cur, fin[act])
        return self._rows_epilogue(
            proc, task_ids, pr, cost, tix, tables, arrival, Smax
        )

    def _eval_rows_insertion(self, jobs) -> list[Trial]:
        """Batched insertion rows: the eq. (6) key prologue (sender-side
        keys, per-row lexsort, suppression masks) runs vectorized across
        every row at once; each row then replays its first-common-gap
        placements against trial-local gap-array overlays — bit-identical
        to the scalar evaluator, which shares both halves.
        """
        view = self._frontiers
        m = self._m
        proc, task_ids, pr, cost, tix, uniq, Rmax, Smax, tables = (
            self._assemble_rows(jobs)
        )
        nrows = len(jobs)
        if Rmax == 0:
            start = np.maximum(pr, 0.0)
            finish = start + cost
            return [
                Trial(int(t), int(p), float(s), float(f), 0.0)
                for t, p, s, f in zip(task_ids, proc, start, finish)
            ]
        link0 = np.asarray(view.link_free, dtype=np.float64).reshape(m, m)
        SRC, READY, SLOT, W, key, order, counts = self._keys_and_order(
            link0, proc, tix, tables
        )
        # The gap replay is scalar per row — pull each row's gathered
        # tables out as plain lists once (``tolist`` preserves bits), so
        # the inner loop pays no ndarray scalar-indexing overhead.
        # The replay walks messages in serialization order, so gather
        # every table through ``order`` once in C and drop to plain
        # lists (``tolist`` preserves bits) — the inner loop then pays
        # neither ndarray scalar indexing nor index indirection.
        SRC_l = np.take_along_axis(SRC, order, axis=1).tolist()
        READY_l = np.take_along_axis(READY, order, axis=1).tolist()
        SLOT_l = np.take_along_axis(SLOT, order, axis=1).tolist()
        W_l = np.take_along_axis(W, order, axis=1).tolist()
        counts_l = counts.tolist()
        proc_l = proc.tolist()
        # Overlays are raw (starts, ends) list pairs here rather than
        # _GapOverlay objects: the replay builds ~half a million of them
        # per m=40 campaign and object construction + method dispatch is
        # measurable at that volume.  A copy is made — and a simulated
        # reservation spliced in — only when a later message in the same
        # trial will read that timeline again: the send and link vectors
        # of a source that sends once, and the recv vectors after the
        # last port message, are scanned in place (the skipped writes
        # are never read, so the replay stays bit-identical).
        send_tls = view.send_timelines
        recv_tls = view.recv_timelines
        link_tls = view.link_timelines
        # Committed vectors are constant within one batched eval (no
        # commits between rows), so one lookup per resource serves every
        # row that touches it.
        sv_cache: dict[int, tuple] = {}
        lv_cache: dict[int, tuple] = {}
        rv_cache: dict[int, tuple] = {}
        br = bisect_right
        cg3 = _common_gap3
        arrival_rows: list[list[float]] = []
        for r in range(nrows):
            cnt = counts_l[r]
            arow = [_INF] * Smax
            p = proc_l[r]
            msgs = list(
                islice(zip(W_l[r], SLOT_l[r], SRC_l[r], READY_l[r]), cnt)
            )
            remaining: dict[int, int] = {}
            nleft = 0
            for w, _, src, _ in msgs:
                if w != 0.0:
                    nleft += 1
                    remaining[src] = remaining.get(src, 0) + 1
            # Most rows draw every port message from a distinct sender
            # (replicas spread over distinct processors): then no send
            # or link timeline is ever re-read in this trial and the
            # whole overlay apparatus reduces to read-only scans of the
            # committed vectors plus the shared recv overlay.
            distinct = len(remaining) == nleft
            recv_pair = None
            send_ov: dict[int, tuple] = {}
            link_ov: dict[int, tuple] = {}
            for w, slot, src, ready_k in msgs:
                if w == 0.0:
                    f = ready_k
                else:
                    nleft -= 1
                    if distinct:
                        rem = 0
                        ss_se = sv_cache.get(src)
                        if ss_se is None:
                            ss_se = send_tls[src].gap_vectors()
                            sv_cache[src] = ss_se
                        ss, se = ss_se
                        lid = src * m + p
                        ls_le = lv_cache.get(lid)
                        if ls_le is None:
                            ls_le = link_tls[lid].gap_vectors()
                            lv_cache[lid] = ls_le
                        ls, le = ls_le
                    else:
                        rem = remaining[src] - 1
                        remaining[src] = rem
                        pair = send_ov.get(src)
                        if pair is not None:
                            ss, se = pair
                        else:
                            base = sv_cache.get(src)
                            if base is None:
                                base = send_tls[src].gap_vectors()
                                sv_cache[src] = base
                            if rem:
                                ss = base[0][:]
                                se = base[1][:]
                                send_ov[src] = (ss, se)
                            else:
                                ss, se = base
                        lpair = link_ov.get(src)
                        if lpair is not None:
                            ls, le = lpair
                        else:
                            lid = src * m + p
                            base = lv_cache.get(lid)
                            if base is None:
                                base = link_tls[lid].gap_vectors()
                                lv_cache[lid] = base
                            if rem:
                                ls = base[0][:]
                                le = base[1][:]
                                link_ov[src] = (ls, le)
                            else:
                                ls, le = base
                    if recv_pair is not None:
                        rs, re_ = recv_pair
                    else:
                        base = rv_cache.get(p)
                        if base is None:
                            base = recv_tls[p].gap_vectors()
                            rv_cache[p] = base
                        if nleft:
                            rs = base[0][:]
                            re_ = base[1][:]
                            recv_pair = (rs, re_)
                        else:
                            rs, re_ = base
                    start = cg3(ss, se, rs, re_, ls, le, ready_k, w)
                    f = start + w
                    if rem:
                        i = br(ss, start)
                        ss.insert(i, start)
                        se.insert(i, f)
                        i = br(ls, start)
                        ls.insert(i, start)
                        le.insert(i, f)
                    if nleft:
                        i = br(rs, start)
                        rs.insert(i, start)
                        re_.insert(i, f)
                if f < arow[slot]:
                    arow[slot] = f
            arrival_rows.append(arow)
        arrival = (
            np.asarray(arrival_rows)
            if Smax
            else np.empty((nrows, 0))
        )
        return self._rows_epilogue(
            proc, task_ids, pr, cost, tix, tables, arrival, Smax
        )
