"""Schedule serialization: dict / JSON export and structural reload.

Downstream users want to persist schedules (e.g. feed a deployment tool or
compare runs across versions).  The export is self-contained: replica
placements, committed messages, per-resource orders, and the scalar
metrics.  ``schedule_from_dict`` rebuilds a *replayable* schedule against a
given problem instance — the import path is exercised by tests that
round-trip schedules and verify the replayed latencies match.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Callable

from repro.comm import OnePortNetwork, RoutedOnePortNetwork, make_network
from repro.platform.instance import ProblemInstance
from repro.platform.topology import Topology
from repro.schedule.schedule import CommEvent, Replica, Schedule
from repro.utils.errors import ScheduleValidationError


def _network_config(schedule: Schedule) -> dict:
    """Declarative network configuration for the export.

    The model *name* alone cannot rebuild a replayable network for the
    configured variants — the insertion policy and a routed topology
    (links + per-link delays) must round-trip, or replays of imported
    schedules silently fall back to append semantics / crash.
    """
    net = schedule.make_network()
    config: dict = {"model": net.name}
    if isinstance(net, RoutedOnePortNetwork):
        topo = net.topology
        config["topology"] = {
            "num_procs": topo.num_procs,
            "links": [[a, b, topo.link_delay(a, b)] for a, b in topo.links()],
        }
    elif type(net) is OnePortNetwork and net.policy != "append":
        config["policy"] = net.policy
    return config


def schedule_to_dict(schedule: Schedule) -> dict:
    """A JSON-serializable description of a committed schedule."""
    replicas = []
    for reps in schedule.replicas:
        for r in reps:
            replicas.append(
                {
                    "task": r.task,
                    "index": r.index,
                    "proc": r.proc,
                    "start": r.start,
                    "finish": r.finish,
                    "kind": r.kind,
                    "support": sorted(r.support),
                    "seq": r.seq,
                    "local_inputs": {
                        str(p): local.seq for p, local in r.local_inputs.items()
                    },
                }
            )
    events = [
        {
            "seq": e.seq,
            "src_task": e.src_task,
            "dst_task": e.dst_task,
            "src_replica_seq": e.src_replica.seq,
            "dst_replica_seq": e.dst_replica.seq if e.dst_replica else None,
            "src_proc": e.src_proc,
            "dst_proc": e.dst_proc,
            "volume": e.volume,
            "start": e.start,
            "finish": e.finish,
        }
        for e in schedule.events
    ]
    return {
        "format": "repro-schedule-v1",
        "scheduler": schedule.scheduler,
        "model": schedule.model,
        "network": _network_config(schedule),
        "epsilon": schedule.epsilon,
        "num_tasks": schedule.instance.num_tasks,
        "num_procs": schedule.instance.num_procs,
        "task_order": list(schedule.task_order),
        "commit_log": [
            {"kind": "event", "seq": entry.seq}
            if isinstance(entry, CommEvent)
            else {"kind": "replica", "seq": entry.seq}
            for entry in schedule.commit_log
        ],
        "replicas": replicas,
        "events": events,
        "metrics": {
            "latency": schedule.latency(),
            "makespan": schedule.makespan(),
            "messages": schedule.message_count(),
        },
    }


def schedule_to_json(schedule: Schedule, path: str | Path | None = None) -> str:
    """Serialize to JSON; optionally write to ``path``."""
    text = json.dumps(schedule_to_dict(schedule), indent=2, sort_keys=True)
    if path is not None:
        Path(path).write_text(text)
    return text


def schedule_from_dict(data: dict, instance: ProblemInstance) -> Schedule:
    """Rebuild a :class:`Schedule` from :func:`schedule_to_dict` output.

    The caller supplies the matching :class:`ProblemInstance`; shape
    mismatches raise :class:`ScheduleValidationError`.  The rebuilt
    schedule carries the full commit log, so bounds computation and crash
    replay work exactly as on the original.
    """
    if data.get("format") != "repro-schedule-v1":
        raise ScheduleValidationError(f"unknown schedule format {data.get('format')!r}")
    if data["num_tasks"] != instance.num_tasks or data["num_procs"] != instance.num_procs:
        raise ScheduleValidationError(
            "instance shape does not match the serialized schedule"
        )
    model = data["model"]
    # Rebuild the configured network, not just the named one (older
    # exports without a "network" block fall back to the bare name).
    net_cfg = data.get("network") or {"model": model}
    if "topology" in net_cfg:
        t = net_cfg["topology"]
        topology = Topology(
            int(t["num_procs"]), [(int(a), int(b), float(d)) for a, b, d in t["links"]]
        )
        factory: Callable = lambda: make_network(  # noqa: E731
            model, instance.platform, topology=topology
        )
    else:
        kwargs = {"policy": net_cfg["policy"]} if "policy" in net_cfg else {}
        factory = lambda: make_network(model, instance.platform, **kwargs)  # noqa: E731

    schedule = Schedule(
        instance=instance,
        epsilon=int(data["epsilon"]),
        scheduler=data["scheduler"],
        model=model,
        make_network=factory,
    )
    by_seq: dict[int, Replica] = {}
    for rd in sorted(data["replicas"], key=lambda d: d["seq"]):
        r = Replica(
            task=int(rd["task"]),
            index=int(rd["index"]),
            proc=int(rd["proc"]),
            start=float(rd["start"]),
            finish=float(rd["finish"]),
            kind=rd["kind"],
            support=frozenset(int(p) for p in rd["support"]),
            seq=int(rd["seq"]),
        )
        by_seq[r.seq] = r
        schedule.replicas[r.task].append(r)
        schedule.proc_replicas[r.proc].append(r)
    for task_reps in schedule.replicas:
        task_reps.sort(key=lambda r: r.index)
    for reps in schedule.proc_replicas:
        reps.sort(key=lambda r: r.start)

    events_by_seq: dict[int, CommEvent] = {}
    for ed in sorted(data["events"], key=lambda d: d["seq"]):
        src = by_seq[int(ed["src_replica_seq"])]
        e = CommEvent(
            seq=int(ed["seq"]),
            src_replica=src,
            dst_task=int(ed["dst_task"]),
            dst_proc=int(ed["dst_proc"]),
            volume=float(ed["volume"]),
            start=float(ed["start"]),
            finish=float(ed["finish"]),
        )
        if ed["dst_replica_seq"] is not None:
            dst = by_seq[int(ed["dst_replica_seq"])]
            e.dst_replica = dst
            dst.inputs.setdefault(e.src_task, ())
            dst.inputs[e.src_task] = dst.inputs[e.src_task] + (e,)
        events_by_seq[e.seq] = e
        schedule.events.append(e)

    for rd in data["replicas"]:
        r = by_seq[int(rd["seq"])]
        r.local_inputs = {
            int(p): by_seq[int(seq)] for p, seq in rd["local_inputs"].items()
        }

    for entry in data["commit_log"]:
        seq = int(entry["seq"])
        schedule.commit_log.append(
            events_by_seq[seq] if entry["kind"] == "event" else by_seq[seq]
        )
    schedule.task_order = [int(t) for t in data["task_order"]]
    return schedule


def schedule_from_json(text: str, instance: ProblemInstance) -> Schedule:
    """Inverse of :func:`schedule_to_json`."""
    return schedule_from_dict(json.loads(text), instance)
