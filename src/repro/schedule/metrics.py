"""Scalar metrics reported by the paper's evaluation (§6).

* normalized latency — latency divided by the minimal critical path (SLR
  denominator; see DESIGN.md on the normalization choice);
* fault-tolerance overhead —
  ``(X − CAFT*) / CAFT* · 100`` where ``CAFT*`` is the latency of the
  fault-free reference schedule and ``X`` the latency under scrutiny
  (0-crash, with-crash, or upper bound);
* message statistics used for Proposition 5.1 and the §6 discussion.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dag.analysis import min_critical_path
from repro.schedule.bounds import latency_upper_bound
from repro.schedule.schedule import Schedule


def normalized_latency(schedule: Schedule, latency: float | None = None) -> float:
    """``latency / min_critical_path`` — the figure's "Normalized Latency"."""
    if latency is None:
        latency = schedule.latency()
    return latency / min_critical_path(schedule.instance)


def overhead_percent(latency: float, reference_latency: float) -> float:
    """Fault-tolerance overhead in percent (paper §6 formula)."""
    if reference_latency <= 0:
        raise ValueError("reference latency must be positive")
    return 100.0 * (latency - reference_latency) / reference_latency


def message_bound_ftsa(schedule: Schedule) -> int:
    """The FTSA/FTBAR worst case ``e(ε+1)²`` (paper §4.2)."""
    e = schedule.instance.graph.num_edges
    return e * (schedule.epsilon + 1) ** 2


def message_bound_one_to_one(schedule: Schedule) -> int:
    """The CAFT favorable-case bound ``e(ε+1)`` (Proposition 5.1)."""
    e = schedule.instance.graph.num_edges
    return e * (schedule.epsilon + 1)


@dataclass(frozen=True)
class ScheduleReport:
    """A flat summary of one schedule, ready for CSV rows."""

    scheduler: str
    model: str
    epsilon: int
    latency: float
    upper_bound: float
    normalized_latency: float
    normalized_upper_bound: float
    makespan: float
    messages: int
    comm_volume: float
    replication_factor: float


def summarize(schedule: Schedule) -> ScheduleReport:
    """Compute every scalar metric of a schedule in one pass."""
    lat = schedule.latency()
    ub = latency_upper_bound(schedule)
    cp = min_critical_path(schedule.instance)
    return ScheduleReport(
        scheduler=schedule.scheduler,
        model=schedule.model,
        epsilon=schedule.epsilon,
        latency=lat,
        upper_bound=ub,
        normalized_latency=lat / cp,
        normalized_upper_bound=ub / cp,
        makespan=schedule.makespan(),
        messages=schedule.message_count(),
        comm_volume=schedule.comm_volume(),
        replication_factor=schedule.replication_factor(),
    )
