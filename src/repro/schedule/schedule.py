"""Fault-tolerant schedule containers and the trial/commit builder.

A fault-tolerant schedule maps every task to ``ε+1`` replicas on distinct
processors and commits every inter-processor message to the network
resources.  Schedulers never mutate these structures directly; they go
through :class:`ScheduleBuilder`, which

* **tries** a placement (``trial``): computes start/finish of a replica of
  task ``t`` on processor ``P`` given a set of source replicas per
  predecessor, serializing incoming messages per the paper's eq. (6), then
  rolls every reservation back;
* **commits** a placement: performs the same computation, keeps the
  reservations and materializes :class:`Replica` / :class:`CommEvent`
  records in a global commit log.

The commit log is a linearization compatible with every dependency
(message after its producer, resource users in order, replicas per
processor in order), which is exactly what the bounds computation and the
crash-replay engine need.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping, Optional, Sequence, Union

from repro.comm.base import NetworkModel
from repro.platform.instance import ProblemInstance
from repro.utils.errors import SchedulingError


class Replica:
    """One copy of a task placed on a processor.

    ``inputs`` maps each predecessor task to the committed messages that
    feed this replica; ``local_inputs`` maps predecessors satisfied by a
    co-located replica (intra-processor communication, zero cost).
    ``support`` is the set of processors whose collective survival
    guarantees this replica runs (used by CAFT's robust locking).
    """

    __slots__ = (
        "task",
        "index",
        "proc",
        "start",
        "finish",
        "kind",
        "support",
        "inputs",
        "local_inputs",
        "seq",
    )

    def __init__(
        self,
        task: int,
        index: int,
        proc: int,
        start: float,
        finish: float,
        kind: str,
        support: frozenset[int],
        seq: int,
    ) -> None:
        self.task = task
        self.index = index
        self.proc = proc
        self.start = start
        self.finish = finish
        self.kind = kind
        self.support = support
        self.inputs: dict[int, tuple["CommEvent", ...]] = {}
        self.local_inputs: dict[int, "Replica"] = {}
        self.seq = seq

    @property
    def duration(self) -> float:
        return self.finish - self.start

    def __repr__(self) -> str:
        return (
            f"Replica(t{self.task}#{self.index}@P{self.proc} "
            f"[{self.start:.2f},{self.finish:.2f}] {self.kind})"
        )


class CommEvent:
    """One committed inter-processor message."""

    __slots__ = (
        "seq",
        "src_task",
        "dst_task",
        "src_replica",
        "dst_replica",
        "src_proc",
        "dst_proc",
        "volume",
        "start",
        "finish",
    )

    def __init__(
        self,
        seq: int,
        src_replica: Replica,
        dst_task: int,
        dst_proc: int,
        volume: float,
        start: float,
        finish: float,
    ) -> None:
        self.seq = seq
        self.src_task = src_replica.task
        self.dst_task = dst_task
        self.src_replica = src_replica
        self.dst_replica: Optional[Replica] = None  # set when dst commits
        self.src_proc = src_replica.proc
        self.dst_proc = dst_proc
        self.volume = volume
        self.start = start
        self.finish = finish

    @property
    def duration(self) -> float:
        return self.finish - self.start

    def __repr__(self) -> str:
        return (
            f"Comm(t{self.src_task}->t{self.dst_task} "
            f"P{self.src_proc}->P{self.dst_proc} [{self.start:.2f},{self.finish:.2f}])"
        )


CommitEntry = Union[Replica, CommEvent]


@dataclass
class Schedule:
    """The result of a scheduler run."""

    instance: ProblemInstance
    epsilon: int
    scheduler: str
    model: str
    make_network: Callable[[], NetworkModel]
    replicas: list[list[Replica]] = field(default_factory=list)
    events: list[CommEvent] = field(default_factory=list)
    commit_log: list[CommitEntry] = field(default_factory=list)
    task_order: list[int] = field(default_factory=list)
    proc_replicas: list[list[Replica]] = field(default_factory=list)
    degraded_replicas: int = 0
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.replicas:
            self.replicas = [[] for _ in range(self.instance.num_tasks)]
        if not self.proc_replicas:
            self.proc_replicas = [[] for _ in range(self.instance.num_procs)]

    # ------------------------------------------------------------------
    def task_replicas(self, task: int) -> list[Replica]:
        return self.replicas[task]

    def all_replicas(self):
        for reps in self.replicas:
            yield from reps

    def latency(self) -> float:
        """0-crash latency: latest *first* completion over all tasks.

        "The latency of the schedule is the latest time at which at least
        one replica of each task has been computed" (paper §4.2) — a lower
        bound, achieved when no processor fails.
        """
        return max(min(r.finish for r in reps) for reps in self.replicas)

    def makespan(self) -> float:
        """Latest completion over all replicas (every copy finished)."""
        return max(r.finish for r in self.all_replicas())

    def message_count(self) -> int:
        """Number of committed inter-processor messages."""
        return len(self.events)

    def comm_volume(self) -> float:
        """Total volume shipped across processors."""
        return sum(e.volume for e in self.events)

    def comm_busy_time(self) -> float:
        """Total link occupation time (sum of message durations)."""
        return sum(e.duration for e in self.events)

    def replication_factor(self) -> float:
        """Average number of replicas per task (``ε+1`` for FT schedules)."""
        total = sum(len(reps) for reps in self.replicas)
        return total / self.instance.num_tasks

    def __repr__(self) -> str:
        return (
            f"Schedule({self.scheduler}, eps={self.epsilon}, model={self.model}, "
            f"latency={self.latency():.2f}, msgs={self.message_count()})"
        )


@dataclass(frozen=True)
class Trial:
    """Outcome of a tentative placement (rolled back, nothing reserved)."""

    task: int
    proc: int
    start: float
    finish: float
    data_ready: float


class ScheduleBuilder:
    """Incrementally builds a :class:`Schedule` against a network model."""

    def __init__(
        self,
        instance: ProblemInstance,
        network: NetworkModel,
        epsilon: int,
        scheduler: str,
        make_network: Optional[Callable[[], NetworkModel]] = None,
        strict_local_suppression: bool = False,
        fast: bool = False,
    ) -> None:
        if epsilon < 0:
            raise SchedulingError("epsilon must be >= 0")
        if epsilon + 1 > instance.num_procs:
            raise SchedulingError(
                f"need at least eps+1={epsilon + 1} processors for space "
                f"exclusion, platform has {instance.num_procs}"
            )
        self.instance = instance
        self.network = network
        self.epsilon = epsilon
        #: paper §6 reading: any co-located predecessor replica suppresses
        #: the remote copies.  The robust default additionally requires the
        #: co-located copy to be self-sufficient (support == {proc}).
        self.strict_local_suppression = strict_local_suppression
        self.proc_ready = [0.0] * instance.num_procs
        if make_network is None:
            make_network = network.clone_factory()
        self.schedule = Schedule(
            instance=instance,
            epsilon=epsilon,
            scheduler=scheduler,
            model=network.name,
            make_network=make_network,
        )
        self._seq = 0
        #: fast-path placement kernel; ``None`` when the network's
        #: ``kernel_caps()`` declares no (or an unsupported) resource
        #: algebra — trials then go through the exact slow path.
        self._kernel = None
        if fast:
            from repro.schedule.kernel import TrialKernel

            self._kernel = TrialKernel.create(self)

    @property
    def fast(self) -> bool:
        """Whether the vectorized placement kernel is active."""
        return self._kernel is not None

    # ------------------------------------------------------------------
    def _next_seq(self) -> int:
        self._seq += 1
        return self._seq

    def _sorted_remote_messages(
        self, task: int, proc: int, sources: Mapping[int, Sequence[Replica]]
    ) -> tuple[dict[int, Replica], list[tuple[int, Replica]]]:
        """Split sources into local suppliers and eq.-(6)-sorted messages.

        For each predecessor with a replica on ``proc``, intra-processor
        communication is used; the other replicas of that predecessor do
        not send to ``proc`` (paper §6) **provided** the co-located copy is
        self-sufficient — its support is ``{proc}`` itself, so "if P is
        operational, the copy of t on P will receive the data".  A
        co-located one-to-one channel with a wider support can starve even
        while ``proc`` survives, so in that case the remote copies still
        send (their messages keep the replica robust).  Remaining messages
        are sorted by sender-side earliest finish (the eq. (6)
        serialization order), with deterministic tie-breaking.
        """
        graph = self.instance.graph
        local: dict[int, Replica] = {}
        remote: list[tuple[float, int, int, int, Replica]] = []
        proc_only = frozenset({proc})
        for pred in graph.preds(task):
            try:
                srcs = sources[pred]
            except KeyError:
                raise SchedulingError(
                    f"no sources provided for predecessor t{pred} of t{task}"
                ) from None
            if not srcs:
                raise SchedulingError(
                    f"empty source list for predecessor t{pred} of t{task}"
                )
            on_proc = [r for r in srcs if r.proc == proc]
            if on_proc:
                local[pred] = min(on_proc, key=lambda r: (r.finish, r.index))
                if self.strict_local_suppression or any(
                    r.support <= proc_only for r in on_proc
                ):
                    continue
            vol = graph.volume(pred, task)
            for r in srcs:
                if r.proc == proc:
                    continue
                key = self.network.sender_bound(r.proc, proc, r.finish, vol)
                remote.append((key, pred, r.index, r.proc, r))
        remote.sort(key=lambda item: item[:4])
        return local, [(pred, r) for _k, pred, _i, _p, r in remote]

    def _place(
        self,
        task: int,
        proc: int,
        sources: Mapping[int, Sequence[Replica]],
        record: bool,
    ):
        """Shared trial/commit machinery; ``record`` keeps the reservations."""
        graph = self.instance.graph
        local, ordered = self._sorted_remote_messages(task, proc, sources)

        token = self.network.checkpoint()
        first_arrival: dict[int, float] = {}
        placed: list[tuple[int, Replica, float, float]] = []
        for pred, r in ordered:
            vol = graph.volume(pred, task)
            start, finish = self.network.place_transfer(r.proc, proc, r.finish, vol)
            placed.append((pred, r, start, finish))
            if pred not in first_arrival or finish < first_arrival[pred]:
                first_arrival[pred] = finish

        data_ready = 0.0
        for pred in graph.preds(task):
            supply = float("inf")
            if pred in local:
                supply = local[pred].finish
            if pred in first_arrival and first_arrival[pred] < supply:
                supply = first_arrival[pred]
            if supply > data_ready:
                data_ready = supply

        start = max(self.proc_ready[proc], self.network.compute_floor(proc), data_ready)
        finish = start + self.instance.cost(task, proc)

        if not record:
            self.network.rollback(token)
            return Trial(task, proc, start, finish, data_ready)
        return start, finish, local, placed

    # ------------------------------------------------------------------
    def trial(
        self, task: int, proc: int, sources: Mapping[int, Sequence[Replica]]
    ) -> Trial:
        """Evaluate placing a replica of ``task`` on ``proc`` (no side effect).

        ``sources`` maps each predecessor to the candidate supplier
        replicas: a single designated replica for one-to-one placements, or
        every replica of the predecessor for full fan-in (FTSA-style)
        placements.  The replica starts once, for every predecessor, the
        *earliest* supply (local copy or first serialized message) is in.
        """
        return self._place(task, proc, sources, record=False)

    def trial_batch(
        self,
        task: int,
        procs: Sequence[int],
        sources: Mapping[int, Sequence[Replica]],
    ) -> list[Trial]:
        """Trials for every candidate in ``procs`` with shared ``sources``.

        With the fast kernel active the whole sweep is evaluated in one
        pass over shared per-task serialization state; otherwise this is
        a plain loop over :meth:`trial`.  Results are bit-identical
        either way.
        """
        if self._kernel is not None:
            return self._kernel.batch_trials(task, procs, sources)
        return [self._place(task, p, sources, record=False) for p in procs]

    def sweep_trials(
        self,
        tasks: Sequence[int],
        sources_map: Mapping[int, Mapping[int, Sequence[Replica]]],
    ) -> dict[int, list[Trial]]:
        """Trials for every ``(task, processor)`` pair of a free-task sweep.

        Tasks must be unscheduled (every processor eligible).  With the
        kernel active the whole sweep — FTBAR re-scores all free tasks
        after every placement — is served from the epoch cache plus one
        vectorized pass over the stale rows.
        """
        if self._kernel is not None:
            return self._kernel.sweep_trials(tasks, sources_map)
        m = self.instance.num_procs
        return {
            t: [self._place(t, p, sources_map[t], record=False) for p in range(m)]
            for t in tasks
        }

    def sweep_trials_batch(
        self,
        tasks: Sequence[int],
        sources_map: Mapping[int, Mapping[int, Sequence[Replica]]],
        procs: Optional[Mapping[int, Sequence[int]]] = None,
    ) -> dict[int, list[Trial]]:
        """Trials for every requested ``(task, candidate processor)`` pair.

        The general batched sweep: ``procs`` maps each task to its
        candidate processors (``None`` = all processors for every task,
        the free-task sweep of :meth:`sweep_trials`).  With the kernel
        active the whole sweep is served from the epoch cache plus one
        vectorized pass per evaluator family over the stale rows;
        otherwise a plain loop over :meth:`trial`.  Bit-identical either
        way.
        """
        if self._kernel is not None:
            return self._kernel.sweep_trials_batch(tasks, sources_map, procs)
        m = self.instance.num_procs
        return {
            t: [
                self._place(t, p, sources_map[t], record=False)
                for p in (range(m) if procs is None else procs[t])
            ]
            for t in tasks
        }

    def kernel_stats(self) -> Optional[dict]:
        """The active kernel's observability counters (``None`` when the
        builder runs the exact reserve-and-rollback path)."""
        if self._kernel is None:
            return None
        return self._kernel.kernel_stats()

    def trial_with_heads(
        self,
        task: int,
        proc: int,
        sources: Mapping[int, Sequence[Replica]],
        heads: Mapping[int, Replica],
    ) -> Trial:
        """Trial where predecessors in ``heads`` supply via their designated
        replica only; the others use the full ``sources`` pool.

        Equivalent to :meth:`trial` with ``sources`` narrowed to
        ``[heads[p]]`` per designated predecessor, but the kernel shares
        one per-task entry state across a whole candidate sweep.
        """
        if self._kernel is not None:
            return self._kernel.trial_with_heads(task, proc, sources, heads)
        mixed = {
            p: ([heads[p]] if p in heads else srcs) for p, srcs in sources.items()
        }
        return self._place(task, proc, mixed, record=False)

    def commit(
        self,
        task: int,
        proc: int,
        sources: Mapping[int, Sequence[Replica]],
        kind: str = "greedy",
        support: Optional[frozenset[int]] = None,
    ) -> Replica:
        """Commit the placement evaluated exactly like :meth:`trial`."""
        for existing in self.schedule.replicas[task]:
            if existing.proc == proc:
                raise SchedulingError(
                    f"space exclusion violated: t{task} already has a replica on P{proc}"
                )
        start, finish, local, placed = self._place(task, proc, sources, record=True)

        index = len(self.schedule.replicas[task])
        replica = Replica(
            task=task,
            index=index,
            proc=proc,
            start=start,
            finish=finish,
            kind=kind,
            support=support if support is not None else frozenset({proc}),
            seq=0,  # patched below so events committed first keep lower seqs
        )

        inputs: dict[int, list[CommEvent]] = {}
        for pred, r, ev_start, ev_finish in placed:
            event = CommEvent(
                seq=self._next_seq(),
                src_replica=r,
                dst_task=task,
                dst_proc=proc,
                volume=self.instance.graph.volume(pred, task),
                start=ev_start,
                finish=ev_finish,
            )
            event.dst_replica = replica
            inputs.setdefault(pred, []).append(event)
            self.schedule.events.append(event)
            self.schedule.commit_log.append(event)
        replica.seq = self._next_seq()
        replica.inputs = {p: tuple(evs) for p, evs in inputs.items()}
        replica.local_inputs = dict(local)

        self.schedule.replicas[task].append(replica)
        self.schedule.proc_replicas[proc].append(replica)
        self.schedule.commit_log.append(replica)
        self.proc_ready[proc] = finish
        self.network.note_compute(proc, start, finish)
        self.network.commit()
        if self._kernel is not None:
            self._kernel.note_commit(proc, placed)
        return replica

    def mark_task_done(self, task: int) -> None:
        """Record ``task`` in the scheduling order (after all its replicas)."""
        self.schedule.task_order.append(task)

    def finish(self) -> Schedule:
        """Finalize and return the schedule."""
        sched = self.schedule
        for t, reps in enumerate(sched.replicas):
            if not reps:
                raise SchedulingError(f"task t{t} was never scheduled")
        return sched
