"""Resource-utilization analysis of committed schedules.

Answers the questions a performance engineer asks of a Gantt chart:
how busy is each processor, how busy is each port, where does the
replication traffic concentrate, and how much of the makespan is idle
time.  Used by the examples and by the contention ablation to explain
*why* the one-port model punishes replication fan-out.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.schedule.schedule import Schedule


@dataclass(frozen=True)
class UtilizationReport:
    """Busy-time fractions over the schedule makespan."""

    makespan: float
    proc_busy: tuple[float, ...]  # computation time per processor
    send_busy: tuple[float, ...]  # transfer time per send port
    recv_busy: tuple[float, ...]  # transfer time per receive port
    link_busy: dict[tuple[int, int], float]  # per directed link

    @property
    def mean_proc_utilization(self) -> float:
        if self.makespan <= 0:
            return 0.0
        return float(np.mean(self.proc_busy)) / self.makespan

    @property
    def max_port_utilization(self) -> float:
        if self.makespan <= 0:
            return 0.0
        peak = max(
            max(self.send_busy, default=0.0), max(self.recv_busy, default=0.0)
        )
        return peak / self.makespan

    @property
    def busiest_link(self) -> Optional[tuple[tuple[int, int], float]]:
        if not self.link_busy:
            return None
        link = max(self.link_busy, key=self.link_busy.__getitem__)
        return link, self.link_busy[link]


def utilization(schedule: Schedule) -> UtilizationReport:
    """Compute busy times for processors, ports and links."""
    m = schedule.instance.num_procs
    proc = [0.0] * m
    send = [0.0] * m
    recv = [0.0] * m
    link: dict[tuple[int, int], float] = {}
    for reps in schedule.replicas:
        for r in reps:
            proc[r.proc] += r.duration
    for e in schedule.events:
        send[e.src_proc] += e.duration
        recv[e.dst_proc] += e.duration
        key = (e.src_proc, e.dst_proc)
        link[key] = link.get(key, 0.0) + e.duration
    return UtilizationReport(
        makespan=schedule.makespan(),
        proc_busy=tuple(proc),
        send_busy=tuple(send),
        recv_busy=tuple(recv),
        link_busy=link,
    )


def idle_fraction(schedule: Schedule) -> float:
    """Fraction of processor-time the platform spends idle (no compute)."""
    report = utilization(schedule)
    m = schedule.instance.num_procs
    total = report.makespan * m
    if total <= 0:
        return 0.0
    return 1.0 - sum(report.proc_busy) / total


def replication_traffic_share(schedule: Schedule) -> float:
    """Share of transfer time attributable to replication (beyond one
    message per task-graph edge).

    A fault-free schedule ships each edge's data at most once; everything
    above that is the price of active replication — the quantity CAFT's
    one-to-one mapping is designed to shrink.
    """
    by_edge: dict[tuple[int, int], list[float]] = {}
    for e in schedule.events:
        by_edge.setdefault((e.src_task, e.dst_task), []).append(e.duration)
    total = sum(sum(v) for v in by_edge.values())
    if total <= 0:
        return 0.0
    baseline = sum(min(v) for v in by_edge.values())
    return 1.0 - baseline / total
