"""Schedule validation against the task-graph and one-port constraints.

``validate_schedule`` raises :class:`ScheduleValidationError` on the first
violated constraint; each check mirrors a constraint from the paper:

* replication / space exclusion — every task has the requested number of
  replicas, on pairwise distinct processors (§2, §5 proof part ii);
* processor exclusivity — a processor executes one task at a time (§2);
* precedence — every replica has, for each predecessor, a supply (local
  replica or message) arriving no later than its start (eq. (5));
* message sanity — a message never starts before its source replica ends;
* one-port constraints (1)–(3) — transfers sharing a link, a sending port
  or a receiving port never overlap (checked only for one-port models).
"""

from __future__ import annotations

from collections import defaultdict

from repro.schedule.schedule import Schedule
from repro.utils.errors import ScheduleValidationError

_EPS = 1e-9


def _check_no_overlap(intervals, what: str) -> None:
    intervals = sorted(intervals)
    for (s1, f1, a), (s2, f2, b) in zip(intervals, intervals[1:]):
        if s2 < f1 - _EPS:
            raise ScheduleValidationError(
                f"{what}: {a} [{s1:.3f},{f1:.3f}] overlaps {b} [{s2:.3f},{f2:.3f}]"
            )


def validate_schedule(
    schedule: Schedule, expected_replicas: int | None = None
) -> None:
    """Raise :class:`ScheduleValidationError` if any constraint is violated.

    ``expected_replicas`` defaults to ``ε+1`` (active replication); pass 1
    to validate fault-free schedules.
    """
    inst = schedule.instance
    graph = inst.graph
    if expected_replicas is None:
        expected_replicas = schedule.epsilon + 1

    # --- replication and space exclusion --------------------------------
    for t in range(graph.num_tasks):
        reps = schedule.replicas[t]
        if len(reps) != expected_replicas:
            raise ScheduleValidationError(
                f"t{t} has {len(reps)} replicas, expected {expected_replicas}"
            )
        procs = [r.proc for r in reps]
        if len(set(procs)) != len(procs):
            raise ScheduleValidationError(
                f"space exclusion violated for t{t}: processors {procs}"
            )
        for r in reps:
            expected_cost = inst.cost(t, r.proc)
            if abs((r.finish - r.start) - expected_cost) > _EPS:
                raise ScheduleValidationError(
                    f"{r} duration {r.finish - r.start:.6f} != E(t,P) {expected_cost:.6f}"
                )

    # --- processor exclusivity ------------------------------------------
    for p, reps in enumerate(schedule.proc_replicas):
        _check_no_overlap(
            [(r.start, r.finish, repr(r)) for r in reps], f"processor P{p}"
        )

    # --- precedence supplies ---------------------------------------------
    for reps in schedule.replicas:
        for r in reps:
            for pred in graph.preds(r.task):
                supply = None
                if pred in r.local_inputs:
                    local = r.local_inputs[pred]
                    if local.proc != r.proc:
                        raise ScheduleValidationError(
                            f"{r}: local input for t{pred} is on P{local.proc}"
                        )
                    supply = local.finish
                if pred in r.inputs:
                    first = min(e.finish for e in r.inputs[pred])
                    supply = first if supply is None else min(supply, first)
                if supply is None:
                    raise ScheduleValidationError(
                        f"{r} has no supply for predecessor t{pred}"
                    )
                if supply > r.start + _EPS:
                    raise ScheduleValidationError(
                        f"{r} starts at {r.start:.3f} before its t{pred} supply "
                        f"arrives at {supply:.3f}"
                    )

    # --- message sanity ----------------------------------------------------
    for e in schedule.events:
        if e.start < e.src_replica.finish - _EPS:
            raise ScheduleValidationError(
                f"{e} starts before its source replica ends "
                f"({e.src_replica.finish:.3f})"
            )
        if e.src_proc == e.dst_proc:
            raise ScheduleValidationError(f"{e} is an intra-processor message")
        expected = e.volume * inst.platform.delay(e.src_proc, e.dst_proc)
        if abs(e.duration - expected) > _EPS:
            raise ScheduleValidationError(
                f"{e} duration {e.duration:.6f} != V*d = {expected:.6f}"
            )

    # --- one-port constraints (1)-(3) --------------------------------------
    if "oneport" in schedule.model:
        by_send = defaultdict(list)
        by_recv = defaultdict(list)
        by_link = defaultdict(list)
        for e in schedule.events:
            if e.duration == 0.0:
                continue  # zero-volume messages occupy nothing
            item = (e.start, e.finish, repr(e))
            by_send[e.src_proc].append(item)
            by_recv[e.dst_proc].append(item)
            by_link[(e.src_proc, e.dst_proc)].append(item)
        for p, items in by_send.items():
            _check_no_overlap(items, f"send port of P{p} (constraint 2)")
        for p, items in by_recv.items():
            _check_no_overlap(items, f"receive port of P{p} (constraint 3)")
        for (a, b), items in by_link.items():
            _check_no_overlap(items, f"link P{a}->P{b} (constraint 1)")


def is_valid(schedule: Schedule, expected_replicas: int | None = None) -> bool:
    """Boolean wrapper around :func:`validate_schedule`."""
    try:
        validate_schedule(schedule, expected_replicas)
    except ScheduleValidationError:
        return False
    return True
