"""Schedule substrate: containers, builder, bounds, validation, metrics."""

from repro.schedule.schedule import (
    Replica,
    CommEvent,
    Schedule,
    ScheduleBuilder,
    Trial,
)
from repro.schedule.bounds import latency_lower_bound, latency_upper_bound
from repro.schedule.validation import validate_schedule, is_valid
from repro.schedule.metrics import (
    normalized_latency,
    overhead_percent,
    message_bound_ftsa,
    message_bound_one_to_one,
    ScheduleReport,
    summarize,
)
from repro.schedule.gantt import render_gantt
from repro.schedule.export import (
    schedule_to_dict,
    schedule_to_json,
    schedule_from_dict,
    schedule_from_json,
)
from repro.schedule.trace import (
    schedule_to_trace,
    replay_to_trace,
    write_trace,
)
from repro.schedule.utilization import (
    UtilizationReport,
    utilization,
    idle_fraction,
    replication_traffic_share,
)

__all__ = [
    "Replica",
    "CommEvent",
    "Schedule",
    "ScheduleBuilder",
    "Trial",
    "latency_lower_bound",
    "latency_upper_bound",
    "validate_schedule",
    "is_valid",
    "normalized_latency",
    "overhead_percent",
    "message_bound_ftsa",
    "message_bound_one_to_one",
    "ScheduleReport",
    "summarize",
    "render_gantt",
    "schedule_to_dict",
    "schedule_to_json",
    "schedule_from_dict",
    "schedule_from_json",
    "UtilizationReport",
    "utilization",
    "idle_fraction",
    "replication_traffic_share",
    "schedule_to_trace",
    "replay_to_trace",
    "write_trace",
]
