"""ASCII Gantt rendering of fault-tolerant schedules.

Terminal-friendly visualization used by the examples: one row per
processor showing task replicas, optionally one row per busy link showing
messages.  Purely cosmetic — nothing else depends on this module.
"""

from __future__ import annotations

from repro.schedule.schedule import Schedule


def render_gantt(
    schedule: Schedule,
    width: int = 100,
    show_comms: bool = False,
) -> str:
    """Render the schedule as an ASCII Gantt chart.

    Each processor row paints replica occupancy; cells show the task id
    (modulo alphabet size for wide graphs).  ``show_comms`` appends rows
    for every link that carries at least one message.
    """
    horizon = schedule.makespan()
    if show_comms and schedule.events:
        horizon = max(horizon, max(e.finish for e in schedule.events))
    if horizon <= 0:
        return "(empty schedule)"
    scale = width / horizon

    def paint(intervals: list[tuple[float, float, str]]) -> str:
        row = [" "] * width
        for start, finish, label in intervals:
            a = min(width - 1, int(start * scale))
            b = max(a + 1, min(width, int(round(finish * scale))))
            for i in range(a, b):
                row[i] = "="
            text = label[: b - a]
            for i, ch in enumerate(text):
                row[a + i] = ch
        return "".join(row)

    names = schedule.instance.graph.names
    lines = [
        f"{schedule.scheduler} | model={schedule.model} eps={schedule.epsilon} "
        f"latency={schedule.latency():.1f} msgs={schedule.message_count()}",
        "-" * (width + 6),
    ]
    for p, reps in enumerate(schedule.proc_replicas):
        intervals = [(r.start, r.finish, names[r.task]) for r in reps]
        lines.append(f"P{p:<3} |{paint(intervals)}")

    if show_comms:
        by_link: dict[tuple[int, int], list[tuple[float, float, str]]] = {}
        for e in schedule.events:
            if e.duration == 0:
                continue
            by_link.setdefault((e.src_proc, e.dst_proc), []).append(
                (e.start, e.finish, names[e.src_task])
            )
        for (a, b), intervals in sorted(by_link.items()):
            lines.append(f"{a}->{b:<2} |{paint(intervals)}")

    lines.append("-" * (width + 6))
    tick = horizon / 4
    lines.append(
        "time  "
        + "".join(f"{t * tick:<{width // 4}.1f}" for t in range(4))
        + f"{horizon:.1f}"
    )
    return "\n".join(lines)
