"""A max-priority queue with deterministic, seedable tie breaking.

List schedulers repeatedly extract the *free* task with the highest priority
(`tl + bl` in the paper).  Ties are "broken randomly" (paper §5); to keep
schedules reproducible we draw the tie-break token from a seeded generator at
insertion time, which makes the queue order a pure function of
``(priorities, insertion order, seed)``.

The queue supports lazy priority increase: re-pushing an item with a new
priority supersedes the old entry (stale entries are skipped on pop).
"""

from __future__ import annotations

import heapq
from typing import Generic, Hashable, Iterator, Optional, TypeVar

import numpy as np

T = TypeVar("T", bound=Hashable)


class StablePriorityQueue(Generic[T]):
    """Max-queue over hashable items with seeded random tie-breaking."""

    def __init__(self, rng: Optional[np.random.Generator] = None) -> None:
        self._heap: list[tuple[float, float, int, T]] = []
        self._current: dict[T, float] = {}
        self._rng = rng if rng is not None else np.random.default_rng(0)
        self._counter = 0

    def __len__(self) -> int:
        return len(self._current)

    def __bool__(self) -> bool:
        return bool(self._current)

    def __contains__(self, item: T) -> bool:
        return item in self._current

    def __iter__(self) -> Iterator[T]:
        """Iterate over live items (unspecified order)."""
        return iter(self._current)

    def push(self, item: T, priority: float) -> None:
        """Insert ``item`` or update its priority (last push wins)."""
        self._current[item] = float(priority)
        tie = float(self._rng.random())
        # heapq is a min-heap: negate priority for max-queue behaviour.
        heapq.heappush(self._heap, (-float(priority), tie, self._counter, item))
        self._counter += 1

    def remove(self, item: T) -> None:
        """Remove a live item without disturbing the rest of the queue.

        The removal is lazy: the heap entry stays behind as a stale record
        that :meth:`pop`/:meth:`peek` skip, exactly like a superseded
        priority.  Unlike the old push-``inf``-then-pop workaround this
        draws no tie-break token and never reorders live entries.
        """
        try:
            del self._current[item]
        except KeyError:
            raise KeyError(f"{item!r} is not in the queue") from None

    def pop(self) -> T:
        """Remove and return the item with the highest priority."""
        while self._heap:
            neg_priority, _tie, _count, item = heapq.heappop(self._heap)
            if item in self._current and self._current[item] == -neg_priority:
                del self._current[item]
                return item
        raise IndexError("pop from an empty StablePriorityQueue")

    def peek(self) -> T:
        """Return (without removing) the item with the highest priority."""
        while self._heap:
            neg_priority, _tie, _count, item = self._heap[0]
            if item in self._current and self._current[item] == -neg_priority:
                return item
            heapq.heappop(self._heap)
        raise IndexError("peek at an empty StablePriorityQueue")

    def priority_of(self, item: T) -> float:
        """Current priority of a live item."""
        return self._current[item]
