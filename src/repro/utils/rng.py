"""Deterministic random-number handling.

All stochastic pieces of the library (graph generation, platform generation,
tie breaking, failure scenarios) accept either an integer seed or a
:class:`numpy.random.Generator`.  :func:`as_rng` normalizes both to a
``Generator`` so results are reproducible end to end.

:func:`spawn_seed` derives independent child seeds from a base seed and a
tuple of labels (e.g. ``(granularity_index, repetition)``) so experiment
campaigns can regenerate any single data point in isolation.
"""

from __future__ import annotations

import hashlib
from typing import Union

import numpy as np

RngLike = Union[int, None, np.random.Generator]


def as_rng(seed: RngLike) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    ``None`` yields a fresh OS-seeded generator; an ``int`` yields a
    deterministic PCG64 stream; a ``Generator`` is passed through unchanged.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_seed(base_seed: int, *labels: object) -> int:
    """Derive a stable 63-bit child seed from ``base_seed`` and ``labels``.

    The derivation is a SHA-256 hash of the repr of the inputs, so it is
    stable across processes and Python versions (unlike ``hash``).
    """
    payload = repr((int(base_seed),) + tuple(labels)).encode("utf-8")
    digest = hashlib.sha256(payload).digest()
    return int.from_bytes(digest[:8], "little") & (2**63 - 1)


class RngStream:
    """A labelled family of generators derived from one base seed.

    Example
    -------
    >>> stream = RngStream(42)
    >>> g1 = stream.rng("graphs", 0)
    >>> g2 = stream.rng("graphs", 1)   # independent of g1
    >>> stream.seed("graphs", 0) == RngStream(42).seed("graphs", 0)
    True
    """

    def __init__(self, base_seed: int) -> None:
        self.base_seed = int(base_seed)

    def seed(self, *labels: object) -> int:
        """Deterministic child seed for ``labels``."""
        return spawn_seed(self.base_seed, *labels)

    def rng(self, *labels: object) -> np.random.Generator:
        """Deterministic child generator for ``labels``."""
        return np.random.default_rng(self.seed(*labels))
