"""Shared low-level utilities: RNG handling, errors, small containers."""

from repro.utils.errors import (
    ReproError,
    InvalidGraphError,
    InvalidPlatformError,
    SchedulingError,
    ScheduleValidationError,
    ExecutionFailedError,
)
from repro.utils.rng import RngStream, as_rng, spawn_seed
from repro.utils.priority_queue import StablePriorityQueue

__all__ = [
    "ReproError",
    "InvalidGraphError",
    "InvalidPlatformError",
    "SchedulingError",
    "ScheduleValidationError",
    "ExecutionFailedError",
    "RngStream",
    "as_rng",
    "spawn_seed",
    "StablePriorityQueue",
]
