"""Exception hierarchy for the repro library.

Every error raised intentionally by the library derives from
:class:`ReproError`, so callers can catch library failures with a single
``except`` clause while letting genuine bugs (``TypeError`` etc.) escape.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class InvalidGraphError(ReproError):
    """A task graph violates a structural requirement (cycle, bad weight...)."""


class InvalidPlatformError(ReproError):
    """A platform description is inconsistent (bad matrix shape, delays...)."""


class SchedulingError(ReproError):
    """A scheduler could not produce a valid schedule for its inputs."""


class ScheduleValidationError(ReproError):
    """A produced schedule violates a model constraint.

    Raised by :mod:`repro.schedule.validation`; the message pinpoints the
    first violated constraint (precedence, port overlap, space exclusion...).
    """


class ExecutionFailedError(ReproError):
    """Crash replay ended with at least one task having no completed replica.

    This means the schedule did **not** tolerate the injected failure
    scenario; for a correct fault-tolerant scheduler this can only happen
    when more than ``epsilon`` processors fail.
    """

    def __init__(self, message: str, dead_tasks: tuple[int, ...] = ()) -> None:
        super().__init__(message)
        #: tasks for which no replica completed, in index order
        self.dead_tasks = tuple(dead_tasks)
