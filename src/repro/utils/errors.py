"""Exception hierarchy for the repro library.

Every error raised intentionally by the library derives from
:class:`ReproError`, so callers can catch library failures with a single
``except`` clause while letting genuine bugs (``TypeError`` etc.) escape.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class InvalidGraphError(ReproError):
    """A task graph violates a structural requirement (cycle, bad weight...)."""


class InvalidPlatformError(ReproError):
    """A platform description is inconsistent (bad matrix shape, delays...)."""


class SchedulingError(ReproError):
    """A scheduler could not produce a valid schedule for its inputs."""


class ScheduleValidationError(ReproError):
    """A produced schedule violates a model constraint.

    Raised by :mod:`repro.schedule.validation`; the message pinpoints the
    first violated constraint (precedence, port overlap, space exclusion...).
    """


class CampaignConfigError(ReproError, ValueError):
    """An invalid campaign configuration, named by its offending key.

    The single error type for bad campaign descriptions — an unknown
    scheduler/network/topology/executor/store name, a scenario flag
    combination that cannot be built, a malformed lease spec, resuming
    without a persistent store...  Raised identically whether the
    configuration arrived through the :class:`repro.experiments.api.
    CampaignSpec` API, a spec file, or the CLI (which prints it and
    exits 2).  ``key`` names the spec field (CLI flag) at fault, e.g.
    ``"executor.bind"`` or ``"lease"``; the message always spells it
    out too.  Subclasses ``ValueError`` so historical ``except
    ValueError`` call sites keep working.
    """

    def __init__(self, message: str, key: "str | None" = None) -> None:
        super().__init__(message)
        #: dotted spec key (or CLI flag) the error is about, if known
        self.key = key


class ExecutionFailedError(ReproError):
    """Crash replay ended with at least one task having no completed replica.

    This means the schedule did **not** tolerate the injected failure
    scenario; for a correct fault-tolerant scheduler this can only happen
    when more than ``epsilon`` processors fail.
    """

    def __init__(self, message: str, dead_tasks: tuple[int, ...] = ()) -> None:
        super().__init__(message)
        #: tasks for which no replica completed, in index order
        self.dead_tasks = tuple(dead_tasks)
