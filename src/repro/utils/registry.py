"""The one registration-validation rule every registry shares.

Campaign names resolve through several registries — the generic
:class:`repro.experiments.registry.Registry` plus the layer-owned
network-model and topology tables in :mod:`repro.comm` and
:mod:`repro.platform.topology`.  They all accept names under the same
contract, checked here, so the extension points cannot drift on what a
valid name is or how duplicates fail.
"""

from __future__ import annotations


def check_registration(
    kind: str, name: str, exists: bool, overwrite: bool = False
) -> None:
    """Validate one ``register_*`` call; raises ``ValueError`` when bad.

    Names must be non-empty strings without ``":"`` (the executor
    spec-string separator — a name containing it could never be looked
    up again); registering an existing name needs ``overwrite=True``.
    """
    if not name or not isinstance(name, str):
        raise ValueError(
            f"{kind} name must be a non-empty string, got {name!r}"
        )
    if ":" in name:
        raise ValueError(f"{kind} name {name!r} must not contain ':'")
    if exists and not overwrite:
        raise ValueError(
            f"{kind} {name!r} is already registered "
            "(pass overwrite=True to replace it)"
        )
