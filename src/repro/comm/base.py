"""Network-model interface shared by all communication models.

A *network model* is the mutable resource state a scheduler builds a
schedule against: which communication ports/links are busy until when.
Schedulers repeatedly *try* placements ("simulate the mapping of ti on
every processor", paper §5) before committing the best one, so the
interface is built around cheap **checkpoint / rollback** via an undo log
rather than deep copies.

Concrete models:

* :class:`repro.comm.oneport.OnePortNetwork` — the paper's bi-directional
  one-port model (eqs. (1)–(6));
* :class:`repro.comm.oneport.UniPortNetwork` — the uni-directional variant
  mentioned in §2 (one shared port per processor);
* :class:`repro.comm.oneport.NoOverlapOnePortNetwork` — the "no
  communication/computation overlap" variant of §2;
* :class:`repro.comm.macrodataflow.MacroDataflowNetwork` — the classical
  contention-free model;
* :class:`repro.comm.routed.RoutedOnePortNetwork` — sparse topologies with
  static routes (§7 extension).
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.platform.platform import Platform


class NetworkModel(ABC):
    """Mutable communication-resource state over a :class:`Platform`."""

    #: short machine name used by factories/reports (subclasses override)
    name: str = "abstract"

    def __init__(self, platform: Platform) -> None:
        self.platform = platform

    # ------------------------------------------------------------------
    # Static quantities
    # ------------------------------------------------------------------
    def transfer_time(self, src: int, dst: int, volume: float) -> float:
        """Duration ``W = volume * d(src, dst)`` of a transfer (0 if local)."""
        if src == dst:
            return 0.0
        return volume * self.platform.delay(src, dst)

    # ------------------------------------------------------------------
    # Cloning
    # ------------------------------------------------------------------
    def clone_args(self) -> tuple:
        """Constructor arguments that rebuild an identical *empty* model.

        Subclasses whose ``__init__`` takes more than the platform (a
        policy, a topology, ...) override this so ``clone_factory`` —
        and anything that replays schedules against a fresh network —
        reconstructs them with their configuration intact.
        """
        return (self.platform,)

    def clone_factory(self):
        """A callable producing identical empty copies of this model."""
        cls = type(self)
        args = self.clone_args()
        return lambda: cls(*args)

    # ------------------------------------------------------------------
    # Placement
    # ------------------------------------------------------------------
    @abstractmethod
    def place_transfer(
        self, src: int, dst: int, ready: float, volume: float
    ) -> tuple[float, float]:
        """Reserve resources for one transfer and return ``(start, finish)``.

        ``ready`` is the earliest moment the data exists on ``src`` (the
        finish time of the producing replica).  The returned ``start``
        satisfies every model constraint (ports, links) and ``finish =
        start + W``.  Local transfers (``src == dst``) cost nothing and
        reserve nothing.  The reservation is recorded in the undo log.
        """

    @abstractmethod
    def sender_bound(self, src: int, dst: int, ready: float, volume: float) -> float:
        """Earliest finish of a transfer ignoring receiver-side constraints.

        This is the sort key of the paper's eq. (6): messages are serialized
        at the reception site "by non-decreasing order of their
        communication finish time on the links", i.e. of their sender-side
        constrained finish.  Pure query — no state change.
        """

    # ------------------------------------------------------------------
    # Compute coupling (only the no-overlap variant uses these)
    # ------------------------------------------------------------------
    def compute_floor(self, proc: int) -> float:
        """Earliest time a computation may start on ``proc`` as far as the
        communication engine is concerned (0 unless comm blocks compute)."""
        return 0.0

    def note_compute(self, proc: int, start: float, finish: float) -> None:
        """Inform the model that ``proc`` computes during ``[start, finish]``."""

    # ------------------------------------------------------------------
    # Undo log
    # ------------------------------------------------------------------
    @abstractmethod
    def checkpoint(self) -> int:
        """Return a token capturing the current state (undo-log length)."""

    @abstractmethod
    def rollback(self, token: int) -> None:
        """Undo every reservation made after ``token`` was taken."""

    @abstractmethod
    def commit(self) -> None:
        """Drop the undo log (reservations become permanent)."""

    @abstractmethod
    def reset(self) -> None:
        """Forget all reservations (fresh network)."""
