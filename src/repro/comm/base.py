"""Network-model interface shared by all communication models.

A *network model* is the mutable resource state a scheduler builds a
schedule against: which communication ports/links are busy until when.
Schedulers repeatedly *try* placements ("simulate the mapping of ti on
every processor", paper §5) before committing the best one, so the
interface is built around cheap **checkpoint / rollback** via an undo log
rather than deep copies.

Concrete models:

* :class:`repro.comm.oneport.OnePortNetwork` — the paper's bi-directional
  one-port model (eqs. (1)–(6));
* :class:`repro.comm.oneport.UniPortNetwork` — the uni-directional variant
  mentioned in §2 (one shared port per processor);
* :class:`repro.comm.oneport.NoOverlapOnePortNetwork` — the "no
  communication/computation overlap" variant of §2;
* :class:`repro.comm.macrodataflow.MacroDataflowNetwork` — the classical
  contention-free model;
* :class:`repro.comm.routed.RoutedOnePortNetwork` — sparse topologies with
  static routes (§7 extension).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.platform.platform import Platform


@dataclass(frozen=True)
class KernelCaps:
    """A network model's declaration of its contended-resource algebra.

    The fast placement kernel (:mod:`repro.schedule.kernel`) dispatches
    purely on these flags — it never inspects concrete model types.  A
    model that returns ``None`` from :meth:`NetworkModel.kernel_caps`
    opts out and schedulers fall back to the exact reserve-and-rollback
    path.

    Flags describe *which* resources serialize a transfer:

    * ``contention`` — send/receive ports and links exist at all
      (``False`` = the contention-free macro-dataflow algebra: a
      transfer starts the instant its data is ready).
    * ``shared_port`` — one engine per processor: the send and receive
      frontiers alias each other (the uni-directional §2 variant).
    * ``compute_blocks`` — computation occupies the ports, so the
      communication frontier feeds the compute floor (§2 no-overlap
      variant).
    * ``gap_timelines`` — reservations may be inserted into idle gaps;
      trials must consult the per-resource busy-interval timelines, not
      just the scalar frontiers (``OnePortNetwork(policy="insertion")``).
    * ``routed`` — transfers hold *every* physical link along a static
      route (§7 sparse topologies); serialization takes the max over the
      per-hop frontiers instead of a single link scalar.
    """

    contention: bool = True
    shared_port: bool = False
    compute_blocks: bool = False
    gap_timelines: bool = False
    routed: bool = False


def earliest_gap(intervals, ready: float, duration: float) -> float:
    """First feasible start for ``duration`` in a sorted busy-interval list.

    The single implementation of the gap scan: gap-timeline models run
    it over their own reservations and the fast kernel runs it over
    trial-local overlay copies — bit-identity between the two paths
    depends on them sharing this function.
    """
    t = ready
    for s, f in intervals:
        if t + duration <= s:
            return t
        t = max(t, f)
    return t


def common_gap_start(interval_lists, ready: float, duration: float) -> float:
    """Earliest start at which *every* resource has a common free gap.

    Scans upward from ``ready`` until a fixed point: each resource's
    ``earliest_gap`` from the current candidate leaves the candidate
    unchanged.  Terminates because every step strictly increases the
    candidate and intervals are finite.
    """
    start = ready
    while True:
        s2 = start
        for iv in interval_lists:
            e = earliest_gap(iv, start, duration)
            if e > s2:
                s2 = e
        if s2 == start:
            return start
        start = s2


class FrontierView:
    """Live references into a model's *committed* resource frontiers.

    The uniform read surface of the resource-frontier protocol: the fast
    kernel simulates eq. (6) serialization against these structures
    without touching the model's undo log.  All references are live —
    they alias the model's own state, so committed reservations are
    visible immediately and the view never needs rebuilding (models
    invalidate their cached view on :meth:`NetworkModel.reset`, which
    rebinds the underlying lists).

    Fields (unused ones are ``None`` / empty for a given model):

    * ``delay`` — the model platform's unit-delay matrix as nested
      lists (for routed models these are the end-to-end route delays);
      ``delay_np`` is the same matrix as the read-only ndarray.
    * ``send_free`` / ``recv_free`` — per-processor scalar port
      frontiers (aliased for shared-port models).
    * ``link_free`` — directed-link scalar frontiers: a flat
      ``m * m`` list indexed ``src * m + dst`` for clique models, or a
      per-directed-physical-link list indexed by hop id for routed
      models (``num_links`` entries, hop ids from ``route_hops``).
    * ``route_hops`` — routed models only: ``route_hops[src][dst]`` is
      the tuple of directed hop ids the transfer reserves.
    * ``send_timelines`` / ``recv_timelines`` / ``link_timelines`` —
      gap-timeline models only: per-resource sorted busy-interval lists
      (each entry exposes ``.intervals`` plus versioned
      ``.gap_vectors()`` split start/end mirrors), indexed like the
      scalars.

    Vectorized-evaluator accessors (both lazily built and cached):

    * :meth:`hop_csr` — routed models: ``route_hops`` flattened into one
      CSR pair ``(indptr, hop_ids)`` over ``src * m + dst`` rows, so a
      per-pair hop maximum is one ``np.maximum.reduceat`` instead of
      ``m²`` Python loops.
    * :meth:`gap_arrays` — gap-timeline models: the ``(starts, ends)``
      split-vector mirror of one resource's busy intervals.
    """

    __slots__ = (
        "delay",
        "delay_np",
        "send_free",
        "recv_free",
        "link_free",
        "route_hops",
        "num_links",
        "send_timelines",
        "recv_timelines",
        "link_timelines",
        "_hop_csr",
    )

    def __init__(
        self,
        delay_np,
        send_free=None,
        recv_free=None,
        link_free=None,
        route_hops=None,
        num_links=0,
        send_timelines=None,
        recv_timelines=None,
        link_timelines=None,
        hop_csr=None,
    ) -> None:
        self.delay_np = delay_np
        self.delay = delay_np.tolist()
        self.send_free = send_free
        self.recv_free = recv_free
        self.link_free = link_free
        self.route_hops = route_hops
        self.num_links = num_links
        self.send_timelines = send_timelines
        self.recv_timelines = recv_timelines
        self.link_timelines = link_timelines
        self._hop_csr = hop_csr

    def hop_csr(self) -> tuple[np.ndarray, np.ndarray]:
        """``route_hops`` as one flat CSR: ``(indptr, hop_ids)``.

        Row ``src * m + dst`` spans ``hop_ids[indptr[row]:indptr[row+1]]``
        — the directed hop ids of the static ``src -> dst`` route (empty
        on the diagonal).  Models may pass a precomputed pair (shared by
        every clone over the same topology); otherwise it is flattened
        from ``route_hops`` on first use.
        """
        if self._hop_csr is None:
            if self.route_hops is None:
                raise ValueError("hop_csr() needs a routed frontier view")
            indptr = [0]
            ids: list[int] = []
            for row in self.route_hops:
                for hops in row:
                    ids.extend(hops)
                    indptr.append(len(ids))
            self._hop_csr = (
                np.asarray(indptr, dtype=np.int64),
                np.asarray(ids, dtype=np.int64),
            )
        return self._hop_csr

    def gap_arrays(self, which: str, idx: int) -> tuple[list[float], list[float]]:
        """The split ``(starts, ends)`` mirror of one busy timeline.

        ``which`` is ``"send"``/``"recv"``/``"link"``; ``idx`` indexes
        like the scalar frontiers.  Plain lists, not ndarrays: at the
        tens-of-intervals sizes timelines reach, C-backed ``bisect``
        beats ndarray scalar indexing by ~5-10x in the overlay replay.
        Vectors are cached per timeline version, so repeated trials
        between commits share one build.
        """
        tl = getattr(self, f"{which}_timelines")[idx]
        return tl.gap_vectors()


class NetworkModel(ABC):
    """Mutable communication-resource state over a :class:`Platform`."""

    #: short machine name used by factories/reports (subclasses override)
    name: str = "abstract"

    def __init__(self, platform: Platform) -> None:
        self.platform = platform

    # ------------------------------------------------------------------
    # Static quantities
    # ------------------------------------------------------------------
    def transfer_time(self, src: int, dst: int, volume: float) -> float:
        """Duration ``W = volume * d(src, dst)`` of a transfer (0 if local)."""
        if src == dst:
            return 0.0
        return volume * self.platform.delay(src, dst)

    # ------------------------------------------------------------------
    # Cloning
    # ------------------------------------------------------------------
    def clone_args(self) -> tuple:
        """Constructor arguments that rebuild an identical *empty* model.

        Subclasses whose ``__init__`` takes more than the platform (a
        policy, a topology, ...) override this so ``clone_factory`` —
        and anything that replays schedules against a fresh network —
        reconstructs them with their configuration intact.
        """
        return (self.platform,)

    def clone_factory(self):
        """A callable producing identical empty copies of this model."""
        cls = type(self)
        args = self.clone_args()
        return lambda: cls(*args)

    # ------------------------------------------------------------------
    # Resource-frontier protocol (fast-kernel support)
    # ------------------------------------------------------------------
    def kernel_caps(self) -> Optional[KernelCaps]:
        """Declare the contended-resource algebra for the fast kernel.

        ``None`` (the default) means the model does not participate in
        the protocol: schedulers with ``fast=True`` fall back to the
        exact reserve-and-rollback path (with a one-time warning).
        Subclasses whose resource algebra the kernel can mirror return a
        :class:`KernelCaps` describing it.

        The built-in implementations guard on their **exact** type: a
        user subclass inherits ``None``, not the parent's capabilities,
        because overriding any placement method would silently
        desynchronize the kernel from the model.  A subclass that keeps
        the parent's transfer semantics opts back in by overriding this
        method itself.
        """
        return None

    def frontier_view(self) -> Optional[FrontierView]:
        """The live :class:`FrontierView` over this model's state.

        Must be implemented (returning a non-``None`` view) by every
        model whose :meth:`kernel_caps` is not ``None``.  Views alias
        the committed state, so implementations cache them and
        invalidate the cache whenever :meth:`reset` rebinds state.
        """
        return None

    # ------------------------------------------------------------------
    # Diagnostics
    # ------------------------------------------------------------------
    def undo_depth(self) -> int:
        """Number of pending undo-log entries (0 for log-less models).

        Purely diagnostic: schedulers assert it returns to the
        checkpoint token after a rollback, and monitoring can watch it
        to catch reservation leaks.
        """
        return 0

    # ------------------------------------------------------------------
    # Placement
    # ------------------------------------------------------------------
    @abstractmethod
    def place_transfer(
        self, src: int, dst: int, ready: float, volume: float
    ) -> tuple[float, float]:
        """Reserve resources for one transfer and return ``(start, finish)``.

        ``ready`` is the earliest moment the data exists on ``src`` (the
        finish time of the producing replica).  The returned ``start``
        satisfies every model constraint (ports, links) and ``finish =
        start + W``.  Local transfers (``src == dst``) cost nothing and
        reserve nothing.  The reservation is recorded in the undo log.
        """

    @abstractmethod
    def sender_bound(self, src: int, dst: int, ready: float, volume: float) -> float:
        """Earliest finish of a transfer ignoring receiver-side constraints.

        This is the sort key of the paper's eq. (6): messages are serialized
        at the reception site "by non-decreasing order of their
        communication finish time on the links", i.e. of their sender-side
        constrained finish.  Pure query — no state change.
        """

    # ------------------------------------------------------------------
    # Compute coupling (only the no-overlap variant uses these)
    # ------------------------------------------------------------------
    def compute_floor(self, proc: int) -> float:
        """Earliest time a computation may start on ``proc`` as far as the
        communication engine is concerned (0 unless comm blocks compute)."""
        return 0.0

    def note_compute(self, proc: int, start: float, finish: float) -> None:
        """Inform the model that ``proc`` computes during ``[start, finish]``."""

    # ------------------------------------------------------------------
    # Undo log
    # ------------------------------------------------------------------
    @abstractmethod
    def checkpoint(self) -> int:
        """Return a token capturing the current state (undo-log length)."""

    @abstractmethod
    def rollback(self, token: int) -> None:
        """Undo every reservation made after ``token`` was taken."""

    @abstractmethod
    def commit(self) -> None:
        """Drop the undo log (reservations become permanent)."""

    @abstractmethod
    def reset(self) -> None:
        """Forget all reservations (fresh network)."""
