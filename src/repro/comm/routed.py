"""One-port communication over sparse interconnects (paper §7 extension).

"On such platforms, each processor is provided with a routing table ...
to achieve contention awareness, at most one message can circulate on a
given link at a given time-step."  A transfer from ``src`` to ``dst``
follows the precomputed shortest-delay route and holds **every** physical
link of the route (in its travel direction) for the whole transfer, plus
the endpoints' send/receive ports — a circuit-switched reading of the
paper's sentence that keeps the algebra identical to the clique case.

Directed physical links are numbered once at construction (*hop ids*);
all frontiers live in flat lists indexed by processor or hop id, and the
per-pair hop tuples are precomputed — both this model's hot loop and the
fast kernel's route-aware evaluator read the same structures through the
resource-frontier protocol (:meth:`frontier_view`).
"""

from __future__ import annotations

from repro.comm.base import FrontierView, KernelCaps, NetworkModel
from repro.platform.topology import Topology


class RoutedOnePortNetwork(NetworkModel):
    """Send/receive ports per processor plus per-directed-link occupancy."""

    name = "routed-oneport"

    def __init__(self, topology: Topology) -> None:
        super().__init__(topology.to_platform())
        self.topology = topology
        m = topology.num_procs
        self._send_free = [0.0] * m
        self._recv_free = [0.0] * m
        # Directed physical links (full duplex => one id per direction)
        # and per-pair hop routes — cached on the immutable topology, so
        # clones (one per crash-replay scenario) share the tables and
        # only the frontier lists are fresh.
        self._hop_id, self._route_hops = topology.directed_hop_tables()
        self._link_free = [0.0] * len(self._hop_id)
        self._log: list[tuple] = []
        self._view: FrontierView | None = None

    def clone_args(self) -> tuple:
        return (self.topology,)

    # ------------------------------------------------------------------
    # Resource-frontier protocol
    # ------------------------------------------------------------------
    def kernel_caps(self) -> KernelCaps | None:
        if type(self) is not RoutedOnePortNetwork:
            return None  # subclasses must re-declare (see NetworkModel)
        return KernelCaps(routed=True)

    def frontier_view(self) -> FrontierView:
        if self._view is None:
            self._view = FrontierView(
                self.platform.delay_matrix,
                send_free=self._send_free,
                recv_free=self._recv_free,
                link_free=self._link_free,
                route_hops=self._route_hops,
                num_links=len(self._link_free),
                # flat hop CSR is cached on the immutable topology, so
                # every clone's view shares one build (crash replay makes
                # a clone per scenario)
                hop_csr=self.topology.hop_csr(),
            )
        return self._view

    def undo_depth(self) -> int:
        return len(self._log)

    # ------------------------------------------------------------------
    def sender_bound(self, src: int, dst: int, ready: float, volume: float) -> float:
        if src == dst:
            return ready
        w = self.transfer_time(src, dst, volume)
        if w == 0.0:
            return ready
        link_free = self._link_free
        start = max(
            ready,
            self._send_free[src],
            max(link_free[h] for h in self._route_hops[src][dst]),
        )
        return start + w

    def place_transfer(
        self, src: int, dst: int, ready: float, volume: float
    ) -> tuple[float, float]:
        if src == dst:
            return ready, ready
        w = self.transfer_time(src, dst, volume)
        if w == 0.0:
            return ready, ready
        hops = self._route_hops[src][dst]
        link_free = self._link_free
        start = max(
            ready,
            self._send_free[src],
            self._recv_free[dst],
            max(link_free[h] for h in hops),
        )
        finish = start + w
        self._log.append(("send", src, self._send_free[src]))
        self._send_free[src] = finish
        self._log.append(("recv", dst, self._recv_free[dst]))
        self._recv_free[dst] = finish
        for h in hops:
            self._log.append(("link", h, link_free[h]))
            link_free[h] = finish
        return start, finish

    # ------------------------------------------------------------------
    def checkpoint(self) -> int:
        return len(self._log)

    def rollback(self, token: int) -> None:
        while len(self._log) > token:
            which, idx, old = self._log.pop()
            if which == "send":
                self._send_free[idx] = old
            elif which == "recv":
                self._recv_free[idx] = old
            else:
                self._link_free[idx] = old

    def commit(self) -> None:
        self._log.clear()

    def reset(self) -> None:
        m = self.topology.num_procs
        self._send_free = [0.0] * m
        self._recv_free = [0.0] * m
        self._link_free = [0.0] * len(self._hop_id)
        self._log.clear()
        self._view = None  # reset rebinds the state lists
