"""One-port communication over sparse interconnects (paper §7 extension).

"On such platforms, each processor is provided with a routing table ...
to achieve contention awareness, at most one message can circulate on a
given link at a given time-step."  A transfer from ``src`` to ``dst``
follows the precomputed shortest-delay route and holds **every** physical
link of the route (in its travel direction) for the whole transfer, plus
the endpoints' send/receive ports — a circuit-switched reading of the
paper's sentence that keeps the algebra identical to the clique case.
"""

from __future__ import annotations

from repro.comm.base import NetworkModel
from repro.platform.topology import Topology


class RoutedOnePortNetwork(NetworkModel):
    """Send/receive ports per processor plus per-directed-link occupancy."""

    name = "routed-oneport"

    def __init__(self, topology: Topology) -> None:
        super().__init__(topology.to_platform())
        self.topology = topology
        m = topology.num_procs
        self._send_free = [0.0] * m
        self._recv_free = [0.0] * m
        # Directed physical link occupancy (full duplex => per direction).
        self._link_free: dict[tuple[int, int], float] = {}
        for a, b in topology.links():
            self._link_free[(a, b)] = 0.0
            self._link_free[(b, a)] = 0.0
        self._log: list[tuple] = []

    def clone_args(self) -> tuple:
        return (self.topology,)

    # ------------------------------------------------------------------
    def _route_hops(self, src: int, dst: int) -> list[tuple[int, int]]:
        path = self.topology.route(src, dst)
        return [(a, b) for a, b in zip(path, path[1:])]

    def sender_bound(self, src: int, dst: int, ready: float, volume: float) -> float:
        if src == dst:
            return ready
        w = self.transfer_time(src, dst, volume)
        if w == 0.0:
            return ready
        start = max(
            ready,
            self._send_free[src],
            max(self._link_free[h] for h in self._route_hops(src, dst)),
        )
        return start + w

    def place_transfer(
        self, src: int, dst: int, ready: float, volume: float
    ) -> tuple[float, float]:
        if src == dst:
            return ready, ready
        w = self.transfer_time(src, dst, volume)
        if w == 0.0:
            return ready, ready
        hops = self._route_hops(src, dst)
        start = max(
            ready,
            self._send_free[src],
            self._recv_free[dst],
            max(self._link_free[h] for h in hops),
        )
        finish = start + w
        self._log.append(("send", src, self._send_free[src]))
        self._send_free[src] = finish
        self._log.append(("recv", dst, self._recv_free[dst]))
        self._recv_free[dst] = finish
        for h in hops:
            self._log.append(("link", h, self._link_free[h]))
            self._link_free[h] = finish
        return start, finish

    # ------------------------------------------------------------------
    def checkpoint(self) -> int:
        return len(self._log)

    def rollback(self, token: int) -> None:
        while len(self._log) > token:
            which, idx, old = self._log.pop()
            if which == "send":
                self._send_free[idx] = old
            elif which == "recv":
                self._recv_free[idx] = old
            else:
                self._link_free[idx] = old

    def commit(self) -> None:
        self._log.clear()

    def reset(self) -> None:
        m = self.topology.num_procs
        self._send_free = [0.0] * m
        self._recv_free = [0.0] * m
        for key in self._link_free:
            self._link_free[key] = 0.0
        self._log.clear()
