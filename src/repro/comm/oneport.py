"""The bi-directional one-port model and its §2 variants.

Bi-directional one-port (the paper's model):

* a processor sends at most one message at a time (send port),
* a processor receives at most one message at a time (receive port),
* a message occupies the link between the two processors for its whole
  duration; links are dedicated per ordered pair (full duplex),
* communication and computation overlap fully.

Resources are granted **append-only**: a transfer starts at the max of the
data-ready time and the three resource free-times, exactly like eqs. (4)
and (6).  An optional insertion-based policy (reuse idle gaps) is provided
for ablation studies; the paper's equations correspond to ``"append"``.
"""

from __future__ import annotations

import bisect
from typing import Literal

from repro.comm.base import (
    FrontierView,
    KernelCaps,
    NetworkModel,
    common_gap_start,
    earliest_gap,
)
from repro.platform.platform import Platform
from repro.utils.errors import InvalidPlatformError

PortPolicy = Literal["append", "insertion"]


class _GapTimeline:
    """Busy intervals on one resource, supporting gap-filling insertion.

    Kept sorted by start time; used only by the ``insertion`` policy.
    ``earliest(ready, duration)`` returns the first feasible start.

    ``version`` counts mutations so readers can cache derived state;
    :meth:`gap_vectors` is the split ``(starts, ends)`` mirror the fast
    kernel's gap-overlay scans copy from (rebuilt only when the
    committed intervals actually changed).  Plain lists on purpose: at
    the tens-of-intervals sizes real timelines reach, C-backed
    ``bisect``/``list.insert`` beat ndarray scalar indexing by a wide
    margin, and the scan stays bit-identical either way.
    """

    __slots__ = ("intervals", "version", "_vectors")

    def __init__(self) -> None:
        self.intervals: list[tuple[float, float]] = []
        self.version = 0
        self._vectors: tuple[int, list[float], list[float]] | None = None

    def earliest(self, ready: float, duration: float) -> float:
        return earliest_gap(self.intervals, ready, duration)

    def reserve(self, start: float, finish: float) -> None:
        bisect.insort(self.intervals, (start, finish))
        self.version += 1

    def release(self, start: float, finish: float) -> None:
        self.intervals.remove((start, finish))
        self.version += 1

    def gap_vectors(self) -> tuple[list[float], list[float]]:
        """``(starts, ends)`` of the committed intervals (cached per version)."""
        cached = self._vectors
        if cached is None or cached[0] != self.version:
            cached = (
                self.version,
                [s for s, _ in self.intervals],
                [f for _, f in self.intervals],
            )
            self._vectors = cached
        return cached[1], cached[2]


class OnePortNetwork(NetworkModel):
    """Bi-directional one-port state: send/receive ports + dedicated links."""

    name = "oneport"

    def __init__(self, platform: Platform, policy: PortPolicy = "append") -> None:
        super().__init__(platform)
        if policy not in ("append", "insertion"):
            raise InvalidPlatformError(f"unknown port policy {policy!r}")
        self.policy: PortPolicy = policy
        m = platform.num_procs
        self._m = m
        # Plain nested lists beat numpy scalar indexing in the hot loop.
        self._delay = platform.delay_matrix.tolist()
        # Append policy state: scalar free-times per resource.
        self._send_free = [0.0] * m
        self._recv_free = [0.0] * m
        self._link_free = [0.0] * (m * m)
        # Insertion policy state: full busy timelines per resource.
        self._send_tl = [_GapTimeline() for _ in range(m)] if policy == "insertion" else []
        self._recv_tl = [_GapTimeline() for _ in range(m)] if policy == "insertion" else []
        self._link_tl = (
            [_GapTimeline() for _ in range(m * m)] if policy == "insertion" else []
        )
        # Undo log: ("scalar", which, idx, old) or ("interval", which, idx, s, f)
        self._log: list[tuple] = []
        self._view: FrontierView | None = None

    def clone_args(self) -> tuple:
        return (self.platform, self.policy)

    # ------------------------------------------------------------------
    # Resource-frontier protocol
    # ------------------------------------------------------------------
    def kernel_caps(self) -> KernelCaps | None:
        if type(self) is not OnePortNetwork:
            return None  # subclasses must re-declare (see NetworkModel)
        return KernelCaps(gap_timelines=(self.policy == "insertion"))

    def frontier_view(self) -> FrontierView:
        if self._view is None:
            self._view = FrontierView(
                self.platform.delay_matrix,
                send_free=self._send_free,
                recv_free=self._recv_free,
                link_free=self._link_free,
                send_timelines=self._send_tl or None,
                recv_timelines=self._recv_tl or None,
                link_timelines=self._link_tl or None,
            )
        return self._view

    def undo_depth(self) -> int:
        return len(self._log)

    # ------------------------------------------------------------------
    def send_free(self, proc: int) -> float:
        """The paper's ``SF(P)``: when ``proc`` may start its next send."""
        return self._send_free[proc]

    def recv_free(self, proc: int) -> float:
        """The paper's ``RF(P)``: when ``proc`` may start its next receive."""
        return self._recv_free[proc]

    def link_ready(self, src: int, dst: int) -> float:
        """The paper's ``R(l)`` for the directed link ``src -> dst``."""
        return self._link_free[src * self._m + dst]

    # ------------------------------------------------------------------
    def sender_bound(self, src: int, dst: int, ready: float, volume: float) -> float:
        if src == dst:
            return ready
        w = volume * self._delay[src][dst]
        if w == 0.0:
            return ready
        start = max(ready, self._send_free[src], self._link_free[src * self._m + dst])
        return start + w

    def place_transfer(
        self, src: int, dst: int, ready: float, volume: float
    ) -> tuple[float, float]:
        if src == dst:
            return ready, ready
        w = volume * self._delay[src][dst]
        if w == 0.0:
            return ready, ready
        li = src * self._m + dst
        if self.policy == "insertion":
            start = common_gap_start(
                (
                    self._send_tl[src].intervals,
                    self._recv_tl[dst].intervals,
                    self._link_tl[li].intervals,
                ),
                ready,
                w,
            )
            finish = start + w
            for which, idx in (("send", src), ("recv", dst), ("link", li)):
                tl = getattr(self, f"_{which}_tl")[idx]
                tl.reserve(start, finish)
                self._log.append(("interval", which, idx, start, finish))
            # Keep scalar frontiers coherent for sender_bound()/inspection.
            for which, idx, arr in (("send", src, self._send_free),
                                    ("recv", dst, self._recv_free),
                                    ("link", li, self._link_free)):
                if finish > arr[idx]:
                    self._log.append(("scalar", which, idx, arr[idx]))
                    arr[idx] = finish
            return start, finish

        start = max(
            ready,
            self._send_free[src],
            self._recv_free[dst],
            self._link_free[li],
        )
        finish = start + w
        self._log.append(("scalar", "send", src, self._send_free[src]))
        self._send_free[src] = finish
        self._log.append(("scalar", "recv", dst, self._recv_free[dst]))
        self._recv_free[dst] = finish
        self._log.append(("scalar", "link", li, self._link_free[li]))
        self._link_free[li] = finish
        return start, finish

    # ------------------------------------------------------------------
    def checkpoint(self) -> int:
        return len(self._log)

    def rollback(self, token: int) -> None:
        while len(self._log) > token:
            entry = self._log.pop()
            if entry[0] == "scalar":
                _kind, which, idx, old = entry
                self._scalar_array(which)[idx] = old
            else:
                _kind, which, idx, s, f = entry
                getattr(self, f"_{which}_tl")[idx].release(s, f)

    def commit(self) -> None:
        self._log.clear()

    def reset(self) -> None:
        m = self._m
        self._send_free = [0.0] * m
        self._recv_free = [0.0] * m
        self._link_free = [0.0] * (m * m)
        if self.policy == "insertion":
            self._send_tl = [_GapTimeline() for _ in range(m)]
            self._recv_tl = [_GapTimeline() for _ in range(m)]
            self._link_tl = [_GapTimeline() for _ in range(m * m)]
        self._log.clear()
        self._view = None  # reset rebinds the state lists

    def _scalar_array(self, which: str) -> list[float]:
        if which == "send":
            return self._send_free
        if which == "recv":
            return self._recv_free
        return self._link_free


class UniPortNetwork(OnePortNetwork):
    """Uni-directional one-port (§2 variant): one shared port per processor.

    A processor cannot send and receive simultaneously — both directions
    contend for a single engine.  Implemented by aliasing the send and
    receive free-times through a shared port array.
    """

    name = "uniport"

    def __init__(self, platform: Platform) -> None:
        super().__init__(platform, policy="append")
        # One engine per processor: make send/recv views of the same list.
        self._recv_free = self._send_free

    def clone_args(self) -> tuple:
        return (self.platform,)

    def kernel_caps(self) -> KernelCaps | None:
        if type(self) is not UniPortNetwork:
            return None  # subclasses must re-declare (see NetworkModel)
        return KernelCaps(shared_port=True)

    def reset(self) -> None:
        super().reset()
        self._recv_free = self._send_free

    def _scalar_array(self, which: str) -> list[float]:
        if which in ("send", "recv"):
            return self._send_free
        return self._link_free


class NoOverlapOnePortNetwork(OnePortNetwork):
    """One-port without communication/computation overlap (§2 variant).

    A processor engaged in a transfer cannot compute, and vice versa.  The
    schedule builder reports computations via :meth:`note_compute`; the
    model advances the ports past them, and exposes the communication
    frontier to the builder through :meth:`compute_floor`.
    """

    name = "oneport-nooverlap"

    def __init__(self, platform: Platform) -> None:
        super().__init__(platform, policy="append")

    def clone_args(self) -> tuple:
        return (self.platform,)

    def kernel_caps(self) -> KernelCaps | None:
        if type(self) is not NoOverlapOnePortNetwork:
            return None  # subclasses must re-declare (see NetworkModel)
        return KernelCaps(compute_blocks=True)

    def compute_floor(self, proc: int) -> float:
        return max(self._send_free[proc], self._recv_free[proc])

    def note_compute(self, proc: int, start: float, finish: float) -> None:
        for which, arr in (("send", self._send_free), ("recv", self._recv_free)):
            if finish > arr[proc]:
                self._log.append(("scalar", which, proc, arr[proc]))
                arr[proc] = finish
