"""The classical macro-dataflow (contention-free) communication model.

This is the model the paper argues *against* (§1): unlimited ports, no
link contention.  A transfer starts the instant its data is ready and
takes ``W = volume * d(src, dst)``; nothing is ever reserved, so the undo
log is trivial.  FTSA and FTBAR were originally designed for this model —
running them under both models quantifies the impact of contention.
"""

from __future__ import annotations

from repro.comm.base import FrontierView, KernelCaps, NetworkModel


class MacroDataflowNetwork(NetworkModel):
    """Contention-free network: transfers never wait for resources."""

    name = "macro-dataflow"

    _view: FrontierView | None = None

    def kernel_caps(self) -> KernelCaps | None:
        if type(self) is not MacroDataflowNetwork:
            return None  # subclasses must re-declare (see NetworkModel)
        return KernelCaps(contention=False)

    def frontier_view(self) -> FrontierView:
        # Nothing is ever reserved: the view carries only the delays.
        if self._view is None:
            self._view = FrontierView(self.platform.delay_matrix)
        return self._view

    def place_transfer(
        self, src: int, dst: int, ready: float, volume: float
    ) -> tuple[float, float]:
        return ready, ready + self.transfer_time(src, dst, volume)

    def sender_bound(self, src: int, dst: int, ready: float, volume: float) -> float:
        return ready + self.transfer_time(src, dst, volume)

    def checkpoint(self) -> int:
        return 0

    def rollback(self, token: int) -> None:
        pass

    def commit(self) -> None:
        pass

    def reset(self) -> None:
        pass
