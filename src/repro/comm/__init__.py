"""Communication models: one-port (paper), macro-dataflow, variants."""

from repro.comm.base import NetworkModel
from repro.comm.oneport import (
    OnePortNetwork,
    UniPortNetwork,
    NoOverlapOnePortNetwork,
)
from repro.comm.macrodataflow import MacroDataflowNetwork
from repro.comm.routed import RoutedOnePortNetwork

from repro.platform.platform import Platform

_MODELS = {
    "oneport": OnePortNetwork,
    "uniport": UniPortNetwork,
    "oneport-nooverlap": NoOverlapOnePortNetwork,
    "macro-dataflow": MacroDataflowNetwork,
}


def make_network(model: str, platform: Platform, **kwargs) -> NetworkModel:
    """Instantiate a network model by name over ``platform``.

    Valid names: ``"oneport"`` (the paper's model), ``"uniport"``,
    ``"oneport-nooverlap"`` and ``"macro-dataflow"``.  Routed sparse models
    are built directly from a :class:`~repro.platform.topology.Topology`
    via :class:`RoutedOnePortNetwork`.
    """
    try:
        cls = _MODELS[model]
    except KeyError:
        raise ValueError(
            f"unknown network model {model!r}; choose from {sorted(_MODELS)}"
        ) from None
    return cls(platform, **kwargs)


__all__ = [
    "NetworkModel",
    "OnePortNetwork",
    "UniPortNetwork",
    "NoOverlapOnePortNetwork",
    "MacroDataflowNetwork",
    "RoutedOnePortNetwork",
    "make_network",
]
