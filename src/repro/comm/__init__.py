"""Communication models: one-port (paper), macro-dataflow, variants."""

from typing import Optional

from repro.comm.base import FrontierView, KernelCaps, NetworkModel
from repro.comm.oneport import (
    OnePortNetwork,
    UniPortNetwork,
    NoOverlapOnePortNetwork,
)
from repro.comm.macrodataflow import MacroDataflowNetwork
from repro.comm.routed import RoutedOnePortNetwork

from repro.platform.platform import Platform
from repro.platform.topology import Topology

_MODELS = {
    "oneport": OnePortNetwork,
    "uniport": UniPortNetwork,
    "oneport-nooverlap": NoOverlapOnePortNetwork,
    "macro-dataflow": MacroDataflowNetwork,
}

#: registered model names at import time (CLI/campaign ``--network``);
#: :func:`network_names` is the live view that sees later registrations
NETWORK_NAMES: tuple[str, ...] = tuple(sorted([*_MODELS, "routed-oneport"]))


def network_names() -> tuple[str, ...]:
    """Currently registered network model names, sorted.

    Unlike the import-time :data:`NETWORK_NAMES` snapshot this includes
    models added later through :func:`register_network`.
    """
    return tuple(sorted([*_MODELS, "routed-oneport"]))


def register_network(name: str, cls: type, *, overwrite: bool = False) -> type:
    """Register a :class:`NetworkModel` subclass under ``name``.

    Registered models are constructed as ``cls(platform, **kwargs)`` by
    :func:`make_network` and become valid ``--network`` / spec values
    everywhere a campaign names its communication model.  Returns
    ``cls`` so it can be used as a decorator.
    """
    from repro.utils.registry import check_registration

    check_registration(
        "network model",
        name,
        name == "routed-oneport" or name in _MODELS,
        overwrite and name != "routed-oneport",
    )
    _MODELS[name] = cls
    return cls


def make_network(
    model: str,
    platform: Optional[Platform] = None,
    topology: Optional[Topology] = None,
    **kwargs,
) -> NetworkModel:
    """Instantiate a network model by name.

    Valid names: ``"oneport"`` (the paper's model, optional
    ``policy="insertion"``), ``"uniport"``, ``"oneport-nooverlap"``,
    ``"macro-dataflow"`` — all built over ``platform`` — and
    ``"routed-oneport"``, built over a sparse
    :class:`~repro.platform.topology.Topology` passed as ``topology``
    (its effective route delays define the platform).
    """
    if model == "routed-oneport":
        if topology is None:
            raise ValueError("routed-oneport needs a topology= keyword")
        if platform is not None and platform.num_procs != topology.num_procs:
            # the topology defines the routed model's platform; a caller
            # scheduling against a different-sized platform would get
            # out-of-range processor indices (or silently wrong delays)
            raise ValueError(
                f"topology has {topology.num_procs} processors but the "
                f"platform has {platform.num_procs} — a routed network "
                "must be built over the topology it schedules on"
            )
        return RoutedOnePortNetwork(topology, **kwargs)
    try:
        cls = _MODELS[model]
    except KeyError:
        raise ValueError(
            f"unknown network model {model!r}; choose from {list(NETWORK_NAMES)}"
        ) from None
    if platform is None:
        raise ValueError(f"network model {model!r} needs a platform")
    return cls(platform, **kwargs)


__all__ = [
    "NetworkModel",
    "KernelCaps",
    "FrontierView",
    "OnePortNetwork",
    "UniPortNetwork",
    "NoOverlapOnePortNetwork",
    "MacroDataflowNetwork",
    "RoutedOnePortNetwork",
    "NETWORK_NAMES",
    "network_names",
    "register_network",
    "make_network",
]
