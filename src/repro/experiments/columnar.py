"""Columnar results backend: NumPy structured-array chunks + JSONL tail.

The JSONL store pays JSON parsing and per-row dict overhead on every
load, which caps campaigns at whatever fits in RSS.  This backend keeps
the exact same append-only/idempotent/crash-repair discipline but rotates
completed rows into sealed, immutable ``chunk-NNNNNN.npz`` files of
column arrays:

- the **active chunk** is ``tail.jsonl`` — literally the JSONL backend's
  row format and repair machinery (this class inherits them), so a kill
  mid-append loses at most the in-flight unit and the trailing-partial
  repair stays byte-exact;
- once the tail holds ``chunk_rows`` flattened rows it is **sealed**:
  rows become float64/int64 columns (scenario tags and algorithm names
  dictionary-encoded per chunk, ``None`` metrics stored as NaN), written
  to a temp file and atomically renamed, after which the tail is
  truncated.  Sealed chunks are never rewritten;
- ``index.json`` is a *derived* footer: per-chunk row/unit counts,
  column min/max for predicate pushdown, the tag dictionaries, and the
  per-(scenario, granularity) rep sets that make loads O(index + tail)
  instead of O(rows).  A chunk missing from the footer (a crash landed
  between rename and index rewrite) is re-derived from the ``.npz``
  itself — the footer is a cache, never the truth.

Crash windows: a kill before the rename leaves only a ``chunk-N.tmp``
(ignored: the glob only matches ``.npz``), so the rows are still in the
tail.  A kill between rename and tail truncation leaves the sealed rows
*also* in the tail; load dedups the tail against the sealed membership
(counted as ``replayed_rows``, same semantics as a JSONL replay).

Floats are stored as float64 — bit-identical to the Python floats the
serial harness produces — and tag dictionaries are JSON-encoded byte
arrays (NumPy unicode arrays mangle NUL bytes and lone surrogates), so
round-trips are exact for any string Python can hold.

On top of the chunks sit vectorized query fast paths
(:meth:`ColumnarStore.series_values`, :meth:`paired_series_values`,
:meth:`scenario_algorithms`) that ``stats``/``compare`` dispatch to:
chunk-level pruning, NumPy row masks, and a final ``lexsort`` reproduce
the generic per-row code's output exactly — same values, same order, fed
into the same downstream arithmetic — which is what keeps columnar
campaigns bit-identical to the JSONL/serial baseline.
"""

from __future__ import annotations

import json
import math
import os
import re
import zipfile
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, Mapping, Optional, Sequence, Union

import numpy as np

from repro.experiments.grid import unit_id_for
from repro.experiments.harness import RepResult, flatten_rep_result
from repro.experiments.store import (
    COLUMNAR_TAIL_NAME,
    ROWS_NAME,
    TAG_COLUMNS,
    RunStore,
    StoreError,
    canonical_row_key,
    project_row,
    row_matches,
)

INDEX_NAME = "index.json"
CHUNK_FORMAT = 1
#: flattened (unit × algorithm) rows per sealed chunk; also the RSS bound
#: for loads and streaming queries, which touch one chunk at a time
DEFAULT_CHUNK_ROWS = 65536

#: per-chunk dictionary-encoded string columns
DICT_COLUMNS = TAG_COLUMNS + ("algorithm",)
#: numeric columns stored directly (never None)
FIXED_NUMERIC = ("granularity", "rep", "faultfree_norm")

_CHUNK_RE = re.compile(r"chunk-(\d{6})\.npz")


def _json_bytes(obj) -> np.ndarray:
    """A JSON document as a uint8 column (exact for any Python string)."""
    return np.frombuffer(json.dumps(obj).encode("ascii"), dtype=np.uint8)


def _json_unbytes(arr: np.ndarray):
    return json.loads(bytes(arr).decode("ascii"))


def _matches_value(have, want) -> bool:
    """Scalar-vs-``where`` comparison, same semantics as row_matches."""
    return row_matches({"k": have}, {"k": want})


def _granularity_flags(npz, n: int) -> np.ndarray:
    """Per-row "was a Python int" flags (all-float for older chunks)."""
    if "granularity_int" in npz:
        return np.asarray(npz["granularity_int"], dtype=np.uint8)
    return np.zeros(n, dtype=np.uint8)


def _granularity_value(g: float, flag: int) -> Union[int, float]:
    return int(g) if flag else float(g)


@dataclass
class ChunkMeta:
    """In-memory footer entry for one sealed chunk (derived, cheap)."""

    name: str
    rows: int
    units: int
    metric_names: tuple[str, ...]
    dicts: dict[str, list[str]]
    g_min: float
    g_max: float
    rep_min: int
    rep_max: int
    #: (scenario 4-tuple, granularity) -> sorted rep array; the sealed
    #: membership used to dedup tail replays and resumed campaigns
    groups: list[tuple[tuple[str, str, str, str], float, np.ndarray]]


class ColumnarStore(RunStore):
    """Chunked columnar :class:`RunStore` for million-row campaigns.

    Same API and semantics as the JSONL backend — executors only call
    :meth:`append`, and it stays thread-safe, idempotent per unit id,
    and attempt-attributed.  Requires a directory (the whole point is
    spilling to disk); pass ``backend="memory"`` for ephemeral runs.
    """

    backend_name = "columnar"

    def __init__(
        self,
        directory: Union[str, Path, None] = None,
        chunk_rows: Optional[int] = None,
    ) -> None:
        if directory is None:
            raise StoreError(
                "the 'columnar' backend needs a directory "
                "(use backend='memory' for ephemeral runs)"
            )
        self.chunk_rows = max(1, int(chunk_rows or DEFAULT_CHUNK_ROWS))
        self._chunks: list[ChunkMeta] = []
        self._scen_ids: dict[tuple, int] = {}
        self._scen_tuples: list[tuple] = []
        self._sealed_reps: dict[tuple, np.ndarray] = {}
        self._sealed_units = 0
        self._id_map: Optional[dict[str, tuple[int, int]]] = None
        self._tail_rows = 0
        self._next_chunk = 0
        super().__init__(directory)

    # ------------------------------------------------------------------ load

    @property
    def rows_path(self) -> Path:
        # The active chunk reuses the inherited JSONL append/repair
        # machinery verbatim — only the file name differs.
        return self.directory / COLUMNAR_TAIL_NAME

    def _chunk_path(self, meta: ChunkMeta) -> Path:
        return self.directory / meta.name

    def _reject_foreign_backend(self) -> None:
        if (self.directory / ROWS_NAME).exists():
            raise StoreError(
                f"{self.directory}: directory holds a 'jsonl' store; "
                "open it with open_store()/make_store('jsonl', ...)"
            )

    def _load_rows(self) -> None:
        self._reject_foreign_backend()
        self._load_chunks()
        super()._load_rows()  # the tail; _ingest dedups vs sealed chunks
        self._tail_rows = sum(len(r.metrics) for r in self._results.values())

    def _load_chunks(self) -> None:
        entries: dict[str, dict] = {}
        index_path = self.directory / INDEX_NAME
        if index_path.exists():
            try:
                data = json.loads(index_path.read_text())
                entries = {e["name"]: e for e in data.get("chunks", [])}
            except (OSError, json.JSONDecodeError, TypeError, KeyError):
                entries = {}  # stale/corrupt footer: re-derive from chunks
        last = -1
        for path in sorted(self.directory.glob("chunk-*.npz")):
            m = _CHUNK_RE.fullmatch(path.name)
            if not m:
                continue
            last = max(last, int(m.group(1)))
            entry = entries.get(path.name)
            meta = None
            if entry is not None:
                try:
                    meta = self._meta_from_entry(entry)
                except (KeyError, TypeError, ValueError):
                    meta = None
            if meta is None:
                meta = self._meta_from_chunk(path)
            self._chunks.append(meta)
            self._register_groups(meta)
            self._sealed_units += meta.units
        self._next_chunk = last + 1

    def _meta_from_entry(self, entry: dict) -> ChunkMeta:
        groups = [
            (
                tuple(g["scenario"]),
                float(g["granularity"]),
                np.sort(np.asarray(g["reps"], dtype=np.int64)),
            )
            for g in entry["groups"]
        ]
        return ChunkMeta(
            name=entry["name"],
            rows=int(entry["rows"]),
            units=int(entry["units"]),
            metric_names=tuple(entry["metric_names"]),
            dicts={col: list(entry["dicts"][col]) for col in DICT_COLUMNS},
            g_min=float(entry["granularity"][0]),
            g_max=float(entry["granularity"][1]),
            rep_min=int(entry["rep"][0]),
            rep_max=int(entry["rep"][1]),
            groups=groups,
        )

    def _meta_from_chunk(self, path: Path) -> ChunkMeta:
        """Re-derive a footer entry from the chunk itself (crash landed
        between the chunk rename and the index rewrite)."""
        try:
            with np.load(path) as npz:
                if int(npz["chunk_format"]) != CHUNK_FORMAT:
                    raise StoreError(
                        f"{path}: unsupported chunk format "
                        f"{int(npz['chunk_format'])} (supported: {CHUNK_FORMAT})"
                    )
                starts = np.asarray(npz["unit_starts"], dtype=np.int64)
                g = np.asarray(npz["granularity"], dtype=np.float64)
                rep = np.asarray(npz["rep"], dtype=np.int64)
                dicts = {
                    col: _json_unbytes(npz[f"{col}_dict"]) for col in DICT_COLUMNS
                }
                metric_names = tuple(_json_unbytes(npz["metric_names"]))
                unit_g = g[starts]
                unit_rep = rep[starts]
                stacked = np.stack(
                    [np.asarray(npz[f"{c}_codes"])[starts] for c in TAG_COLUMNS],
                    axis=1,
                )
        except StoreError:
            raise
        except (OSError, KeyError, ValueError, zipfile.BadZipFile) as exc:
            raise StoreError(f"{path}: corrupt columnar chunk ({exc})") from None
        combos, inverse = np.unique(stacked, axis=0, return_inverse=True)
        inverse = np.asarray(inverse).ravel()  # 2-D on some NumPy 2.x
        groups: list[tuple[tuple, float, np.ndarray]] = []
        for j in range(len(combos)):
            t = tuple(
                dicts[c][int(combos[j][k])] for k, c in enumerate(TAG_COLUMNS)
            )
            cmask = inverse == j
            for gv in np.unique(unit_g[cmask]):
                reps = np.sort(unit_rep[cmask & (unit_g == gv)])
                groups.append((t, float(gv), reps))
        return ChunkMeta(
            name=path.name,
            rows=int(len(g)),
            units=int(len(starts)),
            metric_names=metric_names,
            dicts=dicts,
            g_min=float(g.min()),
            g_max=float(g.max()),
            rep_min=int(rep.min()),
            rep_max=int(rep.max()),
            groups=groups,
        )

    def _register_groups(self, meta: ChunkMeta) -> None:
        for t, gv, reps in meta.groups:
            sid = self._scen_ids.get(t)
            if sid is None:
                sid = len(self._scen_tuples)
                self._scen_ids[t] = sid
                self._scen_tuples.append(t)
            key = (sid, gv)
            prev = self._sealed_reps.get(key)
            self._sealed_reps[key] = (
                reps if prev is None else np.sort(np.concatenate([prev, reps]))
            )

    def _sealed_has(self, scen: tuple, granularity: float, rep: int) -> bool:
        sid = self._scen_ids.get(scen)
        if sid is None:
            return False
        arr = self._sealed_reps.get((sid, float(granularity)))
        if arr is None:
            return False
        i = int(np.searchsorted(arr, rep))
        return i < arr.size and int(arr[i]) == rep

    def _ingest(self, record: dict) -> None:
        # A crash between sealing and tail truncation leaves sealed rows
        # also in the tail; skip them like any replayed append.
        scen = tuple(record[c] for c in TAG_COLUMNS)
        if self._sealed_has(scen, record["granularity"], record["rep"]):
            self._replayed_rows += 1
            return
        super()._ingest(record)

    # --------------------------------------------------------------- writing

    def append(self, unit, result: RepResult, attempt: str = "primary") -> bool:
        with self._lock:
            tags = unit.scenario
            scen = tuple(tags[c] for c in TAG_COLUMNS)
            if self._sealed_has(scen, unit.granularity, unit.rep):
                self._duplicate_appends += 1
                self._duplicates_by_attempt[attempt] = (
                    self._duplicates_by_attempt.get(attempt, 0) + 1
                )
                return False
            stored = super().append(unit, result, attempt=attempt)
            if stored:
                self._tail_rows += len(result.metrics)
                if self._tail_rows >= self.chunk_rows:
                    self._seal_tail()
            return stored

    def _seal_tail(self) -> None:
        """Rotate the tail into an immutable ``chunk-NNNNNN.npz``.

        Write order is the crash-safety argument: chunk tmp -> fsync ->
        atomic rename -> index rewrite -> tail truncation.  A kill at any
        point either leaves the rows only in the tail (before the
        rename) or in both places (after), and load dedups the overlap.
        Caller holds the lock.
        """
        order = list(self._order)
        if not order:
            return
        dicts: dict[str, list[str]] = {col: [] for col in DICT_COLUMNS}
        code_of: dict[str, dict[str, int]] = {col: {} for col in DICT_COLUMNS}
        codes: dict[str, list[int]] = {col: [] for col in DICT_COLUMNS}

        def encode(col: str, value: str) -> None:
            table = code_of[col]
            code = table.get(value)
            if code is None:
                code = len(table)
                table[value] = code
                dicts[col].append(value)
            codes[col].append(code)

        g_rows: list[float] = []
        g_int_rows: list[int] = []
        rep_rows: list[int] = []
        ff_rows: list[float] = []
        starts: list[int] = []
        metric_names: Optional[tuple[str, ...]] = None
        metric_rows: list[list[float]] = []
        groups: dict[tuple, list[int]] = {}
        for uid in order:
            tags = self._tags[uid]
            result = self._results[uid]
            t = tuple(tags[c] for c in TAG_COLUMNS)
            starts.append(len(g_rows))
            groups.setdefault((t, float(result.granularity)), []).append(
                int(result.rep)
            )
            for algo, metrics in result.metrics.items():
                names = tuple(metrics)
                if metric_names is None:
                    metric_names = names
                    metric_rows = [[] for _ in names]
                elif names != metric_names:
                    raise StoreError(
                        f"{self.directory}: columnar chunks need a uniform "
                        f"metric schema; unit {uid!r} carries {names!r} but "
                        f"the chunk started with {metric_names!r}"
                    )
                for c in TAG_COLUMNS:
                    encode(c, tags[c])
                encode("algorithm", algo)
                g_rows.append(float(result.granularity))
                g_int_rows.append(int(isinstance(result.granularity, int)))
                rep_rows.append(int(result.rep))
                ff_rows.append(float(result.faultfree_norm[algo]))
                for k, v in enumerate(metrics.values()):
                    metric_rows[k].append(math.nan if v is None else float(v))
        metric_names = metric_names or ()

        members: dict[str, np.ndarray] = {
            "chunk_format": np.asarray(CHUNK_FORMAT, dtype=np.int64),
            "unit_starts": np.asarray(starts, dtype=np.int64),
            "granularity": np.asarray(g_rows, dtype=np.float64),
            # configs may sweep int granularities; JSONL round-trips the
            # Python type exactly, so the flag keeps unit ids/rows identical
            "granularity_int": np.asarray(g_int_rows, dtype=np.uint8),
            "rep": np.asarray(rep_rows, dtype=np.int64),
            "faultfree_norm": np.asarray(ff_rows, dtype=np.float64),
            "metric_names": _json_bytes(list(metric_names)),
        }
        for k in range(len(metric_names)):
            members[f"metric_{k}"] = np.asarray(metric_rows[k], dtype=np.float64)
        for col in DICT_COLUMNS:
            members[f"{col}_codes"] = np.asarray(codes[col], dtype=np.uint32)
            members[f"{col}_dict"] = _json_bytes(dicts[col])

        idx = self._next_chunk
        name = f"chunk-{idx:06d}.npz"
        # .tmp, not .npz.tmp: the chunk glob must never match a partial
        tmp = self.directory / f"chunk-{idx:06d}.tmp"
        with open(tmp, "wb") as fh:
            np.savez(fh, **members)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, self.directory / name)

        meta = ChunkMeta(
            name=name,
            rows=len(g_rows),
            units=len(starts),
            metric_names=metric_names,
            dicts={col: list(dicts[col]) for col in DICT_COLUMNS},
            g_min=min(g_rows),
            g_max=max(g_rows),
            rep_min=min(rep_rows),
            rep_max=max(rep_rows),
            groups=[
                (t, gv, np.sort(np.asarray(reps, dtype=np.int64)))
                for (t, gv), reps in groups.items()
            ],
        )
        ci = len(self._chunks)
        self._chunks.append(meta)
        self._next_chunk = idx + 1
        self._register_groups(meta)
        self._sealed_units += meta.units
        if self._id_map is not None:
            for uj, uid in enumerate(order):
                self._id_map[uid] = (ci, uj)
        self._write_index()

        if self._rows_fh is not None:
            self._rows_fh.close()
            self._rows_fh = None
        open(self.rows_path, "wb").close()
        self._repair_truncate = None
        self._repair_newline = False
        self._results.clear()
        self._tags.clear()
        self._order.clear()
        self._tail_rows = 0

    def _write_index(self) -> None:
        data = {
            "format": CHUNK_FORMAT,
            "chunks": [
                {
                    "name": m.name,
                    "rows": m.rows,
                    "units": m.units,
                    "metric_names": list(m.metric_names),
                    "dicts": m.dicts,
                    "granularity": [m.g_min, m.g_max],
                    "rep": [m.rep_min, m.rep_max],
                    "groups": [
                        {
                            "scenario": list(t),
                            "granularity": gv,
                            "reps": [int(r) for r in reps],
                        }
                        for t, gv, reps in m.groups
                    ],
                }
                for m in self._chunks
            ],
        }
        tmp = self.directory / (INDEX_NAME + ".tmp")
        tmp.write_text(json.dumps(data) + "\n")
        os.replace(tmp, self.directory / INDEX_NAME)

    # --------------------------------------------------------------- reading

    def __len__(self) -> int:
        return self._sealed_units + len(self._results)

    def __contains__(self, unit_id: str) -> bool:
        if unit_id in self._results:
            return True
        if not self._chunks:
            return False
        return unit_id in self._ensure_id_map()

    def completed_ids(self) -> frozenset[str]:
        with self._lock:
            ids = set(self._results)
            if self._chunks:
                ids.update(self._ensure_id_map())
            return frozenset(ids)

    def _ensure_id_map(self) -> dict[str, tuple[int, int]]:
        """unit_id -> (chunk, unit) for sealed units, built lazily —
        resume and point lookups need it, streaming queries never do."""
        with self._lock:
            if self._id_map is None:
                id_map: dict[str, tuple[int, int]] = {}
                for ci, meta in enumerate(self._chunks):
                    with np.load(self._chunk_path(meta)) as npz:
                        starts = np.asarray(npz["unit_starts"], dtype=np.int64)
                        g = npz["granularity"][starts]
                        gint = _granularity_flags(npz, meta.rows)[starts]
                        rep = npz["rep"][starts]
                        tag_vals = {
                            c: [
                                meta.dicts[c][int(x)]
                                for x in np.asarray(npz[f"{c}_codes"])[starts]
                            ]
                            for c in TAG_COLUMNS
                        }
                    for uj in range(len(starts)):
                        uid = unit_id_for(
                            tag_vals["config"][uj],
                            tag_vals["network"][uj],
                            tag_vals["topology"][uj],
                            tag_vals["policy"][uj],
                            _granularity_value(g[uj], int(gint[uj])),
                            int(rep[uj]),
                        )
                        id_map[uid] = (ci, uj)
                self._id_map = id_map
            return self._id_map

    def _chunk_unit_results(self, ci: int) -> Iterator[tuple[str, dict, RepResult]]:
        """(unit_id, tags, RepResult) per sealed unit of one chunk."""
        meta = self._chunks[ci]
        with np.load(self._chunk_path(meta)) as npz:
            starts = np.asarray(npz["unit_starts"], dtype=np.int64)
            ends = np.append(starts[1:], meta.rows)
            g = np.asarray(npz["granularity"])
            gint = _granularity_flags(npz, meta.rows)
            rep = np.asarray(npz["rep"])
            ff = np.asarray(npz["faultfree_norm"])
            algo_codes = np.asarray(npz["algorithm_codes"])
            tag_codes = {c: np.asarray(npz[f"{c}_codes"]) for c in TAG_COLUMNS}
            metric_cols = [
                np.asarray(npz[f"metric_{k}"])
                for k in range(len(meta.metric_names))
            ]
        algo_values = meta.dicts["algorithm"]
        for uj in range(len(starts)):
            s, e = int(starts[uj]), int(ends[uj])
            faultfree: dict[str, float] = {}
            metrics: dict[str, dict[str, Optional[float]]] = {}
            for r in range(s, e):
                algo = algo_values[int(algo_codes[r])]
                faultfree[algo] = float(ff[r])
                metrics[algo] = {
                    nm: (None if np.isnan(col[r]) else float(col[r]))
                    for nm, col in zip(meta.metric_names, metric_cols)
                }
            gv, rv = _granularity_value(g[s], int(gint[s])), int(rep[s])
            tags = {c: meta.dicts[c][int(tag_codes[c][s])] for c in TAG_COLUMNS}
            uid = unit_id_for(
                tags["config"],
                tags["network"],
                tags["topology"],
                tags["policy"],
                gv,
                rv,
            )
            yield uid, tags, RepResult(
                granularity=gv, rep=rv, faultfree_norm=faultfree, metrics=metrics
            )

    def result(self, unit_id: str) -> RepResult:
        with self._lock:
            if unit_id in self._results:
                return self._results[unit_id]
            ci, uj = self._ensure_id_map()[unit_id]
        for k, (_, _, result) in enumerate(self._chunk_unit_results(ci)):
            if k == uj:
                return result
        raise KeyError(unit_id)  # pragma: no cover - map and chunk disagree

    def results(self) -> dict[str, RepResult]:
        """Materialize everything — chunk by chunk, then the tail.

        The compatibility surface ``CampaignResult.from_store`` uses;
        million-row consumers should stream :meth:`iter_rows` or the
        ``series_values`` fast paths instead.
        """
        with self._lock:
            n_chunks = len(self._chunks)
            tail = dict(self._results)
        out: dict[str, RepResult] = {}
        for ci in range(n_chunks):
            for uid, _, result in self._chunk_unit_results(ci):
                out[uid] = result
        out.update(tail)
        return out

    def rep_rows(self) -> list[dict]:
        rows = list(self.iter_rows())
        rows.sort(key=canonical_row_key)
        return rows

    # ----------------------------------------------------- streaming queries

    def _chunk_pruned(self, meta: ChunkMeta, where: Optional[Mapping]) -> bool:
        """True when chunk-level stats prove no row can match ``where``.

        Conservative by construction: dictionary membership for the tag
        columns, min/max bounds for granularity/rep.  Metric columns
        carry no stats (NaN makes bounds lie), so they never prune.
        """
        if not where:
            return False
        for key, want in where.items():
            if key in DICT_COLUMNS:
                if not any(_matches_value(v, want) for v in meta.dicts[key]):
                    return True
            elif key in ("granularity", "rep"):
                lo, hi = (
                    (meta.g_min, meta.g_max)
                    if key == "granularity"
                    else (meta.rep_min, meta.rep_max)
                )
                cands = (
                    want
                    if isinstance(want, (list, tuple, set, frozenset))
                    else (want,)
                )
                if not any(
                    isinstance(v, (int, float)) and lo <= v <= hi for v in cands
                ):
                    return True
        return False

    def _numeric_mask(
        self, arr: np.ndarray, want, none_as_nan: bool
    ) -> np.ndarray:
        """Row mask for a numeric column under one ``where`` entry."""
        cands = (
            list(want) if isinstance(want, (list, tuple, set, frozenset)) else [want]
        )
        mask = np.zeros(len(arr), dtype=bool)
        for v in cands:
            if v is None:
                if none_as_nan:
                    mask |= np.isnan(arr)
            elif isinstance(v, (int, float)):
                mask |= arr == v
            # any other type can never equal a float; contributes nothing
        return mask

    def _where_mask(
        self, npz, meta: ChunkMeta, where: Optional[Mapping]
    ) -> Union[None, bool, np.ndarray]:
        """Row-level mask for ``where`` (None = all rows, False = none)."""
        if not where:
            return None
        mask: Optional[np.ndarray] = None
        for key, want in where.items():
            if key in DICT_COLUMNS:
                values = meta.dicts[key]
                wanted = [
                    i for i, v in enumerate(values) if _matches_value(v, want)
                ]
                if not wanted:
                    return False
                if len(wanted) == len(values):
                    continue
                m = np.isin(
                    np.asarray(npz[f"{key}_codes"]),
                    np.asarray(wanted, dtype=np.uint32),
                )
            elif key in ("granularity", "rep", "faultfree_norm"):
                m = self._numeric_mask(
                    np.asarray(npz[key]), want, none_as_nan=False
                )
            elif key in meta.metric_names:
                k = meta.metric_names.index(key)
                m = self._numeric_mask(
                    np.asarray(npz[f"metric_{k}"]), want, none_as_nan=True
                )
            else:
                # Unknown column: every row's value is None (row_matches
                # uses .get), so the filter is all-or-nothing.
                if not _matches_value(None, want):
                    return False
                continue
            if not m.any():
                return False
            mask = m if mask is None else (mask & m)
        return mask

    def _selected_rows(
        self, npz, meta: ChunkMeta, where: Optional[Mapping]
    ) -> Optional[np.ndarray]:
        mask = self._where_mask(npz, meta, where)
        if mask is False:
            return None
        idx = np.flatnonzero(mask) if mask is not None else np.arange(meta.rows)
        return idx if idx.size else None

    def iter_rows(
        self,
        where: Optional[Mapping] = None,
        columns: Optional[Sequence[str]] = None,
    ) -> Iterator[dict]:
        """Stream rows with predicate pushdown: chunks that cannot match
        are never opened, rows are selected by NumPy masks, and only the
        projected columns are decoded."""
        with self._lock:
            n_chunks = len(self._chunks)
            tail = [(dict(self._tags[u]), self._results[u]) for u in self._order]
        for ci in range(n_chunks):
            yield from self._chunk_row_iter(ci, where, columns)
        for tags, result in tail:
            for row in flatten_rep_result(tags, result):
                if row_matches(row, where):
                    yield project_row(row, columns)

    def _chunk_row_iter(
        self,
        ci: int,
        where: Optional[Mapping],
        columns: Optional[Sequence[str]],
    ) -> Iterator[dict]:
        meta = self._chunks[ci]
        if self._chunk_pruned(meta, where):
            return
        with np.load(self._chunk_path(meta)) as npz:
            idx = self._selected_rows(npz, meta, where)
            if idx is None:
                return
            wanted = (
                tuple(columns)
                if columns is not None
                else TAG_COLUMNS
                + ("granularity", "rep", "algorithm", "faultfree_norm")
                + meta.metric_names
            )
            cols: list[tuple[str, str, object]] = []
            for name in wanted:
                if name in DICT_COLUMNS:
                    cols.append(
                        (name, "dict", (npz[f"{name}_codes"][idx], meta.dicts[name]))
                    )
                elif name == "granularity":
                    cols.append(
                        (
                            name,
                            "gran",
                            (
                                npz["granularity"][idx],
                                _granularity_flags(npz, meta.rows)[idx],
                            ),
                        )
                    )
                elif name == "rep":
                    cols.append((name, "int", npz["rep"][idx]))
                elif name == "faultfree_norm":
                    cols.append((name, "float", npz["faultfree_norm"][idx]))
                elif name in meta.metric_names:
                    k = meta.metric_names.index(name)
                    cols.append((name, "metric", npz[f"metric_{k}"][idx]))
                else:
                    raise KeyError(name)
        for i in range(len(idx)):
            row: dict = {}
            for name, kind, data in cols:
                if kind == "dict":
                    codes, values = data
                    row[name] = values[int(codes[i])]
                elif kind == "gran":
                    gdata, gflags = data
                    row[name] = _granularity_value(gdata[i], int(gflags[i]))
                elif kind == "float":
                    row[name] = float(data[i])
                elif kind == "int":
                    row[name] = int(data[i])
                else:
                    v = data[i]
                    row[name] = None if np.isnan(v) else float(v)
            yield row

    def _value_column(self, npz, meta: ChunkMeta, metric: str) -> np.ndarray:
        if metric in FIXED_NUMERIC:
            return np.asarray(npz[metric], dtype=np.float64)
        if metric in meta.metric_names:
            k = meta.metric_names.index(metric)
            return np.asarray(npz[f"metric_{k}"], dtype=np.float64)
        raise KeyError(metric)

    def _scan_series(
        self,
        algorithms: Sequence[str],
        metric: str,
        where: Optional[Mapping],
    ):
        """All matching (scenario, g, rep, algorithm, value) as arrays.

        ``None`` metric values surface as NaN (exactly what the generic
        per-row path produces for ``rep_series``).  Scenario combos are
        interned into ``combo_table`` so callers can order by the Python
        string tuples — NumPy never compares the strings itself.
        """
        combo_index: dict[tuple, int] = {}
        combo_table: list[tuple] = []
        cid_parts, g_parts, rep_parts, aidx_parts, val_parts = [], [], [], [], []
        with self._lock:
            n_chunks = len(self._chunks)
            tail = [(dict(self._tags[u]), self._results[u]) for u in self._order]
        for ci in range(n_chunks):
            meta = self._chunks[ci]
            if self._chunk_pruned(meta, where):
                continue
            algo_values = meta.dicts["algorithm"]
            if not any(a in algo_values for a in algorithms):
                continue
            with np.load(self._chunk_path(meta)) as npz:
                mask = self._where_mask(npz, meta, where)
                if mask is False:
                    continue
                algo_codes = np.asarray(npz["algorithm_codes"])
                # -1 for algorithms outside the requested set; the mask
                # below removes those rows before the lut is consulted
                lut = np.full(len(algo_values), -1, dtype=np.int64)
                for i, a in enumerate(algorithms):
                    if a in algo_values:
                        lut[algo_values.index(a)] = i
                amask = lut[algo_codes] >= 0
                mask = amask if mask is None else (mask & amask)
                idx = np.flatnonzero(mask)
                if not idx.size:
                    continue
                val = self._value_column(npz, meta, metric)[idx]
                stacked = np.stack(
                    [np.asarray(npz[f"{c}_codes"]) for c in TAG_COLUMNS], axis=1
                )[idx]
                g_parts.append(np.asarray(npz["granularity"])[idx])
                rep_parts.append(np.asarray(npz["rep"])[idx])
            combos, inverse = np.unique(stacked, axis=0, return_inverse=True)
            inverse = np.asarray(inverse).ravel()  # 2-D on some NumPy 2.x
            remap = np.empty(len(combos), dtype=np.int64)
            for j in range(len(combos)):
                t = tuple(
                    meta.dicts[c][int(combos[j][k])]
                    for k, c in enumerate(TAG_COLUMNS)
                )
                cid = combo_index.get(t)
                if cid is None:
                    cid = len(combo_table)
                    combo_index[t] = cid
                    combo_table.append(t)
                remap[j] = cid
            cid_parts.append(remap[inverse])
            aidx_parts.append(lut[algo_codes[idx]])
            val_parts.append(val)
        # the tail: plain per-row Python, it is at most one chunk long
        t_cid, t_g, t_rep, t_aidx, t_val = [], [], [], [], []
        for tags, result in tail:
            for row in flatten_rep_result(tags, result):
                if row["algorithm"] not in algorithms:
                    continue
                if not row_matches(row, where):
                    continue
                t = tuple(tags[c] for c in TAG_COLUMNS)
                cid = combo_index.get(t)
                if cid is None:
                    cid = len(combo_table)
                    combo_index[t] = cid
                    combo_table.append(t)
                t_cid.append(cid)
                t_g.append(row["granularity"])
                t_rep.append(row["rep"])
                t_aidx.append(algorithms.index(row["algorithm"]))
                v = row[metric]
                t_val.append(math.nan if v is None else float(v))
        if t_cid:
            cid_parts.append(np.asarray(t_cid, dtype=np.int64))
            g_parts.append(np.asarray(t_g, dtype=np.float64))
            rep_parts.append(np.asarray(t_rep, dtype=np.int64))
            aidx_parts.append(np.asarray(t_aidx, dtype=np.int64))
            val_parts.append(np.asarray(t_val, dtype=np.float64))
        if not cid_parts:
            empty_i = np.empty(0, dtype=np.int64)
            empty_f = np.empty(0, dtype=np.float64)
            return empty_i, combo_table, empty_f, empty_i, empty_i, empty_f
        return (
            np.concatenate(cid_parts),
            combo_table,
            np.concatenate(g_parts).astype(np.float64),
            np.concatenate(rep_parts).astype(np.int64),
            np.concatenate(aidx_parts),
            np.concatenate(val_parts).astype(np.float64),
        )

    @staticmethod
    def _combo_ranks(combo_table: list[tuple]) -> np.ndarray:
        """combo id -> rank under Python tuple ordering (the order the
        generic path's ``sorted(_instance_key(row))`` produces)."""
        rank = np.empty(len(combo_table), dtype=np.int64)
        for r, j in enumerate(
            sorted(range(len(combo_table)), key=lambda j: combo_table[j])
        ):
            rank[j] = r
        return rank

    def series_values(
        self,
        algorithm: str,
        metric: str = "norm_latency",
        where: Optional[Mapping] = None,
    ) -> list[float]:
        """Vectorized ``stats.rep_series``: values for one algorithm,
        ordered by (scenario, granularity, rep), None as NaN."""
        cids, combos, g, rep, _, val = self._scan_series(
            [algorithm], metric, where
        )
        if not cids.size:
            return []
        order = np.lexsort((rep, g, self._combo_ranks(combos)[cids]))
        return val[order].tolist()

    def paired_series_values(
        self,
        algo_a: str,
        algo_b: str,
        metric: str = "norm_latency",
        where: Optional[Mapping] = None,
    ) -> tuple[list[float], list[float]]:
        """Vectorized ``stats.paired_rep_series``: instance-aligned value
        pairs, instances where either side is None dropped, ordered by
        (scenario, granularity, rep)."""
        cids, combos, g, rep, aidx, val = self._scan_series(
            [algo_a, algo_b], metric, where
        )
        keep = ~np.isnan(val)
        cids, g, rep, aidx, val = (
            cids[keep],
            g[keep],
            rep[keep],
            aidx[keep],
            val[keep],
        )
        a_out: list[float] = []
        b_out: list[float] = []
        for j in sorted(range(len(combos)), key=lambda j: combos[j]):
            cmask = cids == j
            if not cmask.any():
                continue
            ma = cmask & (aidx == 0)
            mb = cmask & (aidx == 1)
            ga, ra, va = g[ma], rep[ma], val[ma]
            gb, rb, vb = g[mb], rep[mb], val[mb]
            for gv in np.unique(np.concatenate([ga, gb])):
                sa = np.flatnonzero(ga == gv)
                sb = np.flatnonzero(gb == gv)
                if not sa.size or not sb.size:
                    continue
                oa = sa[np.argsort(ra[sa])]
                ob = sb[np.argsort(rb[sb])]
                _, ia, ib = np.intersect1d(
                    ra[oa], rb[ob], assume_unique=True, return_indices=True
                )
                a_out.extend(va[oa][ia].tolist())
                b_out.extend(vb[ob][ib].tolist())
        return a_out, b_out

    def scenario_algorithms(self) -> tuple[dict[str, dict], list[str]]:
        """Scenario keys and algorithm order for ``campaign_comparison``.

        Returns (``{scenario_key: where_tags}``, algorithms ordered by
        first appearance in canonically-sorted rows) without flattening
        any rows — each algorithm's minimal (scenario, g, rep) instance
        is found per chunk with a lexsort and compared as Python tuples.
        """
        scenarios: dict[str, dict] = {}
        best: dict[str, tuple] = {}
        with self._lock:
            n_chunks = len(self._chunks)
            tail = [(dict(self._tags[u]), self._results[u]) for u in self._order]
        for ci in range(n_chunks):
            meta = self._chunks[ci]
            with np.load(self._chunk_path(meta)) as npz:
                stacked = np.stack(
                    [np.asarray(npz[f"{c}_codes"]) for c in TAG_COLUMNS], axis=1
                )
                algo_codes = np.asarray(npz["algorithm_codes"])
                g = np.asarray(npz["granularity"])
                rep = np.asarray(npz["rep"])
            combos, inverse = np.unique(stacked, axis=0, return_inverse=True)
            inverse = np.asarray(inverse).ravel()  # 2-D on some NumPy 2.x
            tuples = [
                tuple(
                    meta.dicts[c][int(combos[j][k])]
                    for k, c in enumerate(TAG_COLUMNS)
                )
                for j in range(len(combos))
            ]
            for t in tuples:
                scenarios.setdefault("/".join(t), dict(zip(TAG_COLUMNS, t)))
            local_rank = np.empty(len(tuples), dtype=np.int64)
            for r, j in enumerate(
                sorted(range(len(tuples)), key=lambda j: tuples[j])
            ):
                local_rank[j] = r
            order = np.lexsort((rep, g, local_rank[inverse]))
            codes_sorted = algo_codes[order]
            uniq, first = np.unique(codes_sorted, return_index=True)
            for code, pos in zip(uniq, first):
                name = meta.dicts["algorithm"][int(code)]
                i = int(order[int(pos)])
                cand = tuples[int(inverse[i])] + (float(g[i]), int(rep[i]))
                if name not in best or cand < best[name]:
                    best[name] = cand
        for tags, result in tail:
            t = tuple(tags[c] for c in TAG_COLUMNS)
            scenarios.setdefault("/".join(t), dict(zip(TAG_COLUMNS, t)))
            for algo in result.metrics:
                cand = t + (float(result.granularity), int(result.rep))
                if algo not in best or cand < best[algo]:
                    best[algo] = cand
        algorithms = sorted(best, key=lambda a: best[a] + (a,))
        return scenarios, algorithms
