"""Seeded DAG arrival processes for online campaigns.

An *arrival process* turns one rep of an online campaign into a job
stream: a deterministic sequence of :class:`ArrivalEvent`s — ``(time,
graph, priority)`` — drawn entirely from labelled child seeds of the
spec seed, so the same spec replays the same workload on every executor.

Process kinds live in the :data:`ARRIVAL_PROCESSES` registry (the same
plug-in pattern as topologies and schedulers): ``"poisson"`` draws
exponential inter-arrival gaps at the point's arrival rate, ``"uniform"``
draws gaps uniformly in ``[0.5/rate, 1.5/rate]``, and ``"trace"``
replays explicit arrival instants (and optional priorities) recorded in
the spec — the mechanism behind bit-identical trace replay: a recorded
campaign's trace re-runs as a ``"trace"`` spec and regenerates the very
same job graphs, because graph draws are seeded per job index, not per
process kind.

The arrival *rate* is not a spec field: online campaigns sweep it on the
``granularities`` axis (one data point per rate), so stores, unit ids,
and resume work unchanged.  The per-job scheduling granularity knob
moves into :attr:`ArrivalSpec.granularity`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Mapping, Optional

import numpy as np

from repro.dag.graph import TaskGraph
from repro.dag.generators import random_dag
from repro.utils.errors import CampaignConfigError
from repro.utils.rng import RngStream

#: arrival-process draw functions:
#: ``name -> draw(spec, rate, rng) -> (times, priorities_or_None)``
ARRIVAL_PROCESSES: dict[str, Callable] = {}


def arrival_process_names() -> tuple[str, ...]:
    """Registered arrival-process kinds (``arrival_process.kind``)."""
    return tuple(sorted(ARRIVAL_PROCESSES))


def register_arrival_process(
    name: str, draw: Callable, *, overwrite: bool = False
) -> Callable:
    """Register an arrival-process draw function under ``name``.

    ``draw(spec, rate, rng)`` must return ``(times, priorities)`` —
    ``times`` a nondecreasing sequence of nonnegative arrival instants
    (one per job) and ``priorities`` a same-length sequence of integers
    or ``None`` for all-zero.  Registered kinds become valid
    ``arrival_process.kind`` values in campaign specs.  Returns ``draw``
    so it can be a decorator.
    """
    from repro.utils.registry import check_registration

    check_registration(
        "arrival process", name, name in ARRIVAL_PROCESSES, overwrite
    )
    ARRIVAL_PROCESSES[name] = draw
    return draw


@dataclass(frozen=True)
class ArrivalEvent:
    """One job of an online rep: a DAG arriving at ``time``.

    Jobs are numbered in arrival order (``index``); higher ``priority``
    jobs are dispatched first among the queued.
    """

    index: int
    time: float
    priority: int
    graph: TaskGraph


@dataclass(frozen=True)
class ArrivalSpec:
    """Serializable description of an online workload's job stream.

    ``kind`` names a registered arrival process; ``jobs`` is the stream
    length per rep (for ``"trace"`` the trace length wins);
    ``granularity`` is the per-job granularity knob the offline sweep
    axis used to carry (the sweep axis now carries the arrival rate);
    ``width`` caps how many processors one job may be granted (``0`` =
    auto: half the platform, at least ``epsilon + 1``);
    ``priority_levels > 1`` draws each job's priority uniformly from
    ``0..levels-1``; ``trace``/``priorities`` are the explicit instants
    of a ``"trace"`` replay.  Round-trips through JSON/TOML as one flat
    table; unknown keys are rejected loudly.
    """

    kind: str = "poisson"
    jobs: int = 10
    granularity: float = 1.0
    width: int = 0
    priority_levels: int = 1
    trace: tuple[float, ...] = ()
    priorities: tuple[int, ...] = ()

    _KNOWN = frozenset(
        {
            "kind",
            "jobs",
            "granularity",
            "width",
            "priority_levels",
            "trace",
            "priorities",
        }
    )

    def __post_init__(self) -> None:
        object.__setattr__(self, "trace", tuple(float(t) for t in self.trace))
        object.__setattr__(
            self, "priorities", tuple(int(p) for p in self.priorities)
        )
        if self.kind not in ARRIVAL_PROCESSES:
            raise CampaignConfigError(
                f"unknown arrival process {self.kind!r} (key "
                f"'arrival_process.kind'); registered: "
                f"{', '.join(arrival_process_names())}",
                key="arrival_process.kind",
            )
        for field_name, minimum in (
            ("jobs", 1),
            ("width", 0),
            ("priority_levels", 1),
        ):
            v = getattr(self, field_name)
            if isinstance(v, bool) or not isinstance(v, int) or v < minimum:
                raise CampaignConfigError(
                    f"arrival_process.{field_name} must be an integer "
                    f">= {minimum}, got {v!r}",
                    key=f"arrival_process.{field_name}",
                )
        g = self.granularity
        if not isinstance(g, (int, float)) or not math.isfinite(g) or g <= 0:
            raise CampaignConfigError(
                f"arrival_process.granularity must be a positive finite "
                f"number, got {g!r}",
                key="arrival_process.granularity",
            )
        object.__setattr__(self, "granularity", float(g))
        if self.kind == "trace":
            if not self.trace:
                raise CampaignConfigError(
                    "arrival_process.kind 'trace' needs a non-empty "
                    "arrival_process.trace of arrival instants",
                    key="arrival_process.trace",
                )
        elif self.trace or self.priorities:
            raise CampaignConfigError(
                f"arrival_process.trace/priorities are only valid with "
                f"kind 'trace', not {self.kind!r}",
                key="arrival_process.trace",
            )
        if any(
            t < 0 or not math.isfinite(t) for t in self.trace
        ) or any(b < a for a, b in zip(self.trace, self.trace[1:])):
            raise CampaignConfigError(
                "arrival_process.trace must be nondecreasing, finite, "
                "and nonnegative",
                key="arrival_process.trace",
            )
        if len(self.priorities) > len(self.trace):
            raise CampaignConfigError(
                "arrival_process.priorities is longer than the trace",
                key="arrival_process.priorities",
            )

    @property
    def num_jobs(self) -> int:
        """Jobs per rep (the trace length for ``"trace"``)."""
        return len(self.trace) if self.kind == "trace" else self.jobs

    def to_dict(self) -> dict:
        """Canonical JSON/TOML-ready mapping (defaults omitted)."""
        out: dict = {"kind": self.kind}
        if self.kind != "trace" and self.jobs != 10:
            out["jobs"] = self.jobs
        if self.granularity != 1.0:
            out["granularity"] = self.granularity
        if self.width:
            out["width"] = self.width
        if self.priority_levels != 1:
            out["priority_levels"] = self.priority_levels
        if self.trace:
            out["trace"] = list(self.trace)
        if self.priorities:
            out["priorities"] = list(self.priorities)
        return out

    @classmethod
    def from_dict(
        cls, data: Optional[Mapping], strict: bool = True
    ) -> Optional["ArrivalSpec"]:
        """Rebuild from :meth:`to_dict` output (``None`` passes through).

        ``strict`` rejects unknown keys (spec files); store manifests
        load tolerantly so rows written by newer versions stay readable.
        """
        if data is None:
            return None
        if not isinstance(data, Mapping):
            raise CampaignConfigError(
                f"'arrival_process' must be a table/object, "
                f"got {type(data).__name__}",
                key="arrival_process",
            )
        unknown = sorted(set(data) - cls._KNOWN)
        if unknown and strict:
            keys = ", ".join(repr(k) for k in unknown)
            raise CampaignConfigError(
                f"unknown key(s) {keys} in arrival_process spec; known "
                f"keys: {', '.join(sorted(cls._KNOWN))}",
                key=f"arrival_process.{unknown[0]}",
            )
        kwargs = {k: v for k, v in data.items() if k in cls._KNOWN}
        for key in ("trace", "priorities"):
            if key in kwargs:
                if not isinstance(kwargs[key], (list, tuple)):
                    raise CampaignConfigError(
                        f"arrival_process.{key} must be an array, "
                        f"got {kwargs[key]!r}",
                        key=f"arrival_process.{key}",
                    )
                kwargs[key] = tuple(kwargs[key])
        return cls(**kwargs)


# ----------------------------------------------------------------------
# Built-in processes
# ----------------------------------------------------------------------


def _draw_poisson(spec: ArrivalSpec, rate: float, rng: np.random.Generator):
    gaps = rng.exponential(scale=1.0 / rate, size=spec.num_jobs)
    return np.cumsum(gaps), None


def _draw_uniform(spec: ArrivalSpec, rate: float, rng: np.random.Generator):
    gaps = rng.uniform(0.5 / rate, 1.5 / rate, size=spec.num_jobs)
    return np.cumsum(gaps), None


def _draw_trace(spec: ArrivalSpec, rate: float, rng: np.random.Generator):
    pad = (0,) * (len(spec.trace) - len(spec.priorities))
    return spec.trace, spec.priorities + pad


if "poisson" not in ARRIVAL_PROCESSES:
    register_arrival_process("poisson", _draw_poisson)
    register_arrival_process("uniform", _draw_uniform)
    register_arrival_process("trace", _draw_trace)


# ----------------------------------------------------------------------
# Event generation
# ----------------------------------------------------------------------


def generate_arrivals(
    spec: ArrivalSpec,
    rate: float,
    rep: int,
    *,
    base_seed: int,
    name: str,
    task_range: tuple[int, int],
    degree_range: tuple[int, int],
    volume_range: tuple[float, float],
) -> tuple[ArrivalEvent, ...]:
    """The job stream of one online rep (pure in its arguments).

    Arrival instants and priorities come from the ``("arrival", name,
    rate, rep)`` child seed; job ``j``'s graph from ``("job", name,
    rate, rep, j)`` — independent of the process kind, so a ``"trace"``
    spec recorded from a live run regenerates bit-identical graphs and
    the replay *is* the original workload.
    """
    if not (isinstance(rate, (int, float)) and rate > 0):
        raise CampaignConfigError(
            f"online campaigns sweep the arrival rate on the granularity "
            f"axis; rates must be positive, got {rate!r}",
            key="config.granularities",
        )
    stream = RngStream(base_seed)
    a_rng = stream.rng("arrival", name, rate, rep)
    times, priorities = ARRIVAL_PROCESSES[spec.kind](spec, float(rate), a_rng)
    if priorities is None:
        if spec.priority_levels > 1:
            priorities = a_rng.integers(0, spec.priority_levels, size=len(times))
        else:
            priorities = np.zeros(len(times), dtype=int)
    events = []
    for j, (t, prio) in enumerate(zip(times, priorities)):
        g_rng = stream.rng("job", name, rate, rep, j)
        v = int(g_rng.integers(task_range[0], task_range[1] + 1))
        graph = random_dag(
            v,
            degree_range=degree_range,
            volume_range=volume_range,
            rng=g_rng,
        )
        events.append(
            ArrivalEvent(
                index=j, time=float(t), priority=int(prio), graph=graph
            )
        )
    return tuple(events)


def recorded_trace(events: tuple[ArrivalEvent, ...], spec: ArrivalSpec) -> ArrivalSpec:
    """The ``"trace"`` spec that replays ``events`` bit-identically.

    Running the returned spec at the same config name/seed/rate sweeps
    regenerates the same graphs (job draws are seeded per index) and
    replays the recorded instants and priorities verbatim.
    """
    return ArrivalSpec(
        kind="trace",
        granularity=spec.granularity,
        width=spec.width,
        trace=tuple(e.time for e in events),
        priorities=tuple(e.priority for e in events),
    )
