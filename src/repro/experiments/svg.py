"""Self-contained SVG/HTML rendering of campaign results.

matplotlib is not a dependency of this library, so figures are drawn as
hand-rolled SVG line charts: one chart per panel, same series as the
paper's plots, embedded in a single HTML file.  The output is what you put
next to the paper's PDF to compare curve shapes by eye.
"""

from __future__ import annotations

import html
import math
from pathlib import Path
from typing import Optional, Sequence

from repro.experiments.harness import CampaignResult

# A colorblind-friendly palette (Okabe-Ito).
_COLORS = [
    "#0072B2", "#E69F00", "#009E73", "#D55E00",
    "#CC79A7", "#56B4E9", "#F0E442", "#000000",
]
_DASHES = ["", "6,3", "2,2", "8,3,2,3"]


def _nice_ticks(lo: float, hi: float, count: int = 5) -> list[float]:
    if not math.isfinite(lo) or not math.isfinite(hi) or hi <= lo:
        return [lo]
    raw = (hi - lo) / max(count - 1, 1)
    mag = 10 ** math.floor(math.log10(raw))
    for mult in (1, 2, 2.5, 5, 10):
        step = mult * mag
        if step >= raw:
            break
    start = math.floor(lo / step) * step
    ticks = []
    t = start
    while t <= hi + step * 0.5:
        if t >= lo - step * 0.5:
            ticks.append(round(t, 10))
        t += step
    return ticks


class SvgLineChart:
    """A minimal multi-series line chart with legend and axes."""

    def __init__(
        self,
        title: str,
        xlabel: str,
        ylabel: str,
        width: int = 520,
        height: int = 360,
    ) -> None:
        self.title = title
        self.xlabel = xlabel
        self.ylabel = ylabel
        self.width = width
        self.height = height
        self.series: list[tuple[str, list[float], list[float]]] = []

    def add_series(self, name: str, xs: Sequence[float], ys: Sequence[float]) -> None:
        pts_x, pts_y = [], []
        for x, y in zip(xs, ys):
            if math.isfinite(float(y)):
                pts_x.append(float(x))
                pts_y.append(float(y))
        if pts_x:
            self.series.append((name, pts_x, pts_y))

    def render(self) -> str:
        margin_l, margin_r, margin_t, margin_b = 60, 160, 36, 46
        plot_w = self.width - margin_l - margin_r
        plot_h = self.height - margin_t - margin_b
        all_x = [x for _n, xs, _ys in self.series for x in xs]
        all_y = [y for _n, _xs, ys in self.series for y in ys]
        if not all_x:
            return f'<svg width="{self.width}" height="{self.height}"></svg>'
        x_lo, x_hi = min(all_x), max(all_x)
        y_lo, y_hi = min(all_y), max(all_y)
        y_lo = min(y_lo, 0.0) if y_lo > 0 and y_lo < 0.2 * y_hi else y_lo
        if x_hi == x_lo:
            x_hi = x_lo + 1
        if y_hi == y_lo:
            y_hi = y_lo + 1
        pad = 0.05 * (y_hi - y_lo)
        y_lo, y_hi = y_lo - pad, y_hi + pad

        def sx(x: float) -> float:
            return margin_l + (x - x_lo) / (x_hi - x_lo) * plot_w

        def sy(y: float) -> float:
            return margin_t + plot_h - (y - y_lo) / (y_hi - y_lo) * plot_h

        parts = [
            f'<svg xmlns="http://www.w3.org/2000/svg" width="{self.width}" '
            f'height="{self.height}" font-family="sans-serif" font-size="11">',
            f'<text x="{margin_l + plot_w / 2}" y="16" text-anchor="middle" '
            f'font-size="13" font-weight="bold">{html.escape(self.title)}</text>',
            f'<rect x="{margin_l}" y="{margin_t}" width="{plot_w}" '
            f'height="{plot_h}" fill="none" stroke="#888"/>',
        ]
        for t in _nice_ticks(x_lo, x_hi):
            parts.append(
                f'<line x1="{sx(t):.1f}" y1="{margin_t + plot_h}" x2="{sx(t):.1f}" '
                f'y2="{margin_t + plot_h + 4}" stroke="#888"/>'
                f'<text x="{sx(t):.1f}" y="{margin_t + plot_h + 16}" '
                f'text-anchor="middle">{t:g}</text>'
            )
        for t in _nice_ticks(y_lo, y_hi):
            parts.append(
                f'<line x1="{margin_l - 4}" y1="{sy(t):.1f}" x2="{margin_l + plot_w}" '
                f'y2="{sy(t):.1f}" stroke="#eee"/>'
                f'<text x="{margin_l - 8}" y="{sy(t) + 4:.1f}" '
                f'text-anchor="end">{t:g}</text>'
            )
        parts.append(
            f'<text x="{margin_l + plot_w / 2}" y="{self.height - 8}" '
            f'text-anchor="middle">{html.escape(self.xlabel)}</text>'
        )
        parts.append(
            f'<text x="14" y="{margin_t + plot_h / 2}" text-anchor="middle" '
            f'transform="rotate(-90 14 {margin_t + plot_h / 2})">'
            f"{html.escape(self.ylabel)}</text>"
        )
        for i, (name, xs, ys) in enumerate(self.series):
            color = _COLORS[i % len(_COLORS)]
            dash = _DASHES[(i // len(_COLORS)) % len(_DASHES)]
            pts = " ".join(f"{sx(x):.1f},{sy(y):.1f}" for x, y in zip(xs, ys))
            dash_attr = f' stroke-dasharray="{dash}"' if dash else ""
            parts.append(
                f'<polyline points="{pts}" fill="none" stroke="{color}" '
                f'stroke-width="1.8"{dash_attr}/>'
            )
            for x, y in zip(xs, ys):
                parts.append(
                    f'<circle cx="{sx(x):.1f}" cy="{sy(y):.1f}" r="2.4" '
                    f'fill="{color}"/>'
                )
            ly = margin_t + 14 * i
            lx = margin_l + plot_w + 10
            parts.append(
                f'<line x1="{lx}" y1="{ly + 4}" x2="{lx + 18}" y2="{ly + 4}" '
                f'stroke="{color}" stroke-width="2"{dash_attr}/>'
                f'<text x="{lx + 22}" y="{ly + 8}">{html.escape(name)}</text>'
            )
        parts.append("</svg>")
        return "".join(parts)


def campaign_to_charts(result: CampaignResult) -> list[SvgLineChart]:
    """The three paper panels of one campaign as SVG charts."""
    cfg = result.config
    # From the points, not cfg.granularities: a partial store (killed
    # campaign, out-of-order executor) can be missing a mid-sweep
    # granularity entirely, and series() has one value per *point* — a
    # cfg-based axis would silently shift later points left.
    xs = [point.granularity for point in result.points]
    c = cfg.crashes

    a = SvgLineChart(
        f"{cfg.name} (a): normalized latency, bounds (m={cfg.num_procs}, eps={cfg.epsilon})",
        "granularity", "normalized latency",
    )
    for algo in cfg.algorithms:
        a.add_series(f"{algo} 0 crash", xs, result.series(f"{algo}_latency0"))
        a.add_series(f"{algo} UB", xs, result.series(f"{algo}_upper"))
    a.add_series("FaultFree-caft", xs, result.series("faultfree_caft"))
    a.add_series("FaultFree-ftbar", xs, result.series("faultfree_ftbar"))

    b = SvgLineChart(
        f"{cfg.name} (b): latency with 0 vs {c} crash(es)",
        "granularity", "normalized latency",
    )
    for algo in cfg.algorithms:
        b.add_series(f"{algo} 0c", xs, result.series(f"{algo}_latency0"))
        b.add_series(f"{algo} {c}c", xs, result.series(f"{algo}_crash"))

    cchart = SvgLineChart(
        f"{cfg.name} (c): average overhead (%)", "granularity", "overhead %"
    )
    for algo in cfg.algorithms:
        cchart.add_series(f"{algo} 0c", xs, result.series(f"{algo}_overhead0"))
        cchart.add_series(f"{algo} {c}c", xs, result.series(f"{algo}_overhead_crash"))

    m = SvgLineChart(
        f"{cfg.name}: committed messages", "granularity", "messages"
    )
    for algo in cfg.algorithms:
        m.add_series(algo, xs, result.series(f"{algo}_messages"))
    return [a, b, cchart, m]


def write_html_report(result: CampaignResult, path: str | Path) -> Path:
    """Write the full figure report (four charts) to a standalone HTML file."""
    charts = campaign_to_charts(result)
    cfg = result.config
    body = "\n".join(f"<div>{chart.render()}</div>" for chart in charts)
    doc = (
        "<!DOCTYPE html><html><head><meta charset='utf-8'>"
        f"<title>{html.escape(cfg.name)}</title></head>"
        f"<body><h1>{html.escape(cfg.name)} — {html.escape(cfg.description)}</h1>"
        f"<p>{cfg.num_graphs} random graphs per point, base seed {cfg.base_seed}.</p>"
        f"{body}</body></html>"
    )
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(doc)
    return path
