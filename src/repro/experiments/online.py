"""Online campaigns: DAGs arriving over time against a shared platform.

The paper's algorithms are offline — one DAG, the whole platform.  This
module turns them into a *serving* scenario: an
:class:`~repro.experiments.arrival.ArrivalSpec` emits a deterministic
job stream (see :mod:`repro.experiments.arrival`), and the
:class:`OnlineHarness` schedules each arriving DAG incrementally against
the platform's **residual** availability — the processors not reserved
by still-running jobs.  Each job yields a :class:`JobRecord` (queueing
delay, response time, makespan, crash survival under the rep's drawn
failure scenario); :func:`run_online_rep` folds a rep's records into the
same :class:`~repro.experiments.harness.RepResult` shape offline reps
produce, so stores, executors, resume, and the conformance matrix run
online campaigns unchanged.

Dispatch policy (deterministic by construction):

* pending jobs are served highest priority first, ties by arrival time
  then index;
* the head job is dispatched as soon as at least ``epsilon + 1``
  processors are free (capped by the grant width), and is granted the
  ``width`` lowest-numbered free processors;
* a job runs on its grant to completion — the grant's sub-platform is
  the delay submatrix, and the job's replication budget degrades to
  ``min(epsilon, granted - 1)`` when the grant is narrow.

For routed configs the sub-platform is the submatrix of the topology's
effective route-delay matrix and jobs schedule against a one-port model
over it — route *sharing* between concurrent jobs is not modelled (the
residual-availability model partitions processors, not links).

The sweep axis: online configs reuse ``granularities`` as the
**arrival-rate** sweep (per-job granularity moves into the arrival
spec), so unit ids, stores, and resume are untouched.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.comm.oneport import OnePortNetwork
from repro.dag.analysis import min_critical_path
from repro.experiments.arrival import ArrivalEvent, generate_arrivals
from repro.experiments.config import ExperimentConfig
from repro.experiments.harness import (
    ALGORITHM_RUNNERS,
    FAULTFREE_RUNNERS,
    RepResult,
    campaign_network,
    generate_topology,
)
from repro.fault.model import FailureScenario, build_failure_model
from repro.fault.simulator import replay
from repro.platform.heterogeneity import (
    range_exec_matrix,
    scale_to_granularity,
    uniform_delay_platform,
)
from repro.platform.instance import ProblemInstance
from repro.platform.platform import Platform
from repro.utils.errors import ExecutionFailedError
from repro.utils.rng import RngStream


@dataclass(frozen=True)
class JobRecord:
    """Outcome of one job of one online rep (one algorithm).

    Times are on the rep's arrival clock; ``procs`` is the grant (global
    processor ids).  ``crash_latency`` is the job's makespan when the
    rep's failure scenario strikes its grant (``None`` when the replay
    did not survive); it equals ``makespan`` for jobs the scenario
    misses.
    """

    index: int
    arrival: float
    start: float
    finish: float
    makespan: float
    priority: int
    procs: tuple[int, ...]
    messages: float
    dedicated: float
    critical_path: float
    crash_latency: Optional[float]

    @property
    def queueing(self) -> float:
        return self.start - self.arrival

    @property
    def response(self) -> float:
        return self.finish - self.arrival

    @property
    def slowdown(self) -> float:
        """Response time over the dedicated fault-free latency (≥ 1-ish)."""
        return self.response / self.dedicated


class OnlineHarness:
    """Incremental scheduler: one rep's job stream on one platform.

    Generates the platform, job stream, per-job costs, and the rep's
    failure scenario once (all from labelled child seeds), then replays
    the event loop per algorithm — every algorithm serves the identical
    workload, so per-algorithm comparisons are paired exactly like the
    offline figures.
    """

    def __init__(self, config: ExperimentConfig, rate: float, rep: int) -> None:
        if config.arrival is None:
            raise ValueError(f"config {config.name!r} has no arrival process")
        self.config = config
        self.rate = float(rate)
        self.rep = rep
        spec = config.arrival
        stream = RngStream(config.base_seed)
        self.topology = generate_topology(config, rate, rep)
        if self.topology is not None:
            self.platform = self.topology.to_platform()
        else:
            self.platform = uniform_delay_platform(
                config.num_procs,
                delay_range=config.delay_range,
                rng=stream.rng("platform", config.name, rate, rep),
            )
        self.events: tuple[ArrivalEvent, ...] = generate_arrivals(
            spec,
            rate,
            rep,
            base_seed=config.base_seed,
            name=config.name,
            task_range=config.task_range,
            degree_range=config.degree_range,
            volume_range=config.volume_range,
        )
        # Per-job execution costs, scaled to the arrival spec's
        # granularity against the full platform so a job's cost scale
        # does not depend on which processors it happens to be granted.
        self._exec_costs = []
        for ev in self.events:
            cost_rng = stream.rng("costs", config.name, rate, rep, ev.index)
            base = cost_rng.uniform(
                config.base_cost_range[0],
                config.base_cost_range[1],
                size=ev.graph.num_tasks,
            )
            exec_cost = range_exec_matrix(
                base,
                config.num_procs,
                heterogeneity=config.heterogeneity,
                rng=cost_rng,
            )
            self._exec_costs.append(
                scale_to_granularity(
                    ev.graph, self.platform, exec_cost, spec.granularity
                )
            )
        model = build_failure_model(
            config.failure, config.num_procs, config.topology
        )
        self.scenario = model.draw_scenario(
            config.num_procs,
            config.crashes,
            stream.rng("crash", config.name, rate, rep),
        )
        m = config.num_procs
        self.width = min(spec.width or max(config.epsilon + 1, m // 2), m)
        self.min_grant = min(self.width, config.epsilon + 1)
        self._algo_seeds = {
            ev.index: stream.seed("algo", config.name, rate, rep, ev.index)
            for ev in self.events
        }

    # ------------------------------------------------------------------
    def _job_model(self, sub_platform: Platform):
        """The communication model one job schedules against its grant."""
        config = self.config
        if config.topology is not None:
            # Effective route delays of the grant; links are not shared
            # across concurrent jobs (see module docstring).
            return OnePortNetwork(sub_platform)
        if config.port_policy != "append":
            return OnePortNetwork(sub_platform, policy=config.port_policy)
        return config.model

    def _schedule_job(self, algorithm: str, ev: ArrivalEvent, grant: tuple[int, ...]):
        """Schedule job ``ev`` on its grant; returns ``(schedule, sub_eps)``."""
        config = self.config
        delay = self.platform.delay_matrix[np.ix_(grant, grant)]
        sub_platform = Platform(delay)
        inst = ProblemInstance(
            ev.graph, sub_platform, self._exec_costs[ev.index][:, grant]
        )
        eps = min(config.epsilon, len(grant) - 1)
        sched = ALGORITHM_RUNNERS[algorithm](
            inst,
            eps,
            self._algo_seeds[ev.index],
            self._job_model(sub_platform),
            config.fast,
        )
        return sched

    def _dedicated(self, algorithm: str, ev: ArrivalEvent) -> tuple[float, float]:
        """Fault-free latency on the whole platform + the job's CP bound."""
        inst = ProblemInstance(
            ev.graph, self.platform, self._exec_costs[ev.index]
        )
        model = campaign_network(self.config, inst, self.topology)
        sched = FAULTFREE_RUNNERS[algorithm](
            inst, self._algo_seeds[ev.index], model, self.config.fast
        )
        return sched.latency(), min_critical_path(inst)

    def _crash_latency(self, sched, grant: tuple[int, ...]) -> Optional[float]:
        """The job's makespan under the rep's scenario (``None`` = died)."""
        failed = set(self.scenario.failed_procs)
        local = [i for i, p in enumerate(grant) if p in failed]
        if not local:
            return sched.latency()
        try:
            return replay(
                sched, FailureScenario.crash_at_start(local)
            ).latency()
        except ExecutionFailedError:
            return None

    # ------------------------------------------------------------------
    def run(self, algorithm: str) -> list[JobRecord]:
        """Serve the whole job stream with ``algorithm`` (in job order)."""
        events = sorted(self.events, key=lambda e: (e.time, e.index))
        by_index = {ev.index: ev for ev in events}
        pending: list[tuple[int, float, int]] = []  # (-prio, arrival, idx)
        running: list[tuple[float, int, tuple[int, ...]]] = []
        free = list(range(self.config.num_procs))
        records: dict[int, JobRecord] = {}
        i = 0
        now = 0.0
        while i < len(events) or pending or running:
            while i < len(events) and events[i].time <= now:
                ev = events[i]
                heapq.heappush(pending, (-ev.priority, ev.time, ev.index))
                i += 1
            while pending and len(free) >= self.min_grant:
                _, _, idx = heapq.heappop(pending)
                ev = by_index[idx]
                free.sort()
                grant = tuple(free[: self.width])
                del free[: self.width]
                sched = self._schedule_job(algorithm, ev, grant)
                makespan = sched.latency()
                finish = now + makespan
                heapq.heappush(running, (finish, idx, grant))
                dedicated, cp = self._dedicated(algorithm, ev)
                records[idx] = JobRecord(
                    index=idx,
                    arrival=ev.time,
                    start=now,
                    finish=finish,
                    makespan=makespan,
                    priority=ev.priority,
                    procs=grant,
                    messages=float(sched.message_count()),
                    dedicated=dedicated,
                    critical_path=cp,
                    crash_latency=self._crash_latency(sched, grant),
                )
            horizon = []
            if i < len(events):
                horizon.append(events[i].time)
            if running:
                horizon.append(running[0][0])
            if not horizon:
                break
            now = max(now, min(horizon))
            while running and running[0][0] <= now:
                _, _, grant = heapq.heappop(running)
                free.extend(grant)
        return [records[idx] for idx in sorted(records)]


# ----------------------------------------------------------------------
# Rep evaluation + aggregation (the online run_rep / PointResult)
# ----------------------------------------------------------------------

#: per-algorithm metric keys of one online rep row (uniform schema —
#: every row carries every key; ``crash_response_mean`` is None when no
#: job survived the rep's failure scenario)
ONLINE_METRICS: tuple[str, ...] = (
    "response_mean",
    "queueing_mean",
    "makespan_mean",
    "slowdown_mean",
    "completion_time",
    "throughput",
    "messages",
    "survived_frac",
    "crash_response_mean",
)


def run_online_rep(
    config: ExperimentConfig, rate: float, rep: int
) -> RepResult:
    """One online work unit: the whole job stream, every algorithm.

    Same purity contract as the offline ``run_rep``: the result is a
    function of ``(config, rate, rep)`` alone, so online campaigns are
    resumable and bit-identical across executors.  ``faultfree_norm`` is
    the mean dedicated (whole-platform, fault-free) latency over the
    job's critical-path bound — the online analogue of the offline
    normalizer.
    """
    harness = OnlineHarness(config, rate, rep)
    faultfree_norm: dict[str, float] = {}
    metrics: dict[str, dict[str, Optional[float]]] = {}
    for name in config.algorithms:
        records = harness.run(name)
        n = len(records)
        completion = max(r.finish for r in records)
        survivors = [r for r in records if r.crash_latency is not None]
        row: dict[str, Optional[float]] = {
            "response_mean": float(np.mean([r.response for r in records])),
            "queueing_mean": float(np.mean([r.queueing for r in records])),
            "makespan_mean": float(np.mean([r.makespan for r in records])),
            "slowdown_mean": float(np.mean([r.slowdown for r in records])),
            "completion_time": completion,
            "throughput": n / completion if completion > 0 else math.nan,
            "messages": float(np.mean([r.messages for r in records])),
            "survived_frac": len(survivors) / n,
            "crash_response_mean": (
                float(
                    np.mean([r.queueing + r.crash_latency for r in survivors])
                )
                if survivors
                else None
            ),
        }
        metrics[name] = row
        faultfree_norm[name] = float(
            np.mean([r.dedicated / r.critical_path for r in records])
        )
    return RepResult(
        granularity=float(rate),
        rep=rep,
        faultfree_norm=faultfree_norm,
        metrics=metrics,
    )


@dataclass
class OnlinePoint:
    """Aggregated metrics of one arrival-rate data point.

    Duck-type compatible with the offline ``PointResult`` where the
    campaign stack needs it (``granularity`` attribute + ``row()``),
    with the arrival rate on the sweep axis.
    """

    granularity: float  # the arrival rate of this point
    per_algorithm: dict[str, dict[str, float]]
    faultfree_norm: dict[str, float]

    @property
    def rate(self) -> float:
        return self.granularity

    def row(self) -> dict[str, float]:
        """Flatten to a CSV-ready mapping (``{algo}_{metric}`` columns)."""
        row: dict[str, float] = {"granularity": self.granularity}
        for algo, point in self.per_algorithm.items():
            for key in ONLINE_METRICS:
                row[f"{algo}_{key}"] = point[key]
        for algo, value in self.faultfree_norm.items():
            row[f"faultfree_{algo}"] = value
        return row


def aggregate_online_point(
    config: ExperimentConfig, rate: float, reps: list[RepResult]
) -> OnlinePoint:
    """Fold per-rep online results (in rep order) into one data point.

    Means of the per-rep means; ``crash_response_mean`` averages the
    reps that had survivors (NaN when none did, matching the offline
    crash columns' missing-value convention).
    """
    per_algo: dict[str, dict[str, float]] = {}
    ff: dict[str, float] = {}
    for name in config.algorithms:
        agg: dict[str, float] = {}
        for key in ONLINE_METRICS:
            values = [
                r.metrics[name][key]
                for r in reps
                if r.metrics[name][key] is not None
            ]
            agg[key] = float(np.mean(values)) if values else math.nan
        per_algo[name] = agg
        ff[name] = float(np.mean([r.faultfree_norm[name] for r in reps]))
    return OnlinePoint(
        granularity=float(rate), per_algorithm=per_algo, faultfree_norm=ff
    )


def check_online_shape(result, reference: str = "caft"):
    """Internal-consistency checks of an online campaign's aggregates.

    The online analogue of ``figures.check_shape``: every check is an
    identity of the harness (not a statistical expectation), so it holds
    at any scale — ``response = queueing + makespan`` per point,
    throughput positivity, and survival fractions inside ``[0, 1]``.
    """
    from repro.experiments.figures import ShapeReport

    checks: dict[str, bool] = {}
    for point in result.points:
        rate = point.granularity
        for algo in result.config.algorithms:
            row = point.per_algorithm[algo]
            resp = row["response_mean"]
            parts = row["queueing_mean"] + row["makespan_mean"]
            checks[f"{algo}@rate={rate:g}: response = queueing + makespan"] = (
                bool(abs(resp - parts) <= 1e-9 * max(1.0, abs(resp)))
            )
            checks[f"{algo}@rate={rate:g}: throughput > 0"] = bool(
                row["throughput"] > 0
            )
            checks[f"{algo}@rate={rate:g}: survived_frac in [0, 1]"] = bool(
                0.0 <= row["survived_frac"] <= 1.0
            )
    return ShapeReport(checks=checks)
