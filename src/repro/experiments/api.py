"""The declarative campaign API: one serializable spec for the whole stack.

Every experiment in this repository is an instance of one shape — sweep
scheduler × network × topology × policy × granularity over N reps and
compare paired metrics.  :class:`CampaignSpec` captures that shape as
*data*: scenario axes, executor, store backend, lease policy, reps and
seeds in one frozen dataclass that round-trips losslessly to JSON and
TOML.  A campaign is therefore a file you can version, diff, ship to a
remote master, and run::

    repro-ftsched campaign run spec.json --override graphs=60

Programmatically the :class:`Campaign` facade drives the existing
grid → executor → store layers::

    spec = CampaignSpec(figure=1, graphs=10,
                        executor=ExecutorSpec(kind="process", workers=4),
                        store=StoreSpec(directory="results/fig1"))
    handle = Campaign(spec).run(progress=print)
    result = handle.result()          # the aggregated CampaignResult
    handle = Campaign(spec).resume()  # finish a killed campaign

Every name a spec mentions — scheduler, network model, topology shape,
executor kind, store backend — resolves through the pluggable
registries in :mod:`repro.experiments.registry`, and every invalid
configuration raises :class:`~repro.utils.errors.CampaignConfigError`
naming the offending key, identically from the API and the CLI.  The
paper's six figures ship as spec files under
``repro/experiments/specs/`` (:func:`figure_spec`), pinned
bit-identical to the historical keyword entry points.
"""

from __future__ import annotations

import json
import tomllib
from dataclasses import dataclass, field, fields, replace
from pathlib import Path
from time import perf_counter
from typing import Callable, Mapping, Optional, Union

from repro.experiments.arrival import ArrivalSpec
from repro.experiments.config import (
    FIGURES,
    PORT_POLICIES,
    TUPLE_FIELDS,
    ExperimentConfig,
)
from repro.fault.model import FailureSpec
from repro.experiments.executors import Executor, LeasePolicy
from repro.experiments.grid import ScenarioGrid
from repro.experiments.harness import CampaignResult
from repro.experiments.registry import (
    EXECUTORS,
    SCHEDULERS,
    STORES,
    network_names,
    topology_names,
)
from repro.experiments.store import RunStore, make_store
from repro.utils.errors import CampaignConfigError

#: where the paper's figure campaigns ship as spec files
SPEC_DIR = Path(__file__).resolve().parent / "specs"

#: current spec schema version (bumped only on incompatible changes)
SPEC_VERSION = 1

#: config tuple fields coerced element-wise when loaded from a spec —
#: granularities written as TOML/JSON integers must still compare (and
#: hash into unit ids) as the floats the in-code configs use
_FLOAT_FIELDS = frozenset(
    {"granularities", "volume_range", "delay_range", "base_cost_range"}
)
_INT_FIELDS = frozenset({"task_range", "degree_range"})


def _unknown_keys(
    given: Mapping, known: frozenset[str], where: str, prefix: str = ""
) -> None:
    unknown = sorted(set(given) - known)
    if unknown:
        keys = ", ".join(repr(k) for k in unknown)
        raise CampaignConfigError(
            f"unknown key(s) {keys} in {where}; "
            f"known keys: {', '.join(sorted(known))}",
            key=prefix + unknown[0],
        )


# --------------------------------------------------------------------- TOML


def _toml_string(value: str) -> str:
    """A TOML basic string: escape quotes, backslashes, and controls.

    Everything else is written literally (TOML files are UTF-8), which —
    unlike JSON's surrogate-pair ``\\uXXXX`` escapes — stays valid for
    astral characters too.
    """
    out = ['"']
    for ch in value:
        if ch == '"':
            out.append('\\"')
        elif ch == "\\":
            out.append("\\\\")
        elif ord(ch) < 0x20 or ord(ch) == 0x7F:
            out.append(f"\\u{ord(ch):04X}")
        else:
            out.append(ch)
    out.append('"')
    return "".join(out)


def _toml_value(value: object) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float):
        return repr(value)  # repr round-trips exactly through tomllib
    if isinstance(value, str):
        return _toml_string(value)
    if isinstance(value, (list, tuple)):
        return "[" + ", ".join(_toml_value(v) for v in value) + "]"
    raise CampaignConfigError(
        f"cannot write {type(value).__name__} value {value!r} to TOML"
    )


def toml_dumps(data: Mapping[str, object]) -> str:
    """Serialize one level of tables + scalar/array values to TOML.

    Exactly the shape :meth:`CampaignSpec.to_dict` produces.  TOML has
    no null, so ``None`` values are omitted — absent keys load back as
    their defaults, which is what ``None`` means in a spec, so the
    round trip stays lossless.
    """
    lines: list[str] = []
    tables: list[tuple[str, Mapping]] = []
    for key, value in data.items():
        if isinstance(value, Mapping):
            tables.append((key, value))
        elif value is not None:
            lines.append(f"{key} = {_toml_value(value)}")
    for key, table in tables:
        lines.append("")
        lines.append(f"[{key}]")
        for sub, value in table.items():
            if isinstance(value, Mapping):
                raise CampaignConfigError(
                    f"campaign specs nest at most one level deep "
                    f"({key}.{sub} is a table)"
                )
            if value is not None:
                lines.append(f"{sub} = {_toml_value(value)}")
    return "\n".join(lines) + "\n"


# ------------------------------------------------------------------- specs


@dataclass(frozen=True)
class ExecutorSpec:
    """Where a campaign's work units run, as serializable data.

    ``kind`` names an entry of the executor registry (``"serial"``,
    ``"process"``, ``"socket"``, ``"service"``, or anything added via
    ``register_executor``); the remaining fields parameterize it.
    ``bind``/``spawn_workers``/``speculate``/``steal`` describe a socket
    master and are an error with any other builtin kind — the fields map
    1:1 onto the CLI's ``--executor/--workers/--bind/--spawn-workers/
    --timeout/--speculate/--steal``.  ``speculate`` (``"off"``, the
    default, or ``"auto"``) duplicates the slowest outstanding units
    near the campaign tail; ``steal`` (``"auto"``, the default, or
    ``"off"``) lets an idle worker take the unstarted remainder of a
    straggler's lease.

    ``kind="service"`` runs the units as a job on a running
    :class:`~repro.experiments.service.CampaignService`: ``address``
    (required, ``"HOST:PORT"``) locates it, ``tenant``/``priority``
    set the job's fair-share identity, and ``timeout`` is the client
    connection's no-activity deadline.
    """

    kind: str = "serial"
    workers: Optional[int] = None
    bind: Optional[str] = None
    spawn_workers: Optional[int] = None
    timeout: Optional[float] = None
    speculate: Optional[str] = None
    steal: Optional[str] = None
    address: Optional[str] = None
    tenant: Optional[str] = None
    priority: Optional[int] = None

    _KNOWN = frozenset(
        {"kind", "workers", "bind", "spawn_workers", "timeout",
         "speculate", "steal", "address", "tenant", "priority"}
    )
    _SOCKET_ONLY = (
        ("bind", "--bind"),
        ("spawn_workers", "--spawn-workers"),
        ("timeout", "--timeout"),
        ("speculate", "--speculate"),
        ("steal", "--steal"),
    )
    _SERVICE_ONLY = (
        ("address", "--address"),
        ("tenant", "--tenant"),
        ("priority", "--priority"),
    )
    #: every optional field forwarded to the registry factory by build()
    _OPTION_FIELDS = (
        "bind", "spawn_workers", "timeout", "speculate", "steal",
        "address", "tenant", "priority",
    )

    def __post_init__(self) -> None:
        EXECUTORS.get(self.kind, key="executor.kind")
        for field_name, types, what in (
            ("workers", (int,), "an integer"),
            ("spawn_workers", (int,), "an integer"),
            ("timeout", (int, float), "a number"),
        ):
            value = getattr(self, field_name)
            if value is not None and (
                isinstance(value, bool) or not isinstance(value, types)
            ):
                raise CampaignConfigError(
                    f"executor.{field_name} must be {what}, got {value!r}",
                    key=f"executor.{field_name}",
                )
        if self.workers is not None and self.workers < 1:
            raise CampaignConfigError(
                f"executor.workers (--workers) must be >= 1, got {self.workers}",
                key="executor.workers",
            )
        if self.spawn_workers is not None and self.spawn_workers < 1:
            raise CampaignConfigError(
                f"executor.spawn_workers (--spawn-workers) must be >= 1, "
                f"got {self.spawn_workers}",
                key="executor.spawn_workers",
            )
        if self.timeout is not None and not self.timeout > 0:
            raise CampaignConfigError(
                f"executor.timeout (--timeout) must be > 0 seconds, "
                f"got {self.timeout}",
                key="executor.timeout",
            )
        # The serializable spec form of the straggler knobs is the
        # string ("off"/"auto"); richer policies are API-only.
        for field_name, flag in (("speculate", "--speculate"),
                                 ("steal", "--steal")):
            value = getattr(self, field_name)
            if value is not None and value not in ("off", "auto"):
                raise CampaignConfigError(
                    f"executor.{field_name} ({flag}) must be 'off' or "
                    f"'auto', got {value!r}",
                    key=f"executor.{field_name}",
                )
        if self.kind == "serial" and (self.workers or 1) > 1:
            # The serial executor runs one worker; accepting workers=N
            # would silently run 1/N of the parallelism the user asked
            # for.  (workers=1 is consistent and allowed.)
            raise CampaignConfigError(
                f"executor.workers={self.workers} (--workers) needs a "
                "parallel executor kind ('process' or 'socket'); kind "
                "'serial' runs exactly one worker",
                key="executor.workers",
            )
        if self.priority is not None and (
            isinstance(self.priority, bool)
            or not isinstance(self.priority, int)
            or self.priority < 0
        ):
            raise CampaignConfigError(
                f"executor.priority (--priority) must be an integer >= 0, "
                f"got {self.priority!r}",
                key="executor.priority",
            )
        if self.tenant is not None and (
            not isinstance(self.tenant, str) or not self.tenant
        ):
            raise CampaignConfigError(
                f"executor.tenant (--tenant) must be a non-empty string, "
                f"got {self.tenant!r}",
                key="executor.tenant",
            )
        if self.kind in ("serial", "process"):
            # Only the builtin non-socket kinds reject the socket fields
            # — kinds added via register_executor receive them as
            # factory options and decide for themselves.
            self._reject_fields(
                self._SOCKET_ONLY + self._SERVICE_ONLY,
                "executor kind 'socket' or 'service'",
            )
        elif self.kind == "socket":
            self._reject_fields(self._SERVICE_ONLY, "executor kind 'service'")
        elif self.kind == "service":
            # A service job's straggler mitigation and worker pool are
            # the *service's* configuration; only the client-side knobs
            # (address, tenant, priority, connection timeout) are the
            # spec's to set.
            self._reject_fields(
                (("bind", "--bind"), ("spawn_workers", "--spawn-workers"),
                 ("speculate", "--speculate"), ("steal", "--steal")),
                "executor kind 'socket'",
            )
            if self.address is None:
                raise CampaignConfigError(
                    "executor kind 'service' needs executor.address "
                    "(--address): the HOST:PORT of a running campaign "
                    "service",
                    key="executor.address",
                )
        if self.address is not None:
            host, sep, port = str(self.address).rpartition(":")
            if not (sep and host and port.isdigit()):
                raise CampaignConfigError(
                    f"bad service address {self.address!r} (key "
                    "'executor.address' / --address): expected HOST:PORT",
                    key="executor.address",
                )
        if self.bind is not None:
            from repro.experiments.executors import parse_bind

            parse_bind(self.bind)  # malformed addresses fail at spec time

    def _reject_fields(self, fields, needs: str) -> None:
        offending = [
            (spec_key, flag)
            for spec_key, flag in fields
            if getattr(self, spec_key) is not None
        ]
        if offending:
            names = ", ".join(
                f"executor.{spec_key} ({flag})" for spec_key, flag in offending
            )
            raise CampaignConfigError(
                f"{names} require(s) {needs}; got kind {self.kind!r}",
                key=f"executor.{offending[0][0]}",
            )

    def build(self, lease: Union[str, int, None] = None) -> Executor:
        """Instantiate the executor through the registry."""
        factory = EXECUTORS.get(self.kind, key="executor.kind")
        options = {
            key: getattr(self, key)
            for key in self._OPTION_FIELDS
            if getattr(self, key) is not None
        }
        return factory(workers=self.workers, lease=lease, **options)

    def to_dict(self) -> dict:
        out: dict = {"kind": self.kind}
        for key in ("workers",) + self._OPTION_FIELDS:
            value = getattr(self, key)
            if value is not None:
                out[key] = value
        return out

    @classmethod
    def from_dict(cls, data: Optional[Mapping]) -> "ExecutorSpec":
        if data is None:
            return cls()
        if not isinstance(data, Mapping):
            raise CampaignConfigError(
                f"'executor' must be a table/object, got {type(data).__name__}",
                key="executor",
            )
        _unknown_keys(data, cls._KNOWN, "executor spec", prefix="executor.")
        return cls(**dict(data))


@dataclass(frozen=True)
class StoreSpec:
    """Where a campaign's results accumulate, as serializable data.

    ``backend`` names an entry of the store registry (``"memory"``,
    ``"jsonl"``, or ``"columnar"`` for million-row campaigns); ``None``
    picks ``"jsonl"`` when a ``directory`` is set and the ephemeral
    ``"memory"`` store otherwise — so the common cases need nothing but
    ``--store DIR`` (or no store at all).
    """

    backend: Optional[str] = None
    directory: Optional[str] = None

    _KNOWN = frozenset({"backend", "directory"})
    #: builtin backends that persist to (and therefore require) a directory
    _DIRECTORY_BACKENDS = ("jsonl", "columnar")

    def __post_init__(self) -> None:
        resolved = self.resolved_backend
        STORES.get(resolved, key="store.backend")
        if resolved == "memory" and self.directory is not None:
            raise CampaignConfigError(
                "store.backend 'memory' cannot take store.directory "
                "(--store DIR implies the 'jsonl' backend)",
                key="store.directory",
            )
        if resolved in self._DIRECTORY_BACKENDS and self.directory is None:
            raise CampaignConfigError(
                f"store.backend {resolved!r} needs store.directory "
                "(--store DIR)",
                key="store.directory",
            )

    @property
    def resolved_backend(self) -> str:
        if self.backend is not None:
            return self.backend
        return "jsonl" if self.directory is not None else "memory"

    @property
    def persistent(self) -> bool:
        """Whether a killed campaign against this store can resume."""
        return self.directory is not None

    def build(self) -> RunStore:
        return make_store(self.resolved_backend, self.directory)

    def to_dict(self) -> dict:
        out: dict = {}
        if self.backend is not None:
            out["backend"] = self.backend
        if self.directory is not None:
            out["directory"] = self.directory
        return out

    @classmethod
    def from_dict(cls, data: Optional[Mapping]) -> "StoreSpec":
        if data is None:
            return cls()
        if not isinstance(data, Mapping):
            raise CampaignConfigError(
                f"'store' must be a table/object, got {type(data).__name__}",
                key="store",
            )
        _unknown_keys(data, cls._KNOWN, "store spec", prefix="store.")
        return cls(**dict(data))


def _coerce_config_value(key: str, value: object) -> object:
    if key in TUPLE_FIELDS and isinstance(value, (list, tuple)):
        if key in _FLOAT_FIELDS:
            return tuple(float(v) for v in value)
        if key in _INT_FIELDS:
            return tuple(int(v) for v in value)
        return tuple(value)
    return value


def _config_from_dict(
    figure: Optional[int], data: Optional[Mapping]
) -> Optional[ExperimentConfig]:
    """Build the spec's scenario config, strictly.

    With ``figure`` the mapping holds *partial overrides* applied onto
    the shipped figure config; without it the mapping must describe a
    complete scenario.  Unlike :meth:`ExperimentConfig.from_dict` (which
    tolerates unknown keys so old stores stay readable), spec configs
    reject them — a typo in a spec file must fail loudly.
    """
    if data is None:
        return None
    if not isinstance(data, Mapping):
        raise CampaignConfigError(
            f"'config' must be a table/object, got {type(data).__name__}",
            key="config",
        )
    # arrival/failure are *spec*-level tables ('arrival_process' /
    # 'failure_model'), never nested inside [config] — TOML specs nest
    # at most one level, so the config table holds scalars/arrays only.
    for key, surface in (("arrival", "arrival_process"),
                         ("failure", "failure_model")):
        if key in data:
            raise CampaignConfigError(
                f"config.{key} is not a spec key; declare the workload "
                f"with the top-level {surface!r} table instead",
                key=f"config.{key}",
            )
    known = frozenset(f.name for f in fields(ExperimentConfig)) - {
        "arrival",
        "failure",
    }
    _unknown_keys(data, known, "the campaign spec's 'config'", prefix="config.")
    kwargs = {k: _coerce_config_value(k, v) for k, v in data.items()}
    if figure is not None and figure not in FIGURES:
        raise CampaignConfigError(
            f"no figure {figure}; the paper has figures "
            f"{min(FIGURES)}-{max(FIGURES)}",
            key="figure",
        )
    try:
        if figure is not None:
            return replace(FIGURES[figure], **kwargs)
        return ExperimentConfig(**kwargs)
    except TypeError as exc:
        raise CampaignConfigError(
            f"incomplete 'config' in campaign spec: {exc}", key="config"
        ) from None
    except ValueError as exc:
        raise CampaignConfigError(
            f"invalid 'config' in campaign spec: {exc}", key="config"
        ) from None


@dataclass(frozen=True)
class CampaignSpec:
    """Everything that defines one campaign, as plain serializable data.

    The base scenario is either a paper ``figure`` (1-6) or a complete
    ``config``; ``graphs``/``seed``/``fast`` and the
    ``network``/``topology``/``policy`` scenario override it, and the
    ``topologies``/``policies`` axes expand it into a paired
    multi-scenario grid (every scenario schedules the *same* random
    instances).  ``executor``, ``store`` and ``lease`` say where units
    run and where rows land.  Specs are frozen, comparable, and
    round-trip losslessly through :meth:`to_json`/:meth:`to_toml`;
    invalid combinations raise
    :class:`~repro.utils.errors.CampaignConfigError` at construction,
    naming the offending key.
    """

    figure: Optional[int] = None
    config: Optional[ExperimentConfig] = None
    graphs: Optional[int] = None
    seed: Optional[int] = None
    fast: Optional[bool] = None
    network: Optional[str] = None
    topology: Optional[str] = None
    policy: Optional[str] = None
    topologies: tuple[str, ...] = ()
    policies: tuple[str, ...] = ()
    include_base: bool = True
    #: online workload: DAG arrival process served incrementally, with
    #: the granularity axis reinterpreted as the arrival-rate sweep
    #: (``None`` = the paper's offline scenario)
    arrival_process: Optional[ArrivalSpec] = None
    #: how crash scenarios are drawn (``None`` = i.i.d. per-processor)
    failure_model: Optional[FailureSpec] = None
    executor: ExecutorSpec = field(default_factory=ExecutorSpec)
    store: StoreSpec = field(default_factory=StoreSpec)
    lease: Union[str, int, None] = None
    version: int = SPEC_VERSION

    _KNOWN = frozenset(
        {
            "figure",
            "config",
            "graphs",
            "seed",
            "fast",
            "network",
            "topology",
            "policy",
            "topologies",
            "policies",
            "include_base",
            "arrival_process",
            "failure_model",
            "executor",
            "store",
            "lease",
            "version",
        }
    )

    # ---------------------------------------------------------- validation

    def __post_init__(self) -> None:
        if self.version != SPEC_VERSION:
            raise CampaignConfigError(
                f"unsupported spec version {self.version!r}; "
                f"this build reads version {SPEC_VERSION}",
                key="version",
            )
        if self.figure is None and self.config is None:
            raise CampaignConfigError(
                "a campaign spec needs a base scenario: set 'figure' (1-6) "
                "or a complete 'config'",
                key="figure",
            )
        if self.figure is not None and self.figure not in FIGURES:
            raise CampaignConfigError(
                f"no figure {self.figure!r}; the paper has figures "
                f"{min(FIGURES)}-{max(FIGURES)}",
                key="figure",
            )
        if self.graphs is not None and (
            isinstance(self.graphs, bool)
            or not isinstance(self.graphs, int)
            or self.graphs < 1
        ):
            raise CampaignConfigError(
                f"'graphs' (--graphs) must be a positive integer, "
                f"got {self.graphs!r}",
                key="graphs",
            )
        if self.seed is not None and (
            isinstance(self.seed, bool) or not isinstance(self.seed, int)
        ):
            raise CampaignConfigError(
                f"'seed' must be an integer, got {self.seed!r}", key="seed"
            )
        for key in ("fast", "include_base"):
            value = getattr(self, key)
            if value is not None and not isinstance(value, bool):
                raise CampaignConfigError(
                    f"{key!r} must be true or false, got {value!r}", key=key
                )
        if self.network is not None and self.network not in network_names():
            raise CampaignConfigError(
                f"unknown network {self.network!r} (key 'network' / "
                f"--network); registered: {', '.join(network_names())}",
                key="network",
            )
        for key, values in (("topology", (self.topology,)),
                            ("topologies", self.topologies)):
            for name in values:
                if name is not None and name not in topology_names():
                    raise CampaignConfigError(
                        f"unknown topology {name!r} (key {key!r} / "
                        f"--topology); registered: "
                        f"{', '.join(topology_names())}",
                        key=key,
                    )
        for key, values in (("policy", (self.policy,)),
                            ("policies", self.policies)):
            for name in values:
                if name is not None and name not in PORT_POLICIES:
                    raise CampaignConfigError(
                        f"unknown port policy {name!r} (key {key!r} / "
                        f"--policy); valid: {', '.join(PORT_POLICIES)}",
                        key=key,
                    )
        for key, typ in (("arrival_process", ArrivalSpec),
                         ("failure_model", FailureSpec)):
            value = getattr(self, key)
            if value is not None and not isinstance(value, typ):
                raise CampaignConfigError(
                    f"{key!r} must be a {typ.__name__} (or a "
                    f"{key.split('_')[0]} table in a spec file), "
                    f"got {value!r}",
                    key=key,
                )
        # Canonical form: the workload tables live on the spec surface.
        # A config passed with arrival/failure set is hoisted (so equal
        # campaigns compare equal and TOML stays one level deep) unless
        # the spec also names a conflicting top-level table.
        if self.config is not None and (
            self.config.arrival is not None or self.config.failure is not None
        ):
            for attr, spec_key, inner in (
                ("arrival_process", "arrival_process", self.config.arrival),
                ("failure_model", "failure_model", self.config.failure),
            ):
                outer = getattr(self, attr)
                if inner is not None and outer is not None and outer != inner:
                    raise CampaignConfigError(
                        f"{spec_key!r} is set both on the spec and on "
                        f"config.{attr.split('_')[0]}, and they differ",
                        key=spec_key,
                    )
                if inner is not None and outer is None:
                    object.__setattr__(self, attr, inner)
            object.__setattr__(
                self, "config", replace(self.config, arrival=None, failure=None)
            )
        try:
            LeasePolicy.from_spec(self.lease)
        except ValueError as exc:
            raise CampaignConfigError(
                f"bad 'lease' (--lease): {exc}", key="lease"
            ) from None
        # Cross-field checks: the grid must actually build, and every
        # algorithm the scenarios name must be a registered scheduler.
        for config in self.grid().configs:
            for algo in config.algorithms:
                SCHEDULERS.get(algo, key="config.algorithms")

    # ------------------------------------------------------------ building

    def base_config(self) -> ExperimentConfig:
        """The fully-resolved base scenario (overrides applied)."""
        base = self.config if self.config is not None else FIGURES[self.figure]
        try:
            base = base.with_graphs(self.graphs).with_fast(self.fast)
            if self.seed is not None:
                base = replace(base, base_seed=self.seed)
            base = base.with_network(
                model=self.network, topology=self.topology, policy=self.policy
            )
        except ValueError as exc:
            raise CampaignConfigError(
                f"invalid scenario (keys 'network'/'topology'/'policy'): {exc}",
                key="network",
            ) from None
        if self.arrival_process is None and self.failure_model is None:
            return base
        try:
            return replace(
                base,
                arrival=self.arrival_process,
                failure=self.failure_model,
            )
        except ValueError as exc:
            raise CampaignConfigError(
                f"invalid online scenario (keys 'arrival_process'/"
                f"'failure_model'): {exc}",
                key="arrival_process",
            ) from None

    def grid(self) -> ScenarioGrid:
        """Expand the spec's axes into the declarative scenario grid."""
        base = self.base_config()
        if not self.topologies and not self.policies:
            if not self.include_base:
                raise CampaignConfigError(
                    "include_base=false needs 'topologies' or 'policies' "
                    "axes, or the grid is empty",
                    key="include_base",
                )
            return ScenarioGrid.from_config(base)
        try:
            return ScenarioGrid.from_scenarios(
                base,
                topologies=self.topologies,
                policies=self.policies,
                include_base=self.include_base,
            )
        except ValueError as exc:
            raise CampaignConfigError(
                f"invalid scenario axes (keys 'topologies'/'policies'): {exc}",
                key="topologies",
            ) from None

    # ------------------------------------------------------- serialization

    def to_dict(self) -> dict:
        """Canonical JSON/TOML-ready mapping (defaults omitted)."""
        out: dict = {"version": self.version}
        if self.figure is not None:
            out["figure"] = self.figure
        if self.config is not None:
            out["config"] = self.config.to_dict()
        for key in ("graphs", "seed", "fast", "network", "topology",
                    "policy", "lease"):
            value = getattr(self, key)
            if value is not None:
                out[key] = value
        if self.topologies:
            out["topologies"] = list(self.topologies)
        if self.policies:
            out["policies"] = list(self.policies)
        if not self.include_base:
            out["include_base"] = False
        if self.arrival_process is not None:
            out["arrival_process"] = self.arrival_process.to_dict()
        if self.failure_model is not None:
            out["failure_model"] = self.failure_model.to_dict()
        executor = self.executor.to_dict()
        if executor != {"kind": "serial"}:
            out["executor"] = executor
        store = self.store.to_dict()
        if store:
            out["store"] = store
        return out

    @classmethod
    def from_dict(cls, data: Mapping) -> "CampaignSpec":
        """Rebuild a spec from :meth:`to_dict` output, strictly.

        Unknown keys are a :class:`CampaignConfigError` naming them —
        a misspelled option in a spec file must never be silently
        ignored.
        """
        if not isinstance(data, Mapping):
            raise CampaignConfigError(
                f"a campaign spec must be a table/object, "
                f"got {type(data).__name__}"
            )
        _unknown_keys(data, cls._KNOWN, "campaign spec")
        figure = data.get("figure")
        if figure is not None and not isinstance(figure, int):
            raise CampaignConfigError(
                f"'figure' must be an integer, got {figure!r}", key="figure"
            )
        for key in ("topologies", "policies"):
            if key in data and not isinstance(data[key], (list, tuple)):
                raise CampaignConfigError(
                    f"{key!r} must be an array of names, got {data[key]!r}",
                    key=key,
                )
        return cls(
            figure=figure,
            config=_config_from_dict(figure, data.get("config")),
            graphs=data.get("graphs"),
            seed=data.get("seed"),
            fast=data.get("fast"),
            network=data.get("network"),
            topology=data.get("topology"),
            policy=data.get("policy"),
            topologies=tuple(data.get("topologies", ())),
            policies=tuple(data.get("policies", ())),
            include_base=data.get("include_base", True),
            arrival_process=ArrivalSpec.from_dict(data.get("arrival_process")),
            failure_model=FailureSpec.from_dict(data.get("failure_model")),
            executor=ExecutorSpec.from_dict(data.get("executor")),
            store=StoreSpec.from_dict(data.get("store")),
            lease=data.get("lease"),
            version=data.get("version", SPEC_VERSION),
        )

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent) + "\n"

    @classmethod
    def from_json(cls, text: str) -> "CampaignSpec":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise CampaignConfigError(f"unreadable JSON spec: {exc}") from None
        return cls.from_dict(data)

    def to_toml(self) -> str:
        return toml_dumps(self.to_dict())

    @classmethod
    def from_toml(cls, text: str) -> "CampaignSpec":
        try:
            data = tomllib.loads(text)
        except tomllib.TOMLDecodeError as exc:
            raise CampaignConfigError(f"unreadable TOML spec: {exc}") from None
        return cls.from_dict(data)

    def save(self, path: Union[str, Path]) -> Path:
        """Write the spec to ``path`` (format from the suffix)."""
        path = Path(path)
        if path.suffix == ".toml":
            text = self.to_toml()
        elif path.suffix == ".json":
            text = self.to_json()
        else:
            raise CampaignConfigError(
                f"spec files are .json or .toml, got {path.name!r}"
            )
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text)
        return path

    @classmethod
    def load(cls, path: Union[str, Path]) -> "CampaignSpec":
        """Read a spec file (format from the suffix)."""
        path = Path(path)
        if not path.exists():
            raise CampaignConfigError(f"spec file {path} does not exist")
        if path.suffix == ".toml":
            return cls.from_toml(path.read_text())
        if path.suffix == ".json":
            return cls.from_json(path.read_text())
        raise CampaignConfigError(
            f"spec files are .json or .toml, got {path.name!r}"
        )


# ---------------------------------------------------------------- overrides


def parse_override(text: str) -> tuple[str, object]:
    """Parse one CLI ``--override KEY=VALUE`` pair.

    ``KEY`` is a dotted spec path (``graphs``, ``executor.kind``,
    ``config.granularities``); ``VALUE`` is parsed as JSON when
    possible (``3``, ``true``, ``[0.2, 0.4]``, ``null`` to reset a key
    to its default) and taken as a bare string otherwise.
    """
    key, sep, value = text.partition("=")
    key = key.strip()
    if not sep or not key:
        raise CampaignConfigError(
            f"bad --override {text!r}: expected KEY=VALUE "
            "(e.g. graphs=3 or executor.kind=process)",
            key="override",
        )
    try:
        return key, json.loads(value)
    except json.JSONDecodeError:
        return key, value.strip()


def apply_overrides(
    spec: CampaignSpec, overrides: Mapping[str, object]
) -> CampaignSpec:
    """A copy of ``spec`` with dotted-key overrides applied.

    Overrides route through the serialized form, so exactly the keys a
    spec file accepts are overridable and exactly the same validation
    runs — ``campaign run spec.json --override executor.kind=process``
    and editing the file are equivalent.  A ``None`` value removes the
    key (resetting it to its default).
    """
    if not overrides:
        return spec
    data = spec.to_dict()
    for dotted, value in overrides.items():
        parts = dotted.split(".")
        node = data
        for part in parts[:-1]:
            child = node.get(part)
            if child is None:
                child = node[part] = {}
            elif not isinstance(child, dict):
                raise CampaignConfigError(
                    f"cannot override {dotted!r}: {part!r} is not a table",
                    key=dotted,
                )
            node = child
        if value is None:
            node.pop(parts[-1], None)
        else:
            node[parts[-1]] = value
    return CampaignSpec.from_dict(data)


# ------------------------------------------------------------ shipped specs


def figure_spec_path(number: int) -> Path:
    return SPEC_DIR / f"figure{number}.json"


def figure_spec(number: int) -> CampaignSpec:
    """Load the shipped spec of paper figure ``number`` (1-6)."""
    path = figure_spec_path(number)
    if not path.exists():
        raise CampaignConfigError(
            f"no figure {number!r}; the paper has figures "
            f"{min(FIGURES)}-{max(FIGURES)}",
            key="figure",
        )
    return CampaignSpec.load(path)


def shipped_spec_paths() -> tuple[Path, ...]:
    """Every spec file shipped with the package, sorted by name."""
    return tuple(sorted(SPEC_DIR.glob("*.json"))) + tuple(
        sorted(SPEC_DIR.glob("*.toml"))
    )


# ---------------------------------------------------------------- facade


@dataclass(frozen=True)
class ProgressEvent:
    """One progress notification of a running campaign.

    ``kind`` is ``"start"`` (grid expanded, before any unit runs),
    ``"unit"`` (one work unit finished; the message is the executor's
    progress line), or ``"done"`` (all units stored).
    """

    kind: str
    message: str

    def __str__(self) -> str:
        return self.message


@dataclass
class CampaignHandle:
    """The outcome of one :meth:`Campaign.run`: results plus run metadata."""

    spec: CampaignSpec
    results: list[CampaignResult]
    elapsed: float
    events: list[ProgressEvent]

    def result(self) -> CampaignResult:
        """The single scenario's result (multi-scenario grids: use
        :attr:`results`)."""
        if len(self.results) != 1:
            raise ValueError(
                f"campaign holds {len(self.results)} scenario results; "
                "use .results"
            )
        return self.results[0]

    def resume(
        self, progress: Optional[Callable[[ProgressEvent], None]] = None
    ) -> "CampaignHandle":
        """Finish any units a crash left behind (fresh handle)."""
        return Campaign(self.spec).resume(progress=progress)


class Campaign:
    """Facade running a :class:`CampaignSpec` on the grid/executor/store
    stack.

    ``run()`` expands the grid, builds the executor and store the spec
    names (through the registries), drains every unit, and returns a
    :class:`CampaignHandle`.  ``resume()`` re-runs against the spec's
    persistent store, executing only the units a previous (possibly
    killed) run did not record — the crash-recovery path.  ``executor=``
    and ``store=`` accept pre-built instances for the cases data cannot
    describe (e.g. an already-bound :class:`SocketExecutor` master).
    """

    def __init__(self, spec: CampaignSpec) -> None:
        self.spec = spec

    @classmethod
    def from_file(cls, path: Union[str, Path]) -> "Campaign":
        return cls(CampaignSpec.load(path))

    def run(
        self,
        progress: Optional[Callable[[ProgressEvent], None]] = None,
        resume: bool = False,
        executor: Optional[Executor] = None,
        store: Union[RunStore, str, Path, None] = None,
    ) -> CampaignHandle:
        spec = self.spec
        if resume and store is None and not spec.store.persistent:
            raise CampaignConfigError(
                "resume needs a persistent store: set store.directory "
                "(--store DIR); an in-memory campaign has nothing to "
                "resume from",
                key="store.directory",
            )
        from repro.experiments.campaign import run_grid

        grid = spec.grid()
        events: list[ProgressEvent] = []

        def emit(kind: str, message: str) -> None:
            event = ProgressEvent(kind, message)
            events.append(event)
            if progress is not None:
                progress(event)

        start = perf_counter()
        emit(
            "start",
            f"campaign: {len(grid.configs)} scenario(s), "
            f"{grid.total_units} unit(s), executor "
            f"{spec.executor.kind if executor is None else executor.name}",
        )
        executor_obj = (
            executor if executor is not None else spec.executor.build(spec.lease)
        )
        store_obj = store if store is not None else spec.store.build()
        owns_store = store is None
        try:
            results = run_grid(
                grid,
                store=store_obj,
                executor=executor_obj,
                progress=lambda message: emit("unit", message),
                resume=resume,
                lease=spec.lease,
            )
        finally:
            if owns_store:
                store_obj.close()
        elapsed = perf_counter() - start
        emit("done", f"campaign finished in {elapsed:.1f}s")
        return CampaignHandle(
            spec=spec, results=results, elapsed=elapsed, events=events
        )

    def resume(
        self,
        progress: Optional[Callable[[ProgressEvent], None]] = None,
        executor: Optional[Executor] = None,
    ) -> CampaignHandle:
        """Finish a killed campaign from the spec's persistent store."""
        return self.run(progress=progress, resume=True, executor=executor)

    def submit(
        self,
        address: Union[str, tuple],
        tenant: str = "default",
        priority: int = 0,
    ):
        """Submit this spec to a running campaign service and return a
        :class:`~repro.experiments.service.ServiceJobHandle` immediately
        — the service owns the run (its own store under the service
        root; an in-memory store spec becomes JSONL there).  Poll with
        ``handle.status()``, block with ``handle.wait()``, and read the
        rows from ``handle.open_store()`` at any point."""
        from repro.experiments.service import ServiceClient

        return ServiceClient(address).submit_handle(
            self.spec, tenant=tenant, priority=priority
        )


__all__ = [
    "CampaignSpec",
    "ExecutorSpec",
    "StoreSpec",
    "Campaign",
    "CampaignHandle",
    "ProgressEvent",
    "CampaignConfigError",
    "figure_spec",
    "figure_spec_path",
    "shipped_spec_paths",
    "parse_override",
    "apply_overrides",
    "toml_dumps",
    "SPEC_DIR",
    "SPEC_VERSION",
]
