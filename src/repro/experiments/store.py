"""Append-only campaign results store: JSONL rows + checkpoint manifest.

Every executor writes one JSON line per completed
:class:`~repro.experiments.grid.WorkUnit` into ``rows.jsonl`` — the full
scenario tags (config/network/topology/policy), the grid coordinates
(granularity/rep) and the :class:`~repro.experiments.harness.RepResult`
payload.  ``manifest.json`` records the generating
:class:`~repro.experiments.grid.ScenarioGrid`, so ``--resume <dir>`` can
rebuild the campaign, skip completed units, and refuse a store that was
written for a different grid.

Crash safety is the append-only discipline: each row is one flushed
line, so a killed campaign loses at most the in-flight units; a trailing
partial line (the kill landed mid-write) is skipped on load and dropped
by the first append, so new records always start on a clean line while
read-only loads never modify the file.  Floats round-trip exactly through JSON (``repr``-based), which is
what keeps resumed and distributed campaigns bit-identical to serial
in-memory runs.
"""

from __future__ import annotations

import json
import threading
from pathlib import Path
from typing import IO, Iterator, Mapping, Optional, Sequence, Union

from repro.experiments.grid import ScenarioGrid, WorkUnit
from repro.experiments.harness import RepResult, flatten_rep_result
from repro.experiments.registry import STORES, register_store

MANIFEST_NAME = "manifest.json"
ROWS_NAME = "rows.jsonl"
STORE_FORMAT = 1

#: file names of the columnar backend (``repro.experiments.columnar``),
#: shared here so each backend can refuse a directory written by the other
COLUMNAR_TAIL_NAME = "tail.jsonl"
COLUMNAR_CHUNK_GLOB = "chunk-*.npz"

#: the scenario tag columns every stored row carries
TAG_COLUMNS = ("config", "network", "topology", "policy")


class StoreError(RuntimeError):
    """A store is unreadable, corrupt, or belongs to a different campaign."""


def row_matches(row: Mapping, where: Optional[Mapping]) -> bool:
    """Shared ``where=`` predicate semantics of the query layer.

    Each key filters one row column: a scalar keeps rows whose value
    equals it, a list/tuple/set/frozenset keeps rows whose value is a
    member.  ``None`` (as a value) matches the ``None`` metric entries a
    failed crash replay leaves.
    """
    if not where:
        return True
    for key, want in where.items():
        have = row.get(key)
        if isinstance(want, (list, tuple, set, frozenset)):
            if have not in want:
                return False
        elif have != want:
            return False
    return True


def project_row(row: Mapping, columns: Optional[Sequence[str]]) -> dict:
    """Restrict a row to ``columns`` (in the requested order)."""
    if columns is None:
        return dict(row)
    return {name: row[name] for name in columns}


def canonical_row_key(row: Mapping) -> tuple:
    """The executor-independent ordering of per-rep rows.

    Append order on disk depends on which executor ran the campaign, so
    every ``rep_rows()`` implementation sorts by this key — scenario,
    then granularity, rep, algorithm.
    """
    return (
        row["config"],
        row["network"],
        row["topology"],
        row["policy"],
        row["granularity"],
        row["rep"],
        row["algorithm"],
    )


def result_to_dict(result: RepResult) -> dict:
    """JSON payload of one rep result (exact float round-trip)."""
    return {
        "faultfree_norm": result.faultfree_norm,
        "metrics": result.metrics,
    }


def result_from_dict(data: dict, granularity: float, rep: int) -> RepResult:
    return RepResult(
        granularity=granularity,
        rep=rep,
        faultfree_norm=data["faultfree_norm"],
        metrics=data["metrics"],
    )


class RunStore:
    """Where campaign results accumulate, in memory or on disk.

    ``RunStore(None)`` is the ephemeral in-memory store every default
    campaign uses; ``RunStore(directory)`` persists rows as they complete
    and reloads them on construction, which is all resume needs.  Appends
    are thread-safe (the socket master appends from one handler thread
    per worker) and idempotent per unit id (requeue races after a
    presumed-dead worker reconnects cannot duplicate rows).
    """

    #: registry name recorded in the manifest; resume refuses a mismatch
    backend_name = "jsonl"

    def __init__(self, directory: Union[str, Path, None] = None) -> None:
        self.directory = Path(directory) if directory is not None else None
        # re-entrant: backend subclasses wrap append() under the same lock
        self._lock = threading.RLock()
        self._results: dict[str, RepResult] = {}
        self._tags: dict[str, dict] = {}
        self._order: list[str] = []
        self._rows_fh: Optional[IO[str]] = None
        self._repair_truncate: Optional[int] = None
        self._repair_newline = False
        self._duplicate_appends = 0
        self._replayed_rows = 0
        self._duplicates_by_attempt: dict[str, int] = {}
        if self.directory is not None:
            self.directory.mkdir(parents=True, exist_ok=True)
            self._load_rows()

    # ------------------------------------------------------------------ load

    @property
    def rows_path(self) -> Optional[Path]:
        return self.directory / ROWS_NAME if self.directory else None

    @property
    def manifest_path(self) -> Optional[Path]:
        return self.directory / MANIFEST_NAME if self.directory else None

    def _reject_foreign_backend(self) -> None:
        """Refuse a directory another backend's files live in — loading
        it as JSONL would silently look empty and mix two formats."""
        if (self.directory / COLUMNAR_TAIL_NAME).exists() or any(
            self.directory.glob(COLUMNAR_CHUNK_GLOB)
        ):
            raise StoreError(
                f"{self.directory}: directory holds a 'columnar' store; "
                "open it with open_store()/make_store('columnar', ...)"
            )

    def _load_rows(self) -> None:
        path = self.rows_path
        if path is None:
            return
        self._reject_foreign_backend()
        if not path.exists():
            return
        # Streamed line by line (the buffer is one row, not the file):
        # resuming a multi-GB campaign must not need file-size RSS.
        offset = 0  # byte position where the current line starts
        ends_with_newline = True
        with open(path, "rb") as fh:
            for i, raw in enumerate(fh):
                ends_with_newline = raw.endswith(b"\n")
                line = raw[:-1] if ends_with_newline else raw
                if line.strip():
                    try:
                        record = json.loads(line)
                    except json.JSONDecodeError:
                        if fh.read().strip():
                            raise StoreError(
                                f"{path}: corrupt row at line {i + 1} "
                                "(not a trailing partial write)"
                            ) from None
                        # A kill landed mid-append; the half-written unit
                        # reruns.  Remember where the partial bytes start
                        # so the first append can drop them — repairing
                        # here would make read-only loads mutate a store
                        # another process may still be writing.
                        self._repair_truncate = offset
                        return
                    self._ingest(record)
                offset += len(raw)
        if offset and not ends_with_newline:
            # The kill landed after a full record but before its
            # newline; the first append must complete the line before
            # writing, or its record would glue onto this one.
            self._repair_newline = True

    def _ingest(self, record: dict) -> None:
        unit_id = record["unit_id"]
        if unit_id in self._results:  # replayed append from a requeue race
            self._replayed_rows += 1
            return
        self._results[unit_id] = result_from_dict(
            record["result"], record["granularity"], record["rep"]
        )
        self._tags[unit_id] = {
            key: record[key] for key in ("config", "network", "topology", "policy")
        }
        self._order.append(unit_id)

    # --------------------------------------------------------------- writing

    def append(
        self, unit: WorkUnit, result: RepResult, attempt: str = "primary"
    ) -> bool:
        """Record one completed unit; returns False if already present.

        ``attempt`` tags which execution attempt delivered the result —
        ``"primary"`` for a unit's first lease, ``"speculative"`` /
        ``"stolen"`` / ``"stale"`` for the straggler-mitigation paths.
        The tag changes nothing about what is stored (first ack wins,
        identical rows either way); it only attributes swallowed
        duplicates in :meth:`dedup_stats`, so fault harnesses can assert
        *which* mechanism produced each losing delivery.
        """
        record = {
            "unit_id": unit.unit_id,
            **unit.scenario,
            "granularity": unit.granularity,
            "rep": unit.rep,
            "result": result_to_dict(result),
        }
        with self._lock:
            if unit.unit_id in self._results:
                self._duplicate_appends += 1
                self._duplicates_by_attempt[attempt] = (
                    self._duplicates_by_attempt.get(attempt, 0) + 1
                )
                return False
            self._results[unit.unit_id] = result
            self._tags[unit.unit_id] = unit.scenario
            self._order.append(unit.unit_id)
            if self.directory is not None:
                if self._rows_fh is None:
                    self._rows_fh = self._open_rows_for_append()
                self._rows_fh.write(json.dumps(record, separators=(",", ":")))
                self._rows_fh.write("\n")
                self._rows_fh.flush()
        return True

    def _open_rows_for_append(self) -> IO[str]:
        """Open rows.jsonl for appending, repairing any mid-write kill
        damage recorded at load time (deferred so read-only loads never
        touch the file)."""
        path = self.rows_path
        if self._repair_truncate is not None and path.exists():
            with open(path, "r+b") as fh:
                fh.truncate(self._repair_truncate)
        elif self._repair_newline and path.exists():
            with open(path, "ab") as fh:
                fh.write(b"\n")
        self._repair_truncate = None
        self._repair_newline = False
        return open(path, "a")

    def close(self) -> None:
        with self._lock:
            if self._rows_fh is not None:
                self._rows_fh.close()
                self._rows_fh = None

    def __enter__(self) -> "RunStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -------------------------------------------------------------- manifest

    def write_manifest(
        self, grid: ScenarioGrid, extra: Optional[Mapping[str, object]] = None
    ) -> None:
        """Record the grid (and optional ``extra`` metadata) this store
        was created for.

        ``extra`` keys are merged into the manifest top level without
        participating in :meth:`ensure_manifest`'s mismatch checks — the
        campaign service uses this to stamp each job store with its
        job/tenant identity while the grid comparison stays exactly the
        campaign contract.  Reserved manifest keys cannot be shadowed.
        """
        if self.directory is None:
            return
        manifest: dict = {}
        if extra:
            manifest.update(extra)
        manifest.update(
            {
                "format": STORE_FORMAT,
                "backend": self.backend_name,
                "total_units": grid.total_units,
                "grid": grid.to_dict(),
            }
        )
        self.manifest_path.write_text(json.dumps(manifest, indent=2) + "\n")

    def _read_manifest(self) -> dict:
        path = self.manifest_path
        if path is None:
            raise StoreError("in-memory stores have no manifest")
        if not path.exists():
            raise StoreError(f"{self.directory}: no {MANIFEST_NAME} to resume from")
        try:
            return json.loads(path.read_text())
        except json.JSONDecodeError as exc:
            raise StoreError(f"{path}: unreadable manifest ({exc})") from None

    def read_manifest(self) -> dict:
        """The raw manifest mapping, including any ``extra`` metadata
        recorded at :meth:`write_manifest` time."""
        return self._read_manifest()

    def read_manifest_grid(self) -> ScenarioGrid:
        """The grid this store was created for (``campaign resume <dir>``)."""
        return ScenarioGrid.from_dict(self._read_manifest()["grid"])

    def ensure_manifest(
        self, grid: ScenarioGrid, extra: Optional[Mapping[str, object]] = None
    ) -> None:
        """Write the manifest, or verify an existing one matches ``grid``.

        A store belongs to exactly one campaign: resuming with a
        different grid would silently mix incompatible rows, so any
        mismatch is an error rather than a merge.  The manifest also
        records the backend that wrote the store (pre-backend manifests
        count as ``"jsonl"``), and resuming with a different one is
        refused the same way.
        """
        if self.directory is None:
            return
        if self.manifest_path.exists():
            manifest = self._read_manifest()
            recorded = manifest.get("backend", "jsonl")
            if recorded != self.backend_name:
                raise StoreError(
                    f"{self.directory}: store was written by the "
                    f"{recorded!r} backend, not {self.backend_name!r}; "
                    "open it with open_store() (or the matching "
                    "--store-backend)"
                )
            existing = ScenarioGrid.from_dict(manifest["grid"])
            if existing.to_dict() != grid.to_dict():
                raise StoreError(
                    f"{self.directory}: store was created for a different "
                    "campaign grid (config/scenario mismatch)"
                )
        else:
            self.write_manifest(grid, extra=extra)

    # --------------------------------------------------------------- reading

    def dedup_stats(self) -> dict:
        """How many replayed deliveries idempotency swallowed.

        ``duplicate_appends`` counts live :meth:`append` calls for units
        already present (requeue races, duplicate socket deliveries);
        ``replayed_rows`` counts duplicate rows skipped while loading
        ``rows.jsonl`` (a crash landed between a rerun's append and the
        original's — harmless, the first row wins).  Both should be 0 in
        a fault-free campaign; fault-injection suites assert they absorb
        exactly the injected replays.

        When any live duplicate carried an attempt tag, a ``by_attempt``
        mapping breaks ``duplicate_appends`` down by tag (``"primary"``,
        ``"speculative"``, ``"stolen"``, ``"stale"``) — attributing each
        losing delivery to the mechanism that raced.  The key is absent
        when there were no duplicates, so fault-free stats stay exactly
        the two legacy counters.
        """
        with self._lock:
            stats: dict = {
                "duplicate_appends": self._duplicate_appends,
                "replayed_rows": self._replayed_rows,
            }
            if self._duplicates_by_attempt:
                stats["by_attempt"] = dict(self._duplicates_by_attempt)
            return stats

    def completed_ids(self) -> frozenset[str]:
        with self._lock:
            return frozenset(self._results)

    def __len__(self) -> int:
        return len(self._results)

    def __contains__(self, unit_id: str) -> bool:
        return unit_id in self._results

    def result(self, unit_id: str) -> RepResult:
        return self._results[unit_id]

    def results(self) -> dict[str, RepResult]:
        with self._lock:
            return dict(self._results)

    def rep_rows(self) -> list[dict]:
        """Scenario-tagged per-rep rows, flattened for stats/compare.

        One row per (unit, algorithm): scenario tags + granularity/rep +
        ``algorithm`` + the rep's metric values.  Append order on disk is
        executor-dependent, so rows are returned sorted by
        (scenario, granularity, rep, algorithm) — canonical and
        executor-independent.
        """
        rows: list[dict] = []
        with self._lock:
            items = [
                (uid, self._tags[uid], self._results[uid]) for uid in self._order
            ]
        for uid, tags, result in items:
            rows.extend(flatten_rep_result(tags, result))
        rows.sort(
            key=lambda r: (
                r["config"],
                r["network"],
                r["topology"],
                r["policy"],
                r["granularity"],
                r["rep"],
                r["algorithm"],
            )
        )
        return rows

    def iter_rows(
        self,
        where: Optional[Mapping] = None,
        columns: Optional[Sequence[str]] = None,
    ) -> Iterator[dict]:
        """Stream per-rep rows, one at a time, in append order.

        The query surface shared by every backend: ``where`` filters on
        any row column (scalar equality, or membership for a
        list/tuple/set value — see :func:`row_matches`) and ``columns``
        projects each yielded row down to the named columns.  Unlike
        :meth:`rep_rows`, nothing is materialized beyond the row being
        yielded, and the order is append order (executor-dependent) —
        sort consumers on the canonical key when order matters.
        """
        with self._lock:
            items = [(self._tags[uid], self._results[uid]) for uid in self._order]
        for tags, result in items:
            for row in flatten_rep_result(tags, result):
                if row_matches(row, where):
                    yield project_row(row, columns)


def _columnar_factory(directory: Union[str, Path, None] = None) -> "RunStore":
    # Imported lazily so the registry knows the name without the store
    # module depending on the (NumPy-using) columnar module at import.
    from repro.experiments.columnar import ColumnarStore

    return ColumnarStore(directory)


# The builtin store backends, by `store.backend` spec name: "memory" is
# the ephemeral in-process store every default campaign uses, "jsonl"
# the append-only directory store above, "columnar" the chunked
# NumPy-structured-array store for million-row campaigns
# (repro.experiments.columnar).  `register_store` adds more.
register_store("memory", lambda directory=None: RunStore(None))
register_store("jsonl", lambda directory=None: RunStore(directory))
register_store("columnar", _columnar_factory)


def make_store(backend: str, directory: Union[str, Path, None] = None) -> RunStore:
    """Instantiate a results store from a registered backend name."""
    return STORES.get(backend, key="store.backend")(directory=directory)


def read_store_backend(directory: Union[str, Path]) -> str:
    """The backend a store directory was written by.

    Prefers the manifest's ``backend`` record; directories predating it
    (or not yet carrying a manifest) are sniffed by their files, with
    empty directories defaulting to ``"jsonl"``.
    """
    directory = Path(directory)
    manifest = directory / MANIFEST_NAME
    if manifest.exists():
        try:
            recorded = json.loads(manifest.read_text()).get("backend")
        except (OSError, json.JSONDecodeError):
            recorded = None  # the backend's own loader reports corruption
        if recorded is not None:
            return recorded
    if (directory / COLUMNAR_TAIL_NAME).exists() or any(
        directory.glob(COLUMNAR_CHUNK_GLOB)
    ):
        return "columnar"
    return "jsonl"


def open_store(directory: Union[str, Path]) -> RunStore:
    """Open an existing store directory with whichever backend wrote it.

    What ``campaign resume <dir>`` (and every bare-directory ``store=``
    argument) goes through, so a columnar campaign resumes onto columnar
    chunks instead of being misread as an empty JSONL store.
    """
    return make_store(read_store_backend(directory), directory)
