"""Instance generation, per-rep evaluation, and campaign aggregation.

One *data point* of a figure is ``num_graphs`` random instances at a fixed
granularity; for each instance every algorithm produces a fault-tolerant
schedule plus its fault-free (ε = 0) reference, the schedule is replayed
under a shared random crash scenario, and the paper's metrics (normalized
latency, upper bound, crash latency, overhead) are averaged.

All randomness derives from ``config.base_seed`` via labelled child seeds,
so any single instance of any campaign can be regenerated in isolation —
and, crucially, every ``(granularity, rep)`` work unit is independent of
the others.  That purity is what the campaign stack builds on: a
:class:`~repro.experiments.grid.ScenarioGrid` describes the units, any
:class:`~repro.experiments.executors.Executor` runs them (inline, process
pool, or TCP workers on other machines), and a
:class:`~repro.experiments.store.RunStore` records the
:class:`RepResult` rows — :class:`CampaignResult` is the aggregated view
over those rows, bit-identical whichever executor produced them.

This module owns the science (generation, :func:`run_rep`, aggregation);
``repro.experiments.campaign`` owns the orchestration.
"""

from __future__ import annotations

import math
import warnings
from collections.abc import Mapping
from dataclasses import dataclass, field
from typing import Callable, Optional, Union

import numpy as np

from repro.comm.base import NetworkModel
from repro.comm.oneport import OnePortNetwork
from repro.comm.routed import RoutedOnePortNetwork
from repro.core.caft import caft
from repro.dag.analysis import min_critical_path
from repro.dag.generators import random_dag
from repro.experiments.config import ExperimentConfig
from repro.fault.model import FailureScenario, build_failure_model
from repro.fault.scenarios import random_crash_scenario
from repro.fault.simulator import replay
from repro.platform.heterogeneity import (
    range_exec_matrix,
    scale_to_granularity,
    uniform_delay_platform,
)
from repro.platform.instance import ProblemInstance
from repro.platform.topology import Topology, make_topology, randomize_link_delays
from repro.schedule.bounds import latency_upper_bound
from repro.schedule.schedule import Schedule
from repro.schedulers.ftbar import ftbar
from repro.schedulers.ftsa import ftsa
from repro.utils.errors import ExecutionFailedError
from repro.utils.rng import RngStream

from repro.experiments.registry import SCHEDULERS, register_scheduler

# The paper's algorithms, registered once in the SCHEDULERS registry —
# the source of truth every campaign validates its ``algorithms`` tuple
# against.  The fault-free reference is the default ε = 0 form of each
# runner (which keeps caft-paper's literal locking).
if "caft" not in SCHEDULERS:
    register_scheduler(
        "caft",
        lambda inst, eps, rng, model, fast=True: caft(
            inst, eps, model=model, rng=rng, fast=fast
        ),
    )
    register_scheduler(
        "caft-paper",
        lambda inst, eps, rng, model, fast=True: caft(
            inst, eps, model=model, locking="paper", rng=rng, fast=fast
        ),
    )
    register_scheduler(
        "ftsa",
        lambda inst, eps, rng, model, fast=True: ftsa(
            inst, eps, model=model, rng=rng, fast=fast
        ),
    )
    register_scheduler(
        "ftbar",
        lambda inst, eps, rng, model, fast=True: ftbar(
            inst, eps, model=model, rng=rng, fast=fast
        ),
    )


class _RunnerView(Mapping):
    """Live read-only mapping over one field of the scheduler registry.

    Keeps the historical ``ALGORITHM_RUNNERS[name](...)`` /
    ``FAULTFREE_RUNNERS[name](...)`` call sites working while
    ``register_scheduler`` remains the single way to add entries —
    registered algorithms appear here automatically.
    """

    def __init__(self, attr: str) -> None:
        self._attr = attr

    def __getitem__(self, name: str) -> Callable[..., Schedule]:
        # KeyError, not CampaignConfigError: this is the dict protocol
        # (``in``/``.get()`` depend on it), and what the historical dicts
        # raised.  Spec validation reports unknown names before any run.
        if name not in SCHEDULERS:
            raise KeyError(name)
        return getattr(SCHEDULERS.get(name, key="algorithms"), self._attr)

    def __contains__(self, name: object) -> bool:
        return name in SCHEDULERS

    def __iter__(self):
        return iter(SCHEDULERS.names())

    def __len__(self) -> int:
        return len(SCHEDULERS)


#: algorithm name -> callable(instance, epsilon, rng, model, fast) -> Schedule
ALGORITHM_RUNNERS: Mapping[str, Callable[..., Schedule]] = _RunnerView("runner")

#: fault-free reference of each algorithm (the paper plots FaultFree-CAFT
#: and FaultFree-FTBAR; FTSA's fault-free run coincides with CAFT's).
FAULTFREE_RUNNERS: Mapping[str, Callable[..., Schedule]] = _RunnerView("faultfree")


def generate_topology(
    config: ExperimentConfig, granularity: float, rep: int
) -> Optional[Topology]:
    """Interconnect of instance ``rep`` (``None`` for clique configs).

    Routed campaigns draw per-link delays from ``config.delay_range``
    with the same labelled seed the clique path feeds its platform
    generator, so the topology is a pure function of
    ``(config, granularity, rep)`` like everything else.
    """
    if config.topology is None:
        return None
    stream = RngStream(config.base_seed)
    base = make_topology(config.topology, config.num_procs)
    return randomize_link_delays(
        base,
        config.delay_range,
        stream.rng("platform", config.name, granularity, rep),
    )


def campaign_network(
    config: ExperimentConfig,
    instance: ProblemInstance,
    topology: Optional[Topology],
) -> Union[str, NetworkModel]:
    """The model spec every algorithm of one rep schedules against.

    A plain model name for the default scenarios; a configured
    :class:`NetworkModel` for the §7 routed topologies and the
    insertion-policy ablation (``resolve_network`` resets it between
    algorithms and clones it for crash replays).
    """
    if config.topology is not None:
        return RoutedOnePortNetwork(topology)
    if config.port_policy != "append":
        return OnePortNetwork(instance.platform, policy=config.port_policy)
    return config.model


def generate_instance(
    config: ExperimentConfig,
    granularity: float,
    rep: int,
    topology: Optional[Topology] = None,
) -> ProblemInstance:
    """Instance ``rep`` of the data point at ``granularity`` (deterministic).

    For routed configs the platform is the topology's effective
    route-delay matrix; ``topology`` short-circuits the rebuild when the
    caller already generated it.
    """
    stream = RngStream(config.base_seed)
    g_rng = stream.rng("graph", config.name, granularity, rep)
    v = int(g_rng.integers(config.task_range[0], config.task_range[1] + 1))
    graph = random_dag(
        v,
        degree_range=config.degree_range,
        volume_range=config.volume_range,
        rng=g_rng,
    )
    if topology is None:
        topology = generate_topology(config, granularity, rep)
    if topology is not None:
        platform = topology.to_platform()
    else:
        platform = uniform_delay_platform(
            config.num_procs,
            delay_range=config.delay_range,
            rng=stream.rng("platform", config.name, granularity, rep),
        )
    cost_rng = stream.rng("costs", config.name, granularity, rep)
    base = cost_rng.uniform(
        config.base_cost_range[0], config.base_cost_range[1], size=v
    )
    exec_cost = range_exec_matrix(
        base, config.num_procs, heterogeneity=config.heterogeneity, rng=cost_rng
    )
    exec_cost = scale_to_granularity(graph, platform, exec_cost, granularity)
    return ProblemInstance(graph, platform, exec_cost)


@dataclass
class AlgorithmPoint:
    """Accumulated per-algorithm metrics at one granularity."""

    norm_latency: list[float] = field(default_factory=list)
    norm_upper: list[float] = field(default_factory=list)
    norm_crash: list[float] = field(default_factory=list)
    overhead_0crash: list[float] = field(default_factory=list)
    overhead_crash: list[float] = field(default_factory=list)
    messages: list[float] = field(default_factory=list)
    crash_failures: int = 0  # replays that did not tolerate the scenario

    def mean(self, attr: str) -> float:
        values = getattr(self, attr)
        return float(np.mean(values)) if values else math.nan


@dataclass
class PointResult:
    """Aggregated metrics of one (granularity) data point."""

    granularity: float
    per_algorithm: dict[str, AlgorithmPoint]
    faultfree_norm: dict[str, float]

    def row(self) -> dict[str, float]:
        """Flatten to a CSV-ready mapping."""
        row: dict[str, float] = {"granularity": self.granularity}
        for algo, point in self.per_algorithm.items():
            row[f"{algo}_latency0"] = point.mean("norm_latency")
            row[f"{algo}_upper"] = point.mean("norm_upper")
            row[f"{algo}_crash"] = point.mean("norm_crash")
            row[f"{algo}_overhead0"] = point.mean("overhead_0crash")
            row[f"{algo}_overhead_crash"] = point.mean("overhead_crash")
            row[f"{algo}_messages"] = point.mean("messages")
            row[f"{algo}_crash_failures"] = point.crash_failures
        for algo, value in self.faultfree_norm.items():
            row[f"faultfree_{algo}"] = value
        return row


@dataclass(frozen=True)
class RepResult:
    """Metrics of one ``(granularity, rep)`` work unit (picklable).

    ``metrics[algo]`` holds ``norm_latency``, ``norm_upper``,
    ``overhead_0crash``, ``messages`` and — when the crash replay
    survived — ``norm_crash``/``overhead_crash`` (``None`` otherwise).
    """

    granularity: float
    rep: int
    faultfree_norm: dict[str, float]
    metrics: dict[str, dict[str, Optional[float]]]


def flatten_rep_result(
    tags: dict[str, str], result: RepResult
) -> list[dict[str, object]]:
    """One scenario-tagged row per algorithm of one rep result.

    The single definition of the per-rep row schema — both
    ``RunStore.rep_rows()`` and ``CampaignResult.rep_rows()`` flatten
    through here, so stats/compare see identical rows whichever side fed
    them.
    """
    return [
        {
            **tags,
            "granularity": result.granularity,
            "rep": result.rep,
            "algorithm": algo,
            "faultfree_norm": result.faultfree_norm[algo],
            **metrics,
        }
        for algo, metrics in result.metrics.items()
    ]


def run_rep(config: ExperimentConfig, granularity: float, rep: int) -> RepResult:
    """Run every algorithm on instance ``rep`` of one data point.

    The unit of parallelism *and* of distribution: all randomness comes
    from labelled child seeds of ``config.base_seed``, so the result is a
    pure function of ``(config, granularity, rep)`` — independent of
    which process (or machine) runs it and of every other rep.

    Online configs (``config.arrival`` set) reinterpret ``granularity``
    as the point's arrival rate and dispatch to the online harness —
    same unit identity, same purity contract, different metric columns.
    """
    if config.arrival is not None:
        from repro.experiments.online import run_online_rep

        return run_online_rep(config, granularity, rep)
    stream = RngStream(config.base_seed)
    topology = generate_topology(config, granularity, rep)
    inst = generate_instance(config, granularity, rep, topology=topology)
    model = campaign_network(config, inst, topology)
    cp = min_critical_path(inst)
    if config.failure is None:
        scenario = random_crash_scenario(
            config.num_procs,
            config.crashes,
            rng=stream.rng("crash", config.name, granularity, rep),
        )
    else:
        # The i.i.d. spec makes exactly random_crash_scenario's RNG
        # calls, so failure={"kind": "iid"} rows equal failure=None rows
        # bit for bit (pinned in tests/experiments/test_online.py).
        fmodel = build_failure_model(
            config.failure, config.num_procs, config.topology
        )
        scenario = fmodel.draw_scenario(
            config.num_procs,
            config.crashes,
            stream.rng("crash", config.name, granularity, rep),
        )
    algo_seed = stream.seed("algo", config.name, granularity, rep)
    fast = config.fast

    # Fault-free CAFT is the overhead reference CAFT* of the paper.
    reference = FAULTFREE_RUNNERS["caft"](inst, algo_seed, model, fast)
    ref_latency = reference.latency()
    faultfree_norm: dict[str, float] = {}
    for name in config.algorithms:
        if name == "caft":
            ff = reference
        else:
            ff = FAULTFREE_RUNNERS[name](inst, algo_seed, model, fast)
        faultfree_norm[name] = ff.latency() / cp

    metrics: dict[str, dict[str, Optional[float]]] = {}
    for name in config.algorithms:
        sched = ALGORITHM_RUNNERS[name](
            inst, config.epsilon, algo_seed, model, fast
        )
        lat = sched.latency()
        row: dict[str, Optional[float]] = {
            "norm_latency": lat / cp,
            "norm_upper": latency_upper_bound(sched) / cp,
            "overhead_0crash": 100.0 * (lat - ref_latency) / ref_latency,
            "messages": float(sched.message_count()),
            "norm_crash": None,
            "overhead_crash": None,
        }
        try:
            crash_lat = replay(sched, scenario).latency()
            row["norm_crash"] = crash_lat / cp
            row["overhead_crash"] = 100.0 * (crash_lat - ref_latency) / ref_latency
        except ExecutionFailedError:
            # Only possible for non-robust variants (caft-paper).
            pass
        metrics[name] = row
    return RepResult(
        granularity=granularity,
        rep=rep,
        faultfree_norm=faultfree_norm,
        metrics=metrics,
    )


def _aggregate_point(
    config: ExperimentConfig, granularity: float, reps: list[RepResult]
) -> PointResult:
    """Fold per-rep results (in rep order) into one data point."""
    per_algo = {name: AlgorithmPoint() for name in config.algorithms}
    ff_norm_acc: dict[str, list[float]] = {name: [] for name in config.algorithms}
    for rep_result in reps:
        for name in config.algorithms:
            ff_norm_acc[name].append(rep_result.faultfree_norm[name])
            row = rep_result.metrics[name]
            point = per_algo[name]
            point.norm_latency.append(row["norm_latency"])
            point.norm_upper.append(row["norm_upper"])
            point.overhead_0crash.append(row["overhead_0crash"])
            point.messages.append(row["messages"])
            if row["norm_crash"] is None:
                point.crash_failures += 1
            else:
                point.norm_crash.append(row["norm_crash"])
                point.overhead_crash.append(row["overhead_crash"])
    return PointResult(
        granularity=granularity,
        per_algorithm=per_algo,
        faultfree_norm={k: float(np.mean(v)) for k, v in ff_norm_acc.items()},
    )


def aggregate_point(
    config: ExperimentConfig, granularity: float, reps: list[RepResult]
):
    """Fold per-rep results into one data point (offline or online).

    The single aggregation dispatch: offline configs produce the
    figures' :class:`PointResult`; online configs an
    :class:`~repro.experiments.online.OnlinePoint` (same ``granularity``
    + ``row()`` surface, arrival-rate semantics).
    """
    if config.arrival is not None:
        from repro.experiments.online import aggregate_online_point

        return aggregate_online_point(config, granularity, reps)
    return _aggregate_point(config, granularity, reps)


def run_point(
    config: ExperimentConfig,
    granularity: float,
    progress: Optional[Callable[[str], None]] = None,
) -> PointResult:
    """Run every algorithm over ``config.num_graphs`` instances at one point.

    Seeds are labelled per ``(config.name, granularity, rep)``, never by
    the sweep tuple, so a single-point campaign reproduces exactly the
    rows the full sweep would produce at that granularity.
    """
    reps = []
    for rep in range(config.num_graphs):
        reps.append(run_rep(config, granularity, rep))
        if progress is not None:
            progress(
                f"[{config.name}] g={granularity:g} rep {rep + 1}/{config.num_graphs}"
            )
    return aggregate_point(config, granularity, reps)


@dataclass
class CampaignResult:
    """The aggregated view over one scenario's stored rep results.

    Holds the full per-rep resolution (``reps``, canonical granularity
    then rep order) and aggregates data points lazily — the same object
    whether the campaign ran inline, on a process pool, on TCP workers,
    or was stitched back together from a resumed store.  ``rows()``
    carries the scenario columns (``network``/``topology``/``policy``)
    so multi-scenario sweeps stay distinguishable in one CSV.
    """

    config: ExperimentConfig
    reps: list[RepResult]
    _points: Optional[list[PointResult]] = field(
        default=None, repr=False, compare=False
    )
    # Lazy caches over the (frozen) RepResults, like _points: report and
    # SVG generation call rows()/rep_rows() repeatedly, and re-flattening
    # a million-row campaign per call is pure waste.  Callers get copies,
    # so cached lists are never aliased to mutable state.
    _rows_cache: Optional[list[dict]] = field(default=None, repr=False, compare=False)
    _rep_rows_cache: Optional[list[dict]] = field(
        default=None, repr=False, compare=False
    )

    @property
    def points(self) -> list[PointResult]:
        """Aggregated data points, one per granularity of the sweep."""
        if self._points is None:
            by_g: dict[float, list[RepResult]] = {
                g: [] for g in self.config.granularities
            }
            for rep in self.reps:
                by_g[rep.granularity].append(rep)
            for g, reps in by_g.items():
                reps.sort(key=lambda r: r.rep)
            self._points = [
                aggregate_point(self.config, g, by_g[g])
                for g in self.config.granularities
                if by_g[g]
            ]
        return self._points

    def scenario_columns(self) -> dict[str, str]:
        """The tags distinguishing this scenario in merged reports."""
        _, model, topology, policy = self.config.scenario_key()
        return {"network": model, "topology": topology, "policy": policy}

    def rows(self) -> list[dict[str, object]]:
        """CSV-ready aggregated rows, scenario-tagged (cached)."""
        if self._rows_cache is None:
            tags = self.scenario_columns()
            out: list[dict[str, object]] = []
            for point in self.points:
                row = point.row()
                merged: dict[str, object] = {"granularity": row.pop("granularity")}
                merged.update(tags)
                merged.update(row)
                out.append(merged)
            self._rows_cache = out
        return [dict(row) for row in self._rows_cache]

    def rep_rows(self) -> list[dict[str, object]]:
        """Per-rep scenario-tagged rows (one per unit × algorithm).

        The full-resolution data the aggregated panels are computed
        from; what the paired statistics in ``experiments.stats`` and
        the campaign comparisons in ``experiments.compare`` consume.
        """
        if self._rep_rows_cache is None:
            name, model, topology, policy = self.config.scenario_key()
            tags = {
                "config": name,
                "network": model,
                "topology": topology,
                "policy": policy,
            }
            rows: list[dict[str, object]] = []
            for rep in self.reps:
                rows.extend(flatten_rep_result(tags, rep))
            self._rep_rows_cache = rows
        return [dict(row) for row in self._rep_rows_cache]

    def series(self, column: str) -> list[float]:
        """One named column across granularities (e.g. ``"caft_latency0"``)."""
        return [row.get(column, math.nan) for row in self.rows()]

    @classmethod
    def from_store(
        cls, store, config: Optional[ExperimentConfig] = None
    ) -> "CampaignResult":
        """Rebuild the result of one scenario from a (possibly resumed)
        store.  ``config`` defaults to the store manifest's single
        scenario; multi-scenario stores must name which one.
        """
        from repro.experiments.grid import ScenarioGrid, WorkUnit

        if config is None:
            grid = store.read_manifest_grid()
            if len(grid.configs) != 1:
                raise ValueError(
                    f"store holds {len(grid.configs)} scenarios; pass config="
                )
            config = grid.configs[0]
        results = store.results()
        reps = []
        for g in config.granularities:
            for rep in range(config.num_graphs):
                unit = WorkUnit(config, g, rep)
                if unit.unit_id in results:
                    reps.append(results[unit.unit_id])
        return cls(config=config, reps=reps)


class ParallelHarness:
    """Deprecated multi-process campaign runner (compatibility shim).

    .. deprecated::
        Describe campaigns as data instead: a
        :class:`repro.experiments.api.CampaignSpec` with
        ``executor={"kind": "process", "workers": N}`` run through
        :class:`repro.experiments.api.Campaign` — or pass
        ``workers=N`` straight to :func:`run_campaign`.

    The historical front end of the process-pool path; the pool itself
    now lives in :class:`repro.experiments.executors.ProcessExecutor`
    and this class simply delegates, keeping the clamp semantics and the
    ``run_campaign`` method callers rely on.
    """

    def __init__(self, workers: Optional[int] = None, clamp: bool = True) -> None:
        from repro.experiments.executors.process import effective_workers

        warnings.warn(
            "ParallelHarness is deprecated; describe the campaign with "
            "repro.experiments.api.CampaignSpec (executor kind 'process') "
            "or call run_campaign(workers=N)",
            DeprecationWarning,
            stacklevel=2,
        )
        self.workers = effective_workers(workers, clamp)

    def run_campaign(
        self,
        config: ExperimentConfig,
        progress: Optional[Callable[[str], None]] = None,
    ) -> CampaignResult:
        from repro.experiments.campaign import run_campaign
        from repro.experiments.executors.process import ProcessExecutor

        # self.workers is already clamped per this instance's settings.
        executor = ProcessExecutor(self.workers, clamp=False)
        return run_campaign(config, progress=progress, executor=executor)


def run_campaign(
    config: ExperimentConfig,
    progress: Optional[Callable[[str], None]] = None,
    workers: Optional[int] = None,
    executor=None,
    store=None,
    resume: bool = False,
) -> CampaignResult:
    """Run the full granularity sweep of one figure.

    Delegates to :func:`repro.experiments.campaign.run_campaign` (kept
    here because the harness has always been the import site).
    ``workers`` > 1 distributes the campaign's work units over that many
    processes; ``executor=``/``store=``/``resume=`` expose the
    distributed and resumable paths.  The result is identical whichever
    way the units ran.
    """
    from repro.experiments.campaign import run_campaign as _run_campaign

    return _run_campaign(
        config,
        progress=progress,
        workers=workers,
        executor=executor,
        store=store,
        resume=resume,
    )
