"""Side-by-side algorithm comparisons.

Two granularities of the same question:

* :func:`compare_algorithms` — "which scheduler should I use for *this*
  application on *this* cluster": run every algorithm on one instance,
  collect the full metric set (latency, bounds, messages, utilization,
  crash behaviour) and print one table.  Backs the
  ``repro-ftsched compare`` subcommand.
* :func:`campaign_comparison` — the same verdict over a whole stored
  campaign: reads the scenario-tagged per-rep rows a
  :class:`~repro.experiments.store.RunStore` (or
  :class:`~repro.experiments.harness.CampaignResult`) holds and reports
  paired statistics per scenario, so multi-scenario sweeps produce one
  honest table instead of eyeballed averages.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Mapping, Optional, Sequence, Union

from repro.core.caft import caft
from repro.core.caft_batch import caft_batch
from repro.fault.montecarlo import monte_carlo_crashes
from repro.platform.instance import ProblemInstance
from repro.schedule.bounds import latency_upper_bound
from repro.schedule.metrics import normalized_latency
from repro.schedule.schedule import Schedule
from repro.schedule.utilization import replication_traffic_share
from repro.schedulers.ftbar import ftbar
from repro.schedulers.ftsa import ftsa
from repro.schedulers.heft import heft
from repro.utils.rng import RngLike

#: name -> callable(instance, epsilon, model, rng) -> Schedule
COMPARABLE: dict[str, Callable[..., Schedule]] = {
    "heft": lambda inst, eps, model, rng: heft(inst, model=model, rng=rng),
    "ftsa": lambda inst, eps, model, rng: ftsa(inst, eps, model=model, rng=rng),
    "ftbar": lambda inst, eps, model, rng: ftbar(inst, eps, model=model, rng=rng),
    "caft": lambda inst, eps, model, rng: caft(inst, eps, model=model, rng=rng),
    "caft-paper": lambda inst, eps, model, rng: caft(
        inst, eps, model=model, locking="paper", rng=rng
    ),
    "caft-batch": lambda inst, eps, model, rng: caft_batch(
        inst, eps, model=model, rng=rng
    ),
}


@dataclass(frozen=True)
class ComparisonRow:
    """All headline metrics of one algorithm on one instance."""

    algorithm: str
    latency: float
    normalized: float
    upper_bound: float
    messages: int
    replication_share: float
    survival_rate: float  # under `crashes` sampled crash scenarios
    mean_crash_latency: float


def compare_algorithms(
    instance: ProblemInstance,
    epsilon: int,
    algorithms: Optional[Sequence[str]] = None,
    model: str = "oneport",
    crashes: int = 1,
    samples: int = 25,
    rng: RngLike = 0,
) -> list[ComparisonRow]:
    """Run each algorithm and collect the comparison metrics.

    ``heft`` is automatically skipped when ``epsilon > 0`` unless
    explicitly requested (it provides no fault tolerance).
    """
    if algorithms is None:
        algorithms = [a for a in COMPARABLE if a != "heft" or epsilon == 0]
    rows = []
    for name in algorithms:
        eps = 0 if name == "heft" else epsilon
        sched = COMPARABLE[name](instance, eps, model, rng)
        if eps > 0 and crashes > 0:
            mc = monte_carlo_crashes(sched, min(crashes, eps), samples=samples, rng=rng)
            survival = mc.survival_rate
            crash_lat = mc.mean_latency
        else:
            survival = 1.0 if eps == 0 else float("nan")
            crash_lat = float("nan")
        rows.append(
            ComparisonRow(
                algorithm=name,
                latency=sched.latency(),
                normalized=normalized_latency(sched),
                upper_bound=latency_upper_bound(sched),
                messages=sched.message_count(),
                replication_share=replication_traffic_share(sched),
                survival_rate=survival,
                mean_crash_latency=crash_lat,
            )
        )
    return rows


def _rep_rows(source) -> list[dict]:
    """Normalize a rows source: a store, a campaign result, or raw rows."""
    if hasattr(source, "rep_rows"):
        return source.rep_rows()
    return list(source)


@dataclass(frozen=True)
class CampaignComparisonRow:
    """One algorithm × scenario line of a campaign comparison."""

    scenario: str
    algorithm: str
    n: int
    mean: float
    win_rate_vs_baseline: float  # NaN for the baseline row itself
    geomean_ratio_vs_baseline: float
    significant: bool


def campaign_comparison(
    source: Union[Sequence[Mapping], object],
    baseline: str = "caft",
    metric: str = "norm_latency",
) -> list[CampaignComparisonRow]:
    """Per-scenario paired comparison of every algorithm against ``baseline``.

    ``source`` is anything with ``rep_rows()`` (a ``RunStore``, a
    ``CampaignResult``) or the rows themselves.  Rows are paired on the
    shared random instances, so the win rates and ratios are the
    trustworthy kind even at small repetition counts.

    A source carrying the streaming-query surface (the columnar backend's
    ``scenario_algorithms``/``series_values``) is never flattened: the
    scenario/algorithm discovery and every per-scenario series run as
    pushed-down aggregate queries, so million-row campaigns compare in
    chunk-bounded memory.
    """
    from repro.experiments.stats import compare_reps, rep_series, summarize_series

    discover = getattr(source, "scenario_algorithms", None)
    if discover is not None:
        scenarios, algorithms = discover()
        # rep_series/compare_reps dispatch to the source's fast paths
        rows: Union[Sequence[Mapping], object] = source
    else:
        rows = _rep_rows(source)
        scenarios = {}
        algorithms = []
        for row in rows:
            key = "/".join(
                (row["config"], row["network"], row["topology"], row["policy"])
            )
            scenarios.setdefault(key, {k: row[k] for k in
                                       ("config", "network", "topology", "policy")})
            if row["algorithm"] not in algorithms:
                algorithms.append(row["algorithm"])
    out: list[CampaignComparisonRow] = []
    for key, where in sorted(scenarios.items()):
        for algo in algorithms:
            series = [
                v for v in rep_series(rows, algo, metric, where=where)
                if not math.isnan(v)
            ]
            stats = summarize_series(series)
            if algo == baseline:
                out.append(
                    CampaignComparisonRow(
                        key, algo, stats.n, stats.mean, math.nan, math.nan, False
                    )
                )
                continue
            paired = compare_reps(rows, algo, baseline, metric, where=where)
            out.append(
                CampaignComparisonRow(
                    scenario=key,
                    algorithm=algo,
                    n=stats.n,
                    mean=stats.mean,
                    win_rate_vs_baseline=paired.win_rate,
                    geomean_ratio_vs_baseline=paired.geomean_ratio,
                    significant=paired.significant,
                )
            )
    return out


def campaign_comparison_table(
    source: Union[Sequence[Mapping], object],
    baseline: str = "caft",
    metric: str = "norm_latency",
) -> str:
    """Render :func:`campaign_comparison` as an aligned ASCII table."""
    lines_rows = campaign_comparison(source, baseline=baseline, metric=metric)
    header = (
        f"{'scenario':38s} {'algorithm':12s} {'n':>4} {metric:>14} "
        f"{'win%':>6} {'ratio':>6} {'sig':>4}"
    )
    lines = [header, "-" * len(header)]
    for r in lines_rows:
        win = "  -  " if math.isnan(r.win_rate_vs_baseline) else (
            f"{100 * r.win_rate_vs_baseline:4.0f}%"
        )
        ratio = "  -  " if math.isnan(r.geomean_ratio_vs_baseline) else (
            f"{r.geomean_ratio_vs_baseline:6.3f}"
        )
        sig = "  * " if r.significant else "    "
        lines.append(
            f"{r.scenario:38s} {r.algorithm:12s} {r.n:>4d} {r.mean:>14.3f} "
            f"{win:>6} {ratio:>6} {sig}"
        )
    lines.append(f"(win%/ratio vs {baseline}; * = 95% CI excludes zero)")
    return "\n".join(lines)


def comparison_table(rows: Sequence[ComparisonRow]) -> str:
    """Render comparison rows as an aligned ASCII table."""
    header = (
        f"{'algorithm':12s} {'latency':>9} {'SLR':>6} {'bound':>9} "
        f"{'msgs':>6} {'repl%':>6} {'surv':>6} {'crash-lat':>10}"
    )
    lines = [header, "-" * len(header)]
    for r in rows:
        lines.append(
            f"{r.algorithm:12s} {r.latency:>9.1f} {r.normalized:>6.2f} "
            f"{r.upper_bound:>9.1f} {r.messages:>6d} "
            f"{100 * r.replication_share:>5.1f}% "
            f"{r.survival_rate:>6.1%} {r.mean_crash_latency:>10.1f}"
        )
    return "\n".join(lines)
