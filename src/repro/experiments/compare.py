"""Side-by-side algorithm comparison on a single instance.

The quickest way to answer "which scheduler should I use for *this*
application on *this* cluster": run every algorithm, collect the full
metric set (latency, bounds, messages, utilization, crash behaviour) and
print one table.  Backs the ``repro-ftsched compare`` subcommand.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from repro.core.caft import caft
from repro.core.caft_batch import caft_batch
from repro.fault.montecarlo import monte_carlo_crashes
from repro.platform.instance import ProblemInstance
from repro.schedule.bounds import latency_upper_bound
from repro.schedule.metrics import normalized_latency
from repro.schedule.schedule import Schedule
from repro.schedule.utilization import replication_traffic_share
from repro.schedulers.ftbar import ftbar
from repro.schedulers.ftsa import ftsa
from repro.schedulers.heft import heft
from repro.utils.rng import RngLike

#: name -> callable(instance, epsilon, model, rng) -> Schedule
COMPARABLE: dict[str, Callable[..., Schedule]] = {
    "heft": lambda inst, eps, model, rng: heft(inst, model=model, rng=rng),
    "ftsa": lambda inst, eps, model, rng: ftsa(inst, eps, model=model, rng=rng),
    "ftbar": lambda inst, eps, model, rng: ftbar(inst, eps, model=model, rng=rng),
    "caft": lambda inst, eps, model, rng: caft(inst, eps, model=model, rng=rng),
    "caft-paper": lambda inst, eps, model, rng: caft(
        inst, eps, model=model, locking="paper", rng=rng
    ),
    "caft-batch": lambda inst, eps, model, rng: caft_batch(
        inst, eps, model=model, rng=rng
    ),
}


@dataclass(frozen=True)
class ComparisonRow:
    """All headline metrics of one algorithm on one instance."""

    algorithm: str
    latency: float
    normalized: float
    upper_bound: float
    messages: int
    replication_share: float
    survival_rate: float  # under `crashes` sampled crash scenarios
    mean_crash_latency: float


def compare_algorithms(
    instance: ProblemInstance,
    epsilon: int,
    algorithms: Optional[Sequence[str]] = None,
    model: str = "oneport",
    crashes: int = 1,
    samples: int = 25,
    rng: RngLike = 0,
) -> list[ComparisonRow]:
    """Run each algorithm and collect the comparison metrics.

    ``heft`` is automatically skipped when ``epsilon > 0`` unless
    explicitly requested (it provides no fault tolerance).
    """
    if algorithms is None:
        algorithms = [a for a in COMPARABLE if a != "heft" or epsilon == 0]
    rows = []
    for name in algorithms:
        eps = 0 if name == "heft" else epsilon
        sched = COMPARABLE[name](instance, eps, model, rng)
        if eps > 0 and crashes > 0:
            mc = monte_carlo_crashes(sched, min(crashes, eps), samples=samples, rng=rng)
            survival = mc.survival_rate
            crash_lat = mc.mean_latency
        else:
            survival = 1.0 if eps == 0 else float("nan")
            crash_lat = float("nan")
        rows.append(
            ComparisonRow(
                algorithm=name,
                latency=sched.latency(),
                normalized=normalized_latency(sched),
                upper_bound=latency_upper_bound(sched),
                messages=sched.message_count(),
                replication_share=replication_traffic_share(sched),
                survival_rate=survival,
                mean_crash_latency=crash_lat,
            )
        )
    return rows


def comparison_table(rows: Sequence[ComparisonRow]) -> str:
    """Render comparison rows as an aligned ASCII table."""
    header = (
        f"{'algorithm':12s} {'latency':>9} {'SLR':>6} {'bound':>9} "
        f"{'msgs':>6} {'repl%':>6} {'surv':>6} {'crash-lat':>10}"
    )
    lines = [header, "-" * len(header)]
    for r in rows:
        lines.append(
            f"{r.algorithm:12s} {r.latency:>9.1f} {r.normalized:>6.2f} "
            f"{r.upper_bound:>9.1f} {r.messages:>6d} "
            f"{100 * r.replication_share:>5.1f}% "
            f"{r.survival_rate:>6.1%} {r.mean_crash_latency:>10.1f}"
        )
    return "\n".join(lines)
