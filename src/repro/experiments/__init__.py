"""Experiment campaigns reproducing the paper's §6 evaluation.

Structured as three independent layers — description
(:class:`ScenarioGrid` expanding figure × scenario × granularity × rep
axes into :class:`WorkUnit`\\ s), execution (the :class:`Executor`
implementations: inline, process pool, TCP master/worker), and results
(the append-only :class:`RunStore` every executor writes scenario-tagged
rows into, from which :class:`CampaignResult` views are rebuilt).
Campaigns are therefore distributable across machines and resumable
after a crash, with bit-identical rows whichever path ran them.

The front door is the declarative API (:mod:`repro.experiments.api`): a
serializable :class:`CampaignSpec` describing the whole campaign —
scenario axes, executor, store backend, lease policy, reps, seeds —
run through the :class:`Campaign` facade, with every name resolving via
the pluggable registries in :mod:`repro.experiments.registry`.  The
paper's figures ship as spec files under ``repro/experiments/specs/``.
See ``API.md`` for the schema and the migration table.
"""

from repro.experiments.config import (
    ExperimentConfig,
    FIGURES,
    GRANULARITY_SWEEP_A,
    GRANULARITY_SWEEP_B,
    PORT_POLICIES,
    default_num_graphs,
)
from repro.experiments.registry import (
    EXECUTORS,
    SCHEDULERS,
    STORES,
    executor_names,
    network_names,
    register_executor,
    register_network,
    register_scheduler,
    register_store,
    register_topology,
    scheduler_names,
    store_names,
    topology_names,
)
from repro.experiments.grid import (
    ScenarioGrid,
    WorkUnit,
)
from repro.experiments.harness import (
    generate_instance,
    run_rep,
    run_point,
    run_campaign,
    CampaignResult,
    PointResult,
    RepResult,
    ParallelHarness,
    ALGORITHM_RUNNERS,
    FAULTFREE_RUNNERS,
)
from repro.experiments.store import (
    RunStore,
    StoreError,
    canonical_row_key,
    make_store,
    open_store,
    read_store_backend,
    result_to_dict,
    result_from_dict,
    row_matches,
)
from repro.experiments.columnar import (
    ColumnarStore,
)
from repro.experiments.query import (
    StoreCampaignView,
    aggregate_points,
)
from repro.experiments.executors import (
    Executor,
    LeasePolicy,
    SerialExecutor,
    ProcessExecutor,
    SocketExecutor,
    SpeculationPolicy,
    make_executor,
    run_worker,
    EXECUTOR_NAMES,
)
from repro.experiments.campaign import (
    run_grid,
    resume_campaign,
)
from repro.experiments.api import (
    Campaign,
    CampaignConfigError,
    CampaignHandle,
    CampaignSpec,
    ExecutorSpec,
    ProgressEvent,
    StoreSpec,
    apply_overrides,
    figure_spec,
    parse_override,
    shipped_spec_paths,
)
from repro.experiments.service import (
    CampaignService,
    ServiceClient,
    ServiceExecutor,
    ServiceJobHandle,
)
from repro.experiments.figures import (
    run_figure,
    figure1,
    figure2,
    figure3,
    figure4,
    figure5,
    figure6,
    check_shape,
    ShapeReport,
)
from repro.experiments.stats import (
    SeriesStats,
    summarize_series,
    paired_mean_difference,
    dominates,
    win_rate,
    geometric_mean_ratio,
    rep_series,
    paired_rep_series,
    compare_reps,
    PairedComparison,
)
from repro.experiments.svg import (
    SvgLineChart,
    campaign_to_charts,
    write_html_report,
)
from repro.experiments.extra import (
    heterogeneity_sweep,
    platform_size_sweep,
    sweep_table,
)
from repro.experiments.compare import (
    ComparisonRow,
    compare_algorithms,
    comparison_table,
    campaign_comparison,
    campaign_comparison_table,
    CampaignComparisonRow,
    COMPARABLE,
)
from repro.experiments.report import (
    render_figure,
    panel_a,
    panel_b,
    panel_c,
    messages_table,
    scenario_label,
    write_csv,
)

__all__ = [
    "ExperimentConfig",
    "FIGURES",
    "GRANULARITY_SWEEP_A",
    "GRANULARITY_SWEEP_B",
    "PORT_POLICIES",
    "default_num_graphs",
    "Campaign",
    "CampaignConfigError",
    "CampaignHandle",
    "CampaignSpec",
    "ExecutorSpec",
    "ProgressEvent",
    "StoreSpec",
    "apply_overrides",
    "figure_spec",
    "parse_override",
    "shipped_spec_paths",
    "CampaignService",
    "ServiceClient",
    "ServiceExecutor",
    "ServiceJobHandle",
    "SCHEDULERS",
    "EXECUTORS",
    "STORES",
    "register_scheduler",
    "register_executor",
    "register_store",
    "register_network",
    "register_topology",
    "scheduler_names",
    "executor_names",
    "store_names",
    "network_names",
    "topology_names",
    "ScenarioGrid",
    "WorkUnit",
    "generate_instance",
    "run_rep",
    "run_point",
    "run_campaign",
    "run_grid",
    "resume_campaign",
    "CampaignResult",
    "PointResult",
    "RepResult",
    "ParallelHarness",
    "ALGORITHM_RUNNERS",
    "FAULTFREE_RUNNERS",
    "RunStore",
    "ColumnarStore",
    "StoreError",
    "StoreCampaignView",
    "aggregate_points",
    "canonical_row_key",
    "make_store",
    "open_store",
    "read_store_backend",
    "result_to_dict",
    "result_from_dict",
    "row_matches",
    "Executor",
    "LeasePolicy",
    "SerialExecutor",
    "ProcessExecutor",
    "SocketExecutor",
    "SpeculationPolicy",
    "make_executor",
    "run_worker",
    "EXECUTOR_NAMES",
    "run_figure",
    "figure1",
    "figure2",
    "figure3",
    "figure4",
    "figure5",
    "figure6",
    "check_shape",
    "ShapeReport",
    "render_figure",
    "panel_a",
    "panel_b",
    "panel_c",
    "messages_table",
    "scenario_label",
    "write_csv",
    "SeriesStats",
    "summarize_series",
    "paired_mean_difference",
    "dominates",
    "win_rate",
    "geometric_mean_ratio",
    "rep_series",
    "paired_rep_series",
    "compare_reps",
    "PairedComparison",
    "SvgLineChart",
    "campaign_to_charts",
    "write_html_report",
    "heterogeneity_sweep",
    "platform_size_sweep",
    "sweep_table",
    "ComparisonRow",
    "compare_algorithms",
    "comparison_table",
    "campaign_comparison",
    "campaign_comparison_table",
    "CampaignComparisonRow",
    "COMPARABLE",
]
