"""Experiment campaigns reproducing the paper's §6 evaluation."""

from repro.experiments.config import (
    ExperimentConfig,
    FIGURES,
    GRANULARITY_SWEEP_A,
    GRANULARITY_SWEEP_B,
    default_num_graphs,
)
from repro.experiments.harness import (
    generate_instance,
    run_point,
    run_campaign,
    CampaignResult,
    PointResult,
    ALGORITHM_RUNNERS,
    FAULTFREE_RUNNERS,
)
from repro.experiments.figures import (
    run_figure,
    figure1,
    figure2,
    figure3,
    figure4,
    figure5,
    figure6,
    check_shape,
    ShapeReport,
)
from repro.experiments.stats import (
    SeriesStats,
    summarize_series,
    paired_mean_difference,
    dominates,
    win_rate,
    geometric_mean_ratio,
)
from repro.experiments.svg import (
    SvgLineChart,
    campaign_to_charts,
    write_html_report,
)
from repro.experiments.extra import (
    heterogeneity_sweep,
    platform_size_sweep,
    sweep_table,
)
from repro.experiments.compare import (
    ComparisonRow,
    compare_algorithms,
    comparison_table,
    COMPARABLE,
)
from repro.experiments.report import (
    render_figure,
    panel_a,
    panel_b,
    panel_c,
    messages_table,
    write_csv,
)

__all__ = [
    "ExperimentConfig",
    "FIGURES",
    "GRANULARITY_SWEEP_A",
    "GRANULARITY_SWEEP_B",
    "default_num_graphs",
    "generate_instance",
    "run_point",
    "run_campaign",
    "CampaignResult",
    "PointResult",
    "ALGORITHM_RUNNERS",
    "FAULTFREE_RUNNERS",
    "run_figure",
    "figure1",
    "figure2",
    "figure3",
    "figure4",
    "figure5",
    "figure6",
    "check_shape",
    "ShapeReport",
    "render_figure",
    "panel_a",
    "panel_b",
    "panel_c",
    "messages_table",
    "write_csv",
    "SeriesStats",
    "summarize_series",
    "paired_mean_difference",
    "dominates",
    "win_rate",
    "geometric_mean_ratio",
    "SvgLineChart",
    "campaign_to_charts",
    "write_html_report",
    "heterogeneity_sweep",
    "platform_size_sweep",
    "sweep_table",
    "ComparisonRow",
    "compare_algorithms",
    "comparison_table",
    "COMPARABLE",
]
