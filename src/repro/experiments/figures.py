"""One entry point per figure of the paper, plus shape checking.

``figure1()``..``figure6()`` regenerate the corresponding figure's data;
:func:`check_shape` asserts the qualitative findings of §6 hold on a
campaign result (who wins, how overheads order, bounds sanity).  The
benchmarks call these and print the paper-style panels.

The figures themselves now live as shipped campaign specs
(``repro/experiments/specs/figure*.json``); :func:`run_figure` and the
``figure1..6`` entry points are thin deprecated shims that load the
spec, apply their keyword overrides, and run the same grid — pinned
bit-identical to the historical keyword path.  New code should build a
:class:`repro.experiments.api.CampaignSpec` directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from repro.experiments.harness import CampaignResult


def run_figure(
    number: int,
    num_graphs: Optional[int] = None,
    progress: Optional[Callable[[str], None]] = None,
    workers: Optional[int] = None,
    fast: Optional[bool] = None,
    model: Optional[str] = None,
    topology: Optional[str] = None,
    policy: Optional[str] = None,
    executor=None,
    store=None,
    resume: bool = False,
) -> CampaignResult:
    """Run the campaign of figure ``number`` (1-6).

    ``workers`` distributes the campaign over a process pool (results are
    identical for any worker count); ``fast=False`` forces the slow trial
    path (the kernel-free baseline used by ``benchmarks/bench_fastpath``).
    ``model``/``topology``/``policy`` re-run the figure under a different
    communication scenario — e.g. ``model="routed-oneport",
    topology="torus"`` for the §7 sparse-interconnect axis, or
    ``policy="insertion"`` for the gap-reuse ablation.  ``executor``
    picks where units run (``"serial"``/``"process"``/``"socket"`` or an
    :class:`~repro.experiments.executors.Executor` instance — e.g. a
    configured :class:`~repro.experiments.executors.SocketExecutor`
    master for multi-machine campaigns); ``store`` persists rows to a
    directory as they complete, and ``resume=True`` skips units already
    in that store.  Results are bit-identical across all of them.

    .. deprecated::
        A thin shim over the shipped figure specs: it loads
        ``repro/experiments/specs/figure<N>.json``, applies the keyword
        overrides, and runs the resulting grid.  New code should use
        :class:`repro.experiments.api.CampaignSpec` /
        :class:`repro.experiments.api.Campaign` directly.
    """
    from dataclasses import replace as _replace

    from repro.experiments.api import figure_spec
    from repro.experiments.campaign import run_grid

    spec = figure_spec(number)
    spec = _replace(
        spec,
        graphs=num_graphs,
        fast=fast,
        network=model,
        topology=topology,
        policy=policy,
    )
    return run_grid(
        spec.grid(),
        store=store,
        executor=executor,
        progress=progress,
        workers=workers,
        resume=resume,
    )[0]


def _figure_entry(number: int, docstring: str) -> Callable[..., CampaignResult]:
    """One paper-figure entry point, with every campaign option threaded
    through explicitly (same signature for all six figures — no ``**kw``
    passthrough, so typos fail loudly and help() tells the truth)."""

    def entry(
        num_graphs: Optional[int] = None,
        progress: Optional[Callable[[str], None]] = None,
        workers: Optional[int] = None,
        fast: Optional[bool] = None,
        model: Optional[str] = None,
        topology: Optional[str] = None,
        policy: Optional[str] = None,
        executor=None,
        store=None,
        resume: bool = False,
    ) -> CampaignResult:
        return run_figure(
            number,
            num_graphs=num_graphs,
            progress=progress,
            workers=workers,
            fast=fast,
            model=model,
            topology=topology,
            policy=policy,
            executor=executor,
            store=store,
            resume=resume,
        )

    entry.__name__ = f"figure{number}"
    entry.__qualname__ = entry.__name__
    entry.__doc__ = docstring + "\n\n    Accepts every :func:`run_figure` option."
    return entry


figure1 = _figure_entry(1, """Sweep A, m=10, ε=1, 1 crash (paper Figure 1).""")
figure2 = _figure_entry(2, """Sweep A, m=10, ε=3, 2 crashes (paper Figure 2).""")
figure3 = _figure_entry(3, """Sweep A, m=20, ε=5, 3 crashes (paper Figure 3).""")
figure4 = _figure_entry(4, """Sweep B, m=10, ε=1, 1 crash (paper Figure 4).""")
figure5 = _figure_entry(5, """Sweep B, m=10, ε=3, 2 crashes (paper Figure 5).""")
figure6 = _figure_entry(6, """Sweep B, m=20, ε=5, 3 crashes (paper Figure 6).""")


@dataclass
class ShapeReport:
    """Outcome of the qualitative checks mirroring §6's findings."""

    checks: dict[str, bool]

    @property
    def ok(self) -> bool:
        return all(self.checks.values())

    def failed(self) -> list[str]:
        return [name for name, passed in self.checks.items() if not passed]


def check_shape(result: CampaignResult, reference: str = "caft-paper") -> ShapeReport:
    """Verify the paper's qualitative findings on a campaign result.

    ``reference`` names the CAFT variant expected to reproduce the paper's
    curves (the literal ``caft-paper`` by default; see EXPERIMENTS.md for
    the robust variant's behaviour).  Checks are on sweep-averaged values
    so single noisy points don't flip them.
    """

    def avg(col: str) -> float:
        return float(np.nanmean(result.series(col)))

    checks = {
        # (1) CAFT beats FTSA — the primary competitor — on latency and
        # overhead with 0 crash (paper §6 headline).
        "caft_beats_ftsa_latency": avg(f"{reference}_latency0") < avg("ftsa_latency0"),
        "caft_overhead_below_ftsa": avg(f"{reference}_overhead0")
        < avg("ftsa_overhead0"),
        # (2) FTBAR: the paper reports CAFT strictly better; our FTBAR
        # reimplementation (schedule pressure without the Ahmad–Kwok
        # duplication pass) turns out *stronger* than the paper's at coarse
        # grain, so the reproduction only requires CAFT within 25% of it on
        # the sweep average (EXPERIMENTS.md, finding 3).
        "caft_within_1p25x_ftbar": avg(f"{reference}_latency0")
        < 1.25 * avg("ftbar_latency0"),
        # (3) CAFT sends fewer messages than FTSA and FTBAR.
        "caft_fewest_messages": avg(f"{reference}_messages")
        < min(avg("ftsa_messages"), avg("ftbar_messages")),
        # (4) Upper bounds dominate the 0-crash latencies.
        "bounds_consistent": all(
            avg(f"{a}_upper") >= avg(f"{a}_latency0") - 1e-9
            for a in result.config.algorithms
        ),
        # (5) Latencies sit above the fault-free references.
        "ft_above_faultfree": avg(f"{reference}_latency0")
        >= avg(f"faultfree_{reference}") - 1e-9,
    }
    # (6) Crash latencies are compared on the *robust* variant — the
    # literal caft-paper column is a survivor-only mean (it loses most
    # crash replays, the reproduction's headline finding).  The strict
    # "CAFT beats FTSA under crashes" holds while the platform has slack;
    # in the saturated regime (ε+1 within a factor ~3 of m) the provably
    # robust variant pays a disjointness tax and we only require it to
    # stay within 1.6x of FTSA (EXPERIMENTS.md discusses the trade-off).
    pressure = result.config.num_procs / (result.config.epsilon + 1)
    if pressure >= 4.0:
        checks["caft_beats_ftsa_crash"] = avg("caft_crash") < avg("ftsa_crash")
    else:
        checks["caft_crash_within_1p6x_ftsa"] = (
            avg("caft_crash") < 1.6 * avg("ftsa_crash")
        )
    return ShapeReport(checks=checks)
