"""Rendering campaign results: ASCII series tables and CSV files.

The tables mirror the paper's figure panels:

* panel (a) — normalized latency with 0 crash, upper bounds and the
  fault-free references;
* panel (b) — normalized latency with 0 crash vs. with ``c`` crashes;
* panel (c) — average overhead (%) relative to fault-free CAFT.
"""

from __future__ import annotations

import csv
import io
from pathlib import Path
from typing import Optional, Sequence

from repro.experiments.harness import CampaignResult


def _table(
    title: str,
    header: Sequence[str],
    rows: Sequence[Sequence[object]],
) -> str:
    widths = [
        max(len(str(h)), *(len(_fmt(r[i])) for r in rows)) if rows else len(str(h))
        for i, h in enumerate(header)
    ]
    out = io.StringIO()
    out.write(title + "\n")
    out.write("  ".join(str(h).rjust(w) for h, w in zip(header, widths)) + "\n")
    out.write("-" * (sum(widths) + 2 * (len(widths) - 1)) + "\n")
    for r in rows:
        out.write("  ".join(_fmt(v).rjust(w) for v, w in zip(r, widths)) + "\n")
    return out.getvalue()


def _fmt(v: object) -> str:
    if isinstance(v, float):
        return f"{v:.2f}"
    return str(v)


def scenario_label(result: CampaignResult) -> str:
    """Panel-title suffix naming the communication scenario.

    Empty for the paper's default (one-port clique, append policy), so
    the historical titles are unchanged; multi-scenario sweeps get
    distinguishable panels, e.g. ``" [routed-oneport/ring]"`` or
    ``" [oneport/insertion]"``.
    """
    config = result.config
    if config.topology is not None:
        return f" [{config.model}/{config.topology}]"
    if config.port_policy != "append":
        return f" [{config.model}/{config.port_policy}]"
    if config.model != "oneport":
        return f" [{config.model}]"
    return ""


def panel_a(result: CampaignResult) -> str:
    """Normalized latency (0 crash) + upper bounds + fault-free references."""
    algos = result.config.algorithms
    header = ["g"]
    for a in algos:
        header += [f"{a}", f"{a}-UB"]
    header += [f"FF-{a}" for a in algos]
    rows = []
    for point in result.points:
        row: list[object] = [point.granularity]
        for a in algos:
            row += [point.per_algorithm[a].mean("norm_latency"),
                    point.per_algorithm[a].mean("norm_upper")]
        row += [point.faultfree_norm[a] for a in algos]
        rows.append(row)
    return _table(
        f"{result.config.name}{scenario_label(result)} (a): normalized latency, "
        f"bounds (m={result.config.num_procs}, eps={result.config.epsilon})",
        header,
        rows,
    )


def panel_b(result: CampaignResult) -> str:
    """Normalized latency with 0 crash vs. with ``c`` crashes."""
    algos = result.config.algorithms
    c = result.config.crashes
    header = ["g"]
    for a in algos:
        header += [f"{a}-0c", f"{a}-{c}c"]
    rows = []
    for point in result.points:
        row: list[object] = [point.granularity]
        for a in algos:
            row += [point.per_algorithm[a].mean("norm_latency"),
                    point.per_algorithm[a].mean("norm_crash")]
        rows.append(row)
    return _table(
        f"{result.config.name}{scenario_label(result)} (b): "
        f"normalized latency, 0 vs {c} crash(es)",
        header,
        rows,
    )


def panel_c(result: CampaignResult) -> str:
    """Average fault-tolerance overhead (%) vs fault-free CAFT."""
    algos = result.config.algorithms
    c = result.config.crashes
    header = ["g"]
    for a in algos:
        header += [f"{a}-0c%", f"{a}-{c}c%"]
    rows = []
    for point in result.points:
        row: list[object] = [point.granularity]
        for a in algos:
            row += [point.per_algorithm[a].mean("overhead_0crash"),
                    point.per_algorithm[a].mean("overhead_crash")]
        rows.append(row)
    return _table(
        f"{result.config.name}{scenario_label(result)} (c): average overhead (%)",
        header,
        rows,
    )


def messages_table(result: CampaignResult) -> str:
    """Mean inter-processor message counts per algorithm."""
    algos = result.config.algorithms
    header = ["g"] + [f"{a}" for a in algos]
    rows = []
    for point in result.points:
        rows.append(
            [point.granularity]
            + [point.per_algorithm[a].mean("messages") for a in algos]
        )
    return _table(
        f"{result.config.name}{scenario_label(result)}: mean message counts",
        header,
        rows,
    )


def render_figure(result: CampaignResult) -> str:
    """Full text report of one figure (all three panels + messages)."""
    return "\n".join(
        [
            panel_a(result),
            panel_b(result),
            panel_c(result),
            messages_table(result),
        ]
    )


def online_latency_table(result: CampaignResult) -> str:
    """Per-scheduler response/queueing/makespan vs arrival rate."""
    algos = result.config.algorithms
    header = ["rate"]
    for a in algos:
        header += [f"{a}-resp", f"{a}-queue", f"{a}-mksp"]
    rows = []
    for point in result.points:
        row: list[object] = [f"{point.granularity:g}"]
        for a in algos:
            m = point.per_algorithm[a]
            row += [m["response_mean"], m["queueing_mean"], m["makespan_mean"]]
        rows.append(row)
    return _table(
        f"{result.config.name}{scenario_label(result)} (online a): "
        f"latency vs arrival rate (m={result.config.num_procs}, "
        f"eps={result.config.epsilon})",
        header,
        rows,
    )


def online_robustness_table(result: CampaignResult) -> str:
    """Throughput + crash survival vs arrival rate per scheduler."""
    algos = result.config.algorithms
    header = ["rate"]
    for a in algos:
        header += [f"{a}-thru", f"{a}-surv", f"{a}-crash-resp"]
    rows = []
    for point in result.points:
        row: list[object] = [f"{point.granularity:g}"]
        for a in algos:
            m = point.per_algorithm[a]
            # arrival rates are small, so throughput needs more digits
            # than the default 2-decimal float formatting shows
            row += [f"{m['throughput']:.4f}", m["survived_frac"],
                    m["crash_response_mean"]]
        rows.append(row)
    fail = result.config.failure
    label = f"{fail.kind}" if fail is not None else "iid"
    return _table(
        f"{result.config.name}{scenario_label(result)} (online b): "
        f"throughput & robustness (failure model: {label}, "
        f"crashes={result.config.crashes})",
        header,
        rows,
    )


def render_online(result: CampaignResult) -> str:
    """Full text report of one online campaign (latency + robustness)."""
    return "\n".join(
        [online_latency_table(result), online_robustness_table(result)]
    )


def write_csv(result: CampaignResult, path: str | Path) -> Path:
    """Dump all aggregated columns to a CSV file; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    rows = result.rows()
    fieldnames = list(rows[0].keys())
    with path.open("w", newline="") as fh:
        writer = csv.DictWriter(fh, fieldnames=fieldnames)
        writer.writeheader()
        writer.writerows(rows)
    return path
