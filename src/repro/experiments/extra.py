"""Sweeps beyond the paper's figures: heterogeneity and platform size.

The paper fixes the processor-heterogeneity factor and evaluates only
m ∈ {10, 20}.  These campaigns vary the dimensions the paper keeps
constant, answering two natural follow-up questions:

* does CAFT's advantage survive as machines become more *unrelated*
  (heterogeneity sweep at fixed granularity)?
* how do the algorithms scale with the platform size (contention grows
  with the replica fan-out; more processors dilute it)?

Each point reuses the main harness so every metric (normalized latency,
bounds, crash latency, overhead, messages) stays comparable with the
figure campaigns.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional, Sequence

from repro.experiments.config import ExperimentConfig
from repro.experiments.harness import PointResult, run_point


def _base_config(name: str, num_procs: int, epsilon: int, crashes: int,
                 num_graphs: int, heterogeneity: float) -> ExperimentConfig:
    return ExperimentConfig(
        name=name,
        granularities=(1.0,),
        num_procs=num_procs,
        epsilon=epsilon,
        crashes=crashes,
        num_graphs=num_graphs,
        heterogeneity=heterogeneity,
    )


def heterogeneity_sweep(
    factors: Sequence[float] = (0.0, 0.5, 1.0, 1.5),
    num_procs: int = 10,
    epsilon: int = 1,
    granularity: float = 1.0,
    num_graphs: int = 5,
) -> list[tuple[float, PointResult]]:
    """Run the figure-1 point at ``granularity`` across heterogeneity factors.

    ``factor`` is the range-based spread ``h`` of
    :func:`repro.platform.heterogeneity.range_exec_matrix`: 0 means
    identical processors, values near 2 mean wildly unrelated ones.
    """
    results = []
    for h in factors:
        cfg = _base_config(
            f"hetero-{h:g}", num_procs, epsilon, crashes=1,
            num_graphs=num_graphs, heterogeneity=h,
        )
        results.append((h, run_point(cfg, granularity)))
    return results


def platform_size_sweep(
    sizes: Sequence[int] = (5, 10, 20, 40),
    epsilon: int = 1,
    granularity: float = 1.0,
    num_graphs: int = 5,
) -> list[tuple[int, PointResult]]:
    """Run one data point per platform size (fixed ε and granularity)."""
    results = []
    for m in sizes:
        cfg = _base_config(
            f"msize-{m}", m, epsilon, crashes=min(epsilon, m - 1),
            num_graphs=num_graphs, heterogeneity=0.5,
        )
        results.append((m, run_point(cfg, granularity)))
    return results


def sweep_table(
    results: Sequence[tuple[float, PointResult]],
    metric: str = "norm_latency",
    label: str = "x",
) -> str:
    """ASCII table of one metric across a sweep, one column per algorithm."""
    if not results:
        return "(empty sweep)"
    algos = list(results[0][1].per_algorithm)
    header = f"{label:>8} " + " ".join(f"{a:>12}" for a in algos)
    lines = [header, "-" * len(header)]
    for x, point in results:
        cells = " ".join(
            f"{point.per_algorithm[a].mean(metric):>12.2f}" for a in algos
        )
        lines.append(f"{x:>8g} {cells}")
    return "\n".join(lines)
