"""The executor protocol, lease sizing, and the inline (serial) executor.

An executor takes a list of :class:`~repro.experiments.grid.WorkUnit`\\ s
and a :class:`~repro.experiments.store.RunStore` and guarantees that on a
successful return every unit's result has been appended to the store.
*Where* the units run is the executor's business — inline, on a process
pool, or on remote workers — and because every unit is a pure function of
its fields, the store contents are bit-identical whichever executor ran
the campaign.

:class:`LeasePolicy` is the shared batching knob: the socket master hands
each worker a *lease* of several units at once (per-unit round-trips
dominate on many-worker masters), and the process pool submits chunks of
units per task for the same reason.  Lease size never affects results —
only which worker computes which unit, and how chatty the dispatch is.
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass, field
from itertools import groupby
from typing import Callable, Optional, Protocol, Sequence, Union, runtime_checkable

from repro.experiments.grid import WorkUnit
from repro.experiments.store import RunStore

#: progress callbacks receive short human-readable lines
ProgressFn = Callable[[str], None]

#: everything ``LeasePolicy.from_spec`` accepts: a policy, ``"auto"``,
#: a fixed size (int or digit string), or ``None`` for the default
LeaseSpec = Union["LeasePolicy", str, int, None]

#: everything ``SpeculationPolicy.from_spec`` accepts: a policy,
#: ``"auto"``/``"off"`` (the spec-file strings), a bool, or ``None``
SpeculationSpec = Union["SpeculationPolicy", str, bool, None]


def parse_steal(spec: Union[str, bool, None]) -> bool:
    """Resolve a work-stealing spec: ``"auto"``/``None`` enable it,
    ``"off"`` disables.  Stealing is on by default because it is free
    when no worker straggles (a revoke is only ever sent when a worker
    idles against an empty queue) and costs a protocol round-trip, not
    recomputation, when one does."""
    if spec is None or spec is True or spec == "auto":
        return True
    if spec is False or spec == "off":
        return False
    raise ValueError(
        f"bad steal spec {spec!r}: expected 'auto' or 'off'"
    )


@dataclass
class LeasePolicy:
    """How many units a worker gets per lease (or a pool task per chunk).

    ``size`` pins a fixed lease size; ``size=None`` adapts: the policy
    tracks an EWMA of observed per-unit seconds (:meth:`observe`) and
    sizes leases to hold about ``target_seconds`` of work — the socket
    master targets ~2x its heartbeat interval, so a worker's lease
    outlives a couple of liveness probes without letting a dead worker
    strand much work.  Adaptive sizing also caps a lease at this
    worker's fair share of the queue so one fast worker cannot starve
    the rest.  Thread-safe: the socket master observes and sizes from
    one handler thread per worker.
    """

    size: Optional[int] = None
    target_seconds: float = 1.0
    min_size: int = 1
    max_size: int = 64
    ewma_alpha: float = 0.4
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )
    _avg_unit_s: Optional[float] = field(default=None, repr=False, compare=False)

    @classmethod
    def from_spec(
        cls, spec: LeaseSpec, target_seconds: Optional[float] = None
    ) -> "LeasePolicy":
        """Resolve a lease spec: ``"auto"``/``None`` adapt, an int pins.

        ``target_seconds`` seeds the adaptive target (ignored when
        ``spec`` is already a configured :class:`LeasePolicy`).
        """
        if isinstance(spec, LeasePolicy):
            return spec
        kwargs = {} if target_seconds is None else {
            "target_seconds": target_seconds
        }
        if spec is None or spec == "auto":
            return cls(**kwargs)
        try:
            size = int(spec)
            if size != spec and not isinstance(spec, str):
                raise ValueError  # a fractional lease size is a typo
        except (TypeError, ValueError):
            raise ValueError(
                f"bad lease spec {spec!r}: expected 'auto' or a positive integer"
            ) from None
        if size < 1:
            raise ValueError(f"lease size must be >= 1, got {size}")
        return cls(size=size, **kwargs)

    @property
    def adaptive(self) -> bool:
        return self.size is None

    def clone(self) -> "LeasePolicy":
        """A policy with this configuration but a fresh (empty) EWMA.

        The campaign service sizes leases *per job* — one job's observed
        unit times must never leak into another job's lease sizing, so
        each job gets a clone of the service-level policy rather than
        the shared instance."""
        return LeasePolicy(
            size=self.size,
            target_seconds=self.target_seconds,
            min_size=self.min_size,
            max_size=self.max_size,
            ewma_alpha=self.ewma_alpha,
        )

    def observe(self, unit_seconds: float) -> None:
        """Feed one observed per-unit compute time into the EWMA."""
        if not (unit_seconds >= 0.0) or not math.isfinite(unit_seconds):
            return
        with self._lock:
            if self._avg_unit_s is None:
                self._avg_unit_s = unit_seconds
            else:
                a = self.ewma_alpha
                self._avg_unit_s = a * unit_seconds + (1 - a) * self._avg_unit_s

    @property
    def observed_unit_seconds(self) -> Optional[float]:
        with self._lock:
            return self._avg_unit_s

    def lease_size(self, queue_depth: int, workers: int = 1) -> int:
        """Units for the next lease, given queue depth and live workers."""
        if queue_depth <= 0:
            return 0
        if self.size is not None:
            return max(1, min(self.size, queue_depth))
        with self._lock:
            avg = self._avg_unit_s
        if avg is None:
            # No latency sample yet: start small so the first results
            # calibrate the EWMA quickly instead of committing a big
            # blind lease to a possibly-slow worker.
            k = self.min_size
        elif avg <= 0.0:
            k = self.max_size
        else:
            k = int(round(self.target_seconds / avg))
        k = max(self.min_size, min(self.max_size, k))
        # Fairness: never lease more than this worker's share of what is
        # left, or one worker drains the queue while the others idle.
        share = math.ceil(queue_depth / max(1, workers))
        return max(1, min(k, share, queue_depth))

    def chunks(
        self, units: Sequence[WorkUnit], workers: int = 1
    ) -> list[list[WorkUnit]]:
        """Split units into locality-pure chunks (the process-pool path).

        Chunks never mix scenarios (``WorkUnit.locality_key``), so a pool
        worker reuses warm kernel/epoch-cache state across its chunk.  A
        fixed ``size`` is honored exactly; adaptive sizing has no latency
        feedback here (all chunks are submitted up front), so it targets
        ~4 chunks per worker — big enough to amortize IPC, small enough
        to load-balance.
        """
        units = list(units)
        if not units:
            return []
        if self.size is not None:
            size = max(1, self.size)
        else:
            size = math.ceil(len(units) / (max(1, workers) * 4))
            size = max(self.min_size, min(self.max_size, size))
        out: list[list[WorkUnit]] = []
        for _key, group in groupby(units, key=lambda u: u.locality_key):
            run = list(group)
            out.extend(run[i : i + size] for i in range(0, len(run), size))
        return out


@dataclass
class SpeculationPolicy:
    """When the master duplicates an in-flight unit onto an idle worker.

    Near the campaign tail an idle worker with an empty queue is wasted
    capacity, and a wedged worker (computing forever while heartbeating)
    can hold the whole campaign hostage — the dead-man deadline never
    fires because the worker *is* alive.  Speculation is the mappy-style
    answer: hand the idle worker a duplicate attempt of the slowest
    outstanding unit; whichever attempt acks first wins, and the loser's
    result is swallowed by the store's idempotent append (visible in
    ``dedup_stats()["by_attempt"]``).

    A unit is speculation-eligible when its lease has made no progress
    for more than ``slow_factor`` times the EWMA of observed per-unit
    seconds (never less than ``min_seconds``, so sub-millisecond
    campaigns don't speculate on scheduling noise).  The total number of
    speculative launches is capped at ``budget_fraction`` of the
    campaign's units, and each unit gets at most ``max_attempts`` total
    attempts (the primary counts as one).
    """

    enabled: bool = False
    slow_factor: float = 3.0
    min_seconds: float = 0.5
    budget_fraction: float = 0.25
    max_attempts: int = 2

    @classmethod
    def from_spec(cls, spec: SpeculationSpec) -> "SpeculationPolicy":
        """Resolve a speculate spec: ``"auto"`` enables, ``"off"``/
        ``None`` disable (off by default — duplicate compute is only
        worth buying once a user opts into tail-latency mitigation)."""
        if isinstance(spec, SpeculationPolicy):
            return spec
        if spec is None or spec is False or spec == "off":
            return cls(enabled=False)
        if spec is True or spec == "auto":
            return cls(enabled=True)
        raise ValueError(
            f"bad speculate spec {spec!r}: expected 'auto' or 'off'"
        )

    def budget(self, total_units: int) -> int:
        """Maximum speculative launches for a campaign of this size."""
        if not self.enabled:
            return 0
        return max(1, math.ceil(self.budget_fraction * total_units))

    def is_straggler(
        self, stalled_seconds: float, avg_unit_seconds: Optional[float]
    ) -> bool:
        """Is a lease that last progressed ``stalled_seconds`` ago slow
        enough to speculate against?  Needs a calibrated EWMA — with no
        latency sample there is no notion of "slow" yet."""
        if not self.enabled or avg_unit_seconds is None:
            return False
        return stalled_seconds > max(
            self.slow_factor * avg_unit_seconds, self.min_seconds
        )


@runtime_checkable
class Executor(Protocol):
    """Anything that can drain a list of work units into a store."""

    name: str

    def run(
        self,
        units: Sequence[WorkUnit],
        store: RunStore,
        progress: Optional[ProgressFn] = None,
    ) -> None: ...


def unit_progress_line(
    unit: WorkUnit, done: Optional[int] = None, total: Optional[int] = None
) -> str:
    """The one-line progress message all executors emit per finished unit."""
    line = (
        f"[{unit.config.name}] g={unit.granularity:g} "
        f"rep {unit.rep + 1}/{unit.config.num_graphs}"
    )
    if done is not None and total is not None:
        line += f" ({done}/{total})"
    return line


class SerialExecutor:
    """Run every unit inline, in canonical grid order."""

    name = "serial"

    def run(
        self,
        units: Sequence[WorkUnit],
        store: RunStore,
        progress: Optional[ProgressFn] = None,
    ) -> None:
        for done, unit in enumerate(units, start=1):
            store.append(unit, unit.run())
            if progress is not None:
                progress(unit_progress_line(unit, done, len(units)))
