"""The executor protocol and the inline (serial) executor.

An executor takes a list of :class:`~repro.experiments.grid.WorkUnit`\\ s
and a :class:`~repro.experiments.store.RunStore` and guarantees that on a
successful return every unit's result has been appended to the store.
*Where* the units run is the executor's business — inline, on a process
pool, or on remote workers — and because every unit is a pure function of
its fields, the store contents are bit-identical whichever executor ran
the campaign.
"""

from __future__ import annotations

from typing import Callable, Optional, Protocol, Sequence, runtime_checkable

from repro.experiments.grid import WorkUnit
from repro.experiments.store import RunStore

#: progress callbacks receive short human-readable lines
ProgressFn = Callable[[str], None]


@runtime_checkable
class Executor(Protocol):
    """Anything that can drain a list of work units into a store."""

    name: str

    def run(
        self,
        units: Sequence[WorkUnit],
        store: RunStore,
        progress: Optional[ProgressFn] = None,
    ) -> None: ...


def unit_progress_line(
    unit: WorkUnit, done: Optional[int] = None, total: Optional[int] = None
) -> str:
    """The one-line progress message all executors emit per finished unit."""
    line = (
        f"[{unit.config.name}] g={unit.granularity:g} "
        f"rep {unit.rep + 1}/{unit.config.num_graphs}"
    )
    if done is not None and total is not None:
        line += f" ({done}/{total})"
    return line


class SerialExecutor:
    """Run every unit inline, in canonical grid order."""

    name = "serial"

    def run(
        self,
        units: Sequence[WorkUnit],
        store: RunStore,
        progress: Optional[ProgressFn] = None,
    ) -> None:
        for done, unit in enumerate(units, start=1):
            store.append(unit, unit.run())
            if progress is not None:
                progress(unit_progress_line(unit, done, len(units)))
