"""Single-machine multi-process executor (the former ``ParallelHarness``).

Fans work units out over a :class:`~concurrent.futures.ProcessPoolExecutor`.
Units complete in arbitrary order; the store records them as they finish
and aggregation sorts canonically, so results are identical to the serial
executor for any worker count.
"""

from __future__ import annotations

import os
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from typing import Optional, Sequence

from repro.experiments.executors.base import ProgressFn, unit_progress_line
from repro.experiments.grid import WorkUnit
from repro.experiments.harness import RepResult
from repro.experiments.store import RunStore


def effective_workers(workers: Optional[int], clamp: bool = True) -> int:
    """Requested worker count, clamped to the CPU budget by default.

    Oversubscribing cores buys nothing and pays pool overhead: results
    are worker-count independent, so clamping is safe.
    """
    requested = int(workers) if workers else 0
    if clamp and requested > 1:
        requested = min(requested, os.cpu_count() or 1)
    return requested


def _run_unit(unit: WorkUnit) -> RepResult:
    return unit.run()


class ProcessExecutor:
    """Deterministic process-pool executor; ``workers <= 1`` runs inline."""

    name = "process"

    def __init__(self, workers: Optional[int] = None, clamp: bool = True) -> None:
        self.workers = effective_workers(workers, clamp)

    def run(
        self,
        units: Sequence[WorkUnit],
        store: RunStore,
        progress: Optional[ProgressFn] = None,
    ) -> None:
        if self.workers <= 1:
            from repro.experiments.executors.base import SerialExecutor

            SerialExecutor().run(units, store, progress=progress)
            return
        done = 0
        with ProcessPoolExecutor(max_workers=self.workers) as pool:
            pending = {pool.submit(_run_unit, unit): unit for unit in units}
            while pending:
                finished, _ = wait(pending, return_when=FIRST_COMPLETED)
                for fut in finished:
                    unit = pending.pop(fut)
                    store.append(unit, fut.result())
                    done += 1
                    if progress is not None:
                        progress(unit_progress_line(unit, done, len(units)))
