"""Single-machine multi-process executor (the former ``ParallelHarness``).

Fans work units out over a :class:`~concurrent.futures.ProcessPoolExecutor`.
Units are submitted in *chunks* sized by the shared
:class:`~repro.experiments.executors.base.LeasePolicy` — the same knob
the socket master uses for worker leases — so a pool task amortizes IPC
over several units and never mixes scenarios (warm kernel state).
Chunks complete in arbitrary order; the store records each unit as its
chunk finishes and aggregation sorts canonically, so results are
identical to the serial executor for any worker count or chunk size.
"""

from __future__ import annotations

import os
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from typing import Optional, Sequence

from repro.experiments.executors.base import (
    LeasePolicy,
    LeaseSpec,
    ProgressFn,
    unit_progress_line,
)
from repro.experiments.grid import WorkUnit
from repro.experiments.harness import RepResult
from repro.experiments.store import RunStore


def effective_workers(workers: Optional[int], clamp: bool = True) -> int:
    """Requested worker count, clamped to the CPU budget by default.

    Oversubscribing cores buys nothing and pays pool overhead: results
    are worker-count independent, so clamping is safe.
    """
    requested = int(workers) if workers else 0
    if clamp and requested > 1:
        requested = min(requested, os.cpu_count() or 1)
    return requested


class _UnitFailure:
    """A unit's exception, carried home so the chunk's completed sibling
    results are not thrown away with it."""

    def __init__(self, exc: BaseException) -> None:
        self.exc = exc


def _run_chunk(units: Sequence[WorkUnit]) -> list[object]:
    results: list[object] = []
    for unit in units:
        try:
            results.append(unit.run())
        except Exception as exc:
            results.append(_UnitFailure(exc))
            break
    return results


class ProcessExecutor:
    """Deterministic process-pool executor; ``workers <= 1`` runs inline.

    ``lease`` sizes the chunks submitted per pool task (an int, ``"auto"``
    for the chunks-per-worker heuristic, or a configured
    :class:`LeasePolicy`); the default matches the historical one-unit-
    per-task behaviour on small campaigns and batches on large ones.
    """

    name = "process"

    def __init__(
        self,
        workers: Optional[int] = None,
        clamp: bool = True,
        lease: LeaseSpec = None,
    ) -> None:
        self.workers = effective_workers(workers, clamp)
        self.lease_policy = LeasePolicy.from_spec(lease)

    def run(
        self,
        units: Sequence[WorkUnit],
        store: RunStore,
        progress: Optional[ProgressFn] = None,
    ) -> None:
        if self.workers <= 1:
            from repro.experiments.executors.base import SerialExecutor

            SerialExecutor().run(units, store, progress=progress)
            return
        chunks = self.lease_policy.chunks(units, self.workers)
        done = 0
        with ProcessPoolExecutor(max_workers=self.workers) as pool:
            pending = {pool.submit(_run_chunk, chunk): chunk for chunk in chunks}
            while pending:
                finished, _ = wait(pending, return_when=FIRST_COMPLETED)
                for fut in finished:
                    chunk = pending.pop(fut)
                    for unit, result in zip(chunk, fut.result()):
                        if isinstance(result, _UnitFailure):
                            # The chunk's completed prefix is already
                            # stored; only the failing unit's work (and
                            # its chunk's unstarted tail) is lost.
                            raise result.exc
                        store.append(unit, result)
                        done += 1
                        if progress is not None:
                            progress(unit_progress_line(unit, done, len(units)))
