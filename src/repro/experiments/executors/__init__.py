"""Campaign executors: where the work units of a grid actually run.

Three implementations of the same :class:`Executor` protocol — inline
(:class:`SerialExecutor`), process-pool (:class:`ProcessExecutor`) and
distributed TCP master/worker (:class:`SocketExecutor`).  Work units are
pure functions of their fields, so all three produce bit-identical
stores — whatever the worker count or :class:`LeasePolicy` batch size.
"""

from __future__ import annotations

import os
from typing import Optional, Union

from repro.experiments.executors.base import (
    Executor,
    LeasePolicy,
    LeaseSpec,
    ProgressFn,
    SerialExecutor,
    unit_progress_line,
)
from repro.experiments.executors.process import ProcessExecutor, effective_workers
from repro.experiments.executors.socket import (
    PROTO_VERSION,
    WORKER_EXIT_ERROR,
    WORKER_EXIT_FAULT_INJECTED,
    WORKER_EXIT_OK,
    SocketExecutor,
    run_worker,
    sockets_available,
)

#: the specs `make_executor` accepts by name
EXECUTOR_NAMES: tuple[str, ...] = ("serial", "process", "socket")


def make_executor(
    spec: Union[Executor, str, None] = None,
    workers: Optional[int] = None,
    clamp: bool = True,
    lease: LeaseSpec = None,
) -> Executor:
    """Resolve an executor from a spec string, instance, or worker count.

    ``None`` picks :class:`ProcessExecutor` when ``workers`` asks for
    parallelism and :class:`SerialExecutor` otherwise — the historical
    ``run_campaign(workers=N)`` behaviour.  A string names the executor
    (``"serial"``, ``"process"``, ``"process:4"``, ``"socket"`` — the
    latter binds an ephemeral localhost port and spawns ``workers``
    local worker processes, which is the zero-config way to try the
    distributed path).  ``lease`` sizes worker leases / pool chunks
    (``"auto"`` or an int; see :class:`LeasePolicy`).  An
    :class:`Executor` instance passes through unchanged — configured
    :class:`SocketExecutor` masters carry their own lease policy.
    """
    if spec is None:
        if workers is not None and int(workers) > 1:
            return ProcessExecutor(workers, clamp=clamp, lease=lease)
        return SerialExecutor()
    if isinstance(spec, str):
        name, _, arg = spec.partition(":")
        if name == "serial":
            return SerialExecutor()
        if name == "process":
            # Asking for the process executor without a count means "use
            # the machine", not "run serially".
            count = int(arg) if arg else (workers or os.cpu_count() or 1)
            return ProcessExecutor(count, clamp=clamp, lease=lease)
        if name == "socket":
            spawn = int(arg) if arg else (workers if workers else 2)
            return SocketExecutor(spawn_workers=spawn, lease=lease)
        raise ValueError(
            f"unknown executor {spec!r}; expected one of {EXECUTOR_NAMES}"
        )
    return spec


__all__ = [
    "Executor",
    "LeasePolicy",
    "LeaseSpec",
    "ProgressFn",
    "SerialExecutor",
    "ProcessExecutor",
    "SocketExecutor",
    "effective_workers",
    "make_executor",
    "run_worker",
    "sockets_available",
    "unit_progress_line",
    "EXECUTOR_NAMES",
    "PROTO_VERSION",
    "WORKER_EXIT_OK",
    "WORKER_EXIT_ERROR",
    "WORKER_EXIT_FAULT_INJECTED",
]
