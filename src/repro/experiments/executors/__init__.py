"""Campaign executors: where the work units of a grid actually run.

Three implementations of the same :class:`Executor` protocol — inline
(:class:`SerialExecutor`), process-pool (:class:`ProcessExecutor`) and
distributed TCP master/worker (:class:`SocketExecutor`).  Work units are
pure functions of their fields, so all three produce bit-identical
stores — whatever the worker count or :class:`LeasePolicy` batch size.
"""

from __future__ import annotations

import os
from typing import Optional, Union

from repro.experiments.executors.base import (
    Executor,
    LeasePolicy,
    LeaseSpec,
    ProgressFn,
    SerialExecutor,
    SpeculationPolicy,
    SpeculationSpec,
    parse_steal,
    unit_progress_line,
)
from repro.experiments.executors.process import ProcessExecutor, effective_workers
from repro.experiments.executors.socket import (
    PROTO_VERSION,
    WORKER_EXIT_ERROR,
    WORKER_EXIT_FAULT_INJECTED,
    WORKER_EXIT_OK,
    WORKER_RESPAWN_LIMIT,
    SocketExecutor,
    WorkerPool,
    run_worker,
    sockets_available,
)

from repro.experiments.registry import EXECUTORS, register_executor
from repro.utils.errors import CampaignConfigError


def parse_bind(spec: Union[str, tuple, list, None]) -> tuple[str, int]:
    """Resolve a bind address (``"host:port"`` or a pair) to a tuple.

    The serializable spec form is the string; the CLI's ``--bind``
    parser hands over a tuple.  ``None`` means an ephemeral localhost
    port.  Malformed addresses are a :class:`CampaignConfigError`.
    """
    if spec is None:
        return ("127.0.0.1", 0)
    if isinstance(spec, (tuple, list)) and len(spec) == 2:
        return (str(spec[0]), int(spec[1]))
    if isinstance(spec, str):
        host, _, port = spec.rpartition(":")
        if host and port.isdigit():
            return (host, int(port))
    raise CampaignConfigError(
        f"bad bind address {spec!r} (key 'executor.bind' / --bind): "
        "expected HOST:PORT",
        key="executor.bind",
    )


def _serial_factory(workers=None, lease=None, **_options) -> Executor:
    return SerialExecutor()


def _process_factory(workers=None, lease=None, clamp=True, **_options) -> Executor:
    # Asking for the process executor without a count means "use the
    # machine", not "run serially".
    count = int(workers) if workers else (os.cpu_count() or 1)
    return ProcessExecutor(count, clamp=clamp, lease=lease)


def _socket_factory(
    workers=None,
    lease=None,
    bind=None,
    spawn_workers=None,
    timeout=None,
    speculate=None,
    steal=None,
    **_options,
) -> Executor:
    host, port = parse_bind(bind)
    spawn = spawn_workers or workers or 0
    if not spawn and bind is None:
        # An ephemeral port nobody was told about would wait forever:
        # without an explicit bind the master hosts its own workers.
        spawn = 2
    kwargs = {}
    if timeout is not None:
        # None defers to SocketExecutor's own default, so every entry
        # point (direct construction, make_executor, specs, CLI) shares
        # one no-activity deadline.
        kwargs["timeout"] = float(timeout)
    return SocketExecutor(
        host=host,
        port=port,
        spawn_workers=int(spawn),
        lease=lease,
        speculate=speculate,
        steal=steal,
        **kwargs,
    )


def _service_factory(
    workers=None,
    lease=None,
    address=None,
    tenant=None,
    priority=None,
    timeout=None,
    **_options,
) -> Executor:
    # Imported lazily: service.py imports api.py which imports this
    # package (the same cycle-dodge as the columnar store factory).
    from repro.experiments.service import ServiceExecutor

    if address is None:
        raise CampaignConfigError(
            "executor kind 'service' needs the address of a running "
            "campaign service (key 'executor.address' / --address): "
            "expected HOST:PORT",
            key="executor.address",
        )
    kwargs = {}
    if tenant is not None:
        kwargs["tenant"] = str(tenant)
    if priority is not None:
        kwargs["priority"] = int(priority)
    if timeout is not None:
        kwargs["timeout"] = float(timeout)
    return ServiceExecutor(address, **kwargs)


register_executor("serial", _serial_factory)
register_executor("process", _process_factory)
register_executor("socket", _socket_factory)
register_executor("service", _service_factory)

#: the specs `make_executor` accepts by name (import-time snapshot;
#: ``repro.experiments.registry.executor_names()`` is the live view)
EXECUTOR_NAMES: tuple[str, ...] = EXECUTORS.names()


def make_executor(
    spec: Union[Executor, str, None] = None,
    workers: Optional[int] = None,
    clamp: bool = True,
    lease: LeaseSpec = None,
) -> Executor:
    """Resolve an executor from a spec string, instance, or worker count.

    ``None`` picks :class:`ProcessExecutor` when ``workers`` asks for
    parallelism and :class:`SerialExecutor` otherwise — the historical
    ``run_campaign(workers=N)`` behaviour.  A string names a registered
    executor (``"serial"``, ``"process"``, ``"process:4"``, ``"socket"``
    — the latter binds an ephemeral localhost port and spawns
    ``workers`` local worker processes, which is the zero-config way to
    try the distributed path); the ``:N`` suffix overrides ``workers``.
    Dispatch goes through the :data:`~repro.experiments.registry.
    EXECUTORS` registry, so kinds added via ``register_executor`` work
    everywhere this is called (API, spec files, CLI).  ``lease`` sizes
    worker leases / pool chunks (``"auto"`` or an int; see
    :class:`LeasePolicy`).  An :class:`Executor` instance passes
    through unchanged — configured :class:`SocketExecutor` masters
    carry their own lease policy.
    """
    if spec is None:
        if workers is not None and int(workers) > 1:
            return ProcessExecutor(workers, clamp=clamp, lease=lease)
        return SerialExecutor()
    if isinstance(spec, str):
        name, _, arg = spec.partition(":")
        factory = EXECUTORS.get(name, key="executor")
        if arg:
            try:
                workers = int(arg)
            except ValueError:
                raise CampaignConfigError(
                    f"bad executor spec {spec!r} (key 'executor'): the "
                    "suffix after ':' must be a worker count",
                    key="executor",
                ) from None
        return factory(workers=workers, lease=lease, clamp=clamp)
    return spec


__all__ = [
    "Executor",
    "LeasePolicy",
    "LeaseSpec",
    "ProgressFn",
    "SerialExecutor",
    "ProcessExecutor",
    "SocketExecutor",
    "WorkerPool",
    "SpeculationPolicy",
    "SpeculationSpec",
    "effective_workers",
    "make_executor",
    "parse_bind",
    "parse_steal",
    "run_worker",
    "sockets_available",
    "unit_progress_line",
    "EXECUTOR_NAMES",
    "PROTO_VERSION",
    "WORKER_EXIT_OK",
    "WORKER_EXIT_ERROR",
    "WORKER_EXIT_FAULT_INJECTED",
    "WORKER_RESPAWN_LIMIT",
]
