"""Distributed campaign execution over TCP (master + remote workers).

The :class:`SocketExecutor` is a master in the mappy mould: it binds a
TCP port, streams :class:`~repro.experiments.grid.WorkUnit`\\ s to any
``repro-ftsched campaign worker`` process that connects — from this
machine or another — and appends results to the store as they arrive.
Workers heartbeat while computing; a worker that goes silent (crash,
kill, network partition) has its in-flight unit *requeued* for the next
live worker, so a campaign survives any worker failure as long as one
worker remains.  Fitting machinery for a paper about tolerating crashes.

Wire protocol: newline-delimited JSON, one message per line.

======================  ======================================  =========
message                 fields                                  direction
======================  ======================================  =========
``hello``               ``worker`` (label), ``heartbeat`` (s)   w -> m
``unit``                ``unit`` (WorkUnit dict)                m -> w
``heartbeat``           —                                       w -> m
``result``              ``unit_id``, ``result`` (RepResult)     w -> m
``shutdown``            —                                       m -> w
======================  ======================================  =========

Units carry their full config, so workers need no shared filesystem and
no campaign-specific state: connect, compute, reply.  Results round-trip
through JSON exactly (float ``repr``), keeping distributed rows
bit-identical to serial ones.
"""

from __future__ import annotations

import json
import os
import socket
import subprocess
import sys
import threading
import time
from collections import deque
from typing import Optional, Sequence, Union

from repro.experiments.executors.base import ProgressFn, unit_progress_line
from repro.experiments.grid import WorkUnit
from repro.experiments.store import RunStore, result_from_dict, result_to_dict

#: how often a worker emits a heartbeat while connected
DEFAULT_HEARTBEAT = 0.5
#: master declares a worker dead after this many silent heartbeat periods
DEAD_AFTER_BEATS = 8
#: a worker that hears nothing from the master for this long gives up —
#: the master host vanished without a TCP FIN (power loss, partition).
#: Generous, because a worker legitimately idles while the master holds
#: it back waiting on another worker's in-flight unit (possible requeue).
WORKER_IDLE_TIMEOUT = 3600.0


class _LineConn:
    """Newline-delimited JSON over one TCP socket, write-locked.

    Workers write from two threads (results from the main loop,
    heartbeats from a daemon); the lock keeps lines atomic.
    """

    def __init__(self, sock: socket.socket) -> None:
        self.sock = sock
        self._rfile = sock.makefile("rb")
        self._wlock = threading.Lock()

    def send(self, message: dict) -> None:
        data = (json.dumps(message, separators=(",", ":")) + "\n").encode()
        with self._wlock:
            self.sock.sendall(data)

    def recv(self, timeout: Optional[float] = None) -> dict:
        """Next message; raises ``ConnectionError`` on EOF, ``TimeoutError``
        (``socket.timeout``) when the peer stays silent too long."""
        self.sock.settimeout(timeout)
        line = self._rfile.readline()
        if not line:
            raise ConnectionError("peer closed the connection")
        return json.loads(line)

    def close(self) -> None:
        try:
            self._rfile.close()
        except OSError:
            pass
        try:
            self.sock.close()
        except OSError:
            pass


class SocketExecutor:
    """TCP master that streams units to worker processes and requeues
    units from dead workers.

    ``spawn_workers`` launches that many local ``campaign worker``
    subprocesses against the bound port (an int, or a sequence of
    extra-argv lists for per-worker options — fault-injection tests pass
    ``["--max-units", "1"]`` to make a worker die mid-campaign).
    External workers connect with
    ``repro-ftsched campaign worker HOST:PORT`` at any time, including
    mid-campaign.  ``timeout`` is a *no-activity* deadline, not a wall
    clock for the whole run: it resets on every message any worker sends
    (heartbeats while computing, results, hellos), so a campaign with at
    least one live worker never trips it — however long the run or a
    single unit takes — while a run with no worker talking (every worker
    died and none reconnects) raises instead of hanging forever.
    """

    name = "socket"

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        spawn_workers: Union[int, Sequence[Sequence[str]]] = 0,
        heartbeat: float = DEFAULT_HEARTBEAT,
        timeout: Optional[float] = 300.0,
    ) -> None:
        self.host = host
        self.port = port
        self.heartbeat = heartbeat
        self.timeout = timeout
        if isinstance(spawn_workers, int):
            self._worker_specs: list[list[str]] = [[] for _ in range(spawn_workers)]
        else:
            self._worker_specs = [list(extra) for extra in spawn_workers]
        self.address: Optional[tuple[str, int]] = None
        self._dead_after = max(heartbeat * DEAD_AFTER_BEATS, 5.0)

    # ------------------------------------------------------------- master

    def run(
        self,
        units: Sequence[WorkUnit],
        store: RunStore,
        progress: Optional[ProgressFn] = None,
    ) -> None:
        state = _MasterState(units, store, progress)
        server = socket.create_server((self.host, self.port))
        self.address = server.getsockname()[:2]
        stop = threading.Event()
        acceptor = threading.Thread(
            target=self._accept_loop,
            args=(server, state, stop),
            name="campaign-master-accept",
            daemon=True,
        )
        acceptor.start()
        workers = [self._spawn_worker(extra) for extra in self._worker_specs]
        try:
            last_activity = -1
            deadline: Optional[float] = None
            while not state.wait_done(0.2):
                activity = state.activity_count()
                if activity != last_activity:
                    # Any worker message (heartbeat, result, hello)
                    # resets the clock: `timeout` bounds how long the
                    # campaign may go with no worker talking, not its
                    # total length or a single unit's runtime.
                    last_activity = activity
                    deadline = (
                        None if self.timeout is None
                        else time.monotonic() + self.timeout
                    )
                if deadline is not None and time.monotonic() >= deadline:
                    missing = state.remaining()
                    raise TimeoutError(
                        f"socket campaign heard from no worker for "
                        f"{self.timeout:.0f}s: {len(missing)} unit(s) still "
                        f"pending "
                        f"(first: {missing[0].unit_id if missing else '-'}); "
                        "are any workers connected?"
                    )
                # Every worker this master spawned has exited and no
                # connection is serving units: the campaign can no longer
                # make progress (e.g. a unit crashes each worker in
                # turn) — fail now instead of sitting out the timeout.
                if (
                    workers
                    and all(p.poll() is not None for p in workers)
                    and state.active_connections() == 0
                ):
                    missing = state.remaining()
                    raise RuntimeError(
                        f"all {len(workers)} spawned worker(s) exited with "
                        f"{len(missing)} unit(s) incomplete "
                        f"(first: {missing[0].unit_id if missing else '-'}); "
                        "check the worker logs — a crashing work unit kills "
                        "every worker it is requeued to"
                    )
        finally:
            stop.set()
            state.finish()
            try:
                server.close()
            except OSError:
                pass
            for proc in workers:
                self._reap_worker(proc)

    def _accept_loop(
        self, server: socket.socket, state: "_MasterState", stop: threading.Event
    ) -> None:
        server.settimeout(0.2)
        while not stop.is_set():
            try:
                conn, _addr = server.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            threading.Thread(
                target=self._serve_worker,
                args=(conn, state),
                name="campaign-master-worker",
                daemon=True,
            ).start()

    def _serve_worker(self, conn: socket.socket, state: "_MasterState") -> None:
        lc = _LineConn(conn)
        unit: Optional[WorkUnit] = None
        serving = False
        try:
            hello = lc.recv(timeout=self._dead_after)
            if hello.get("type") != "hello":
                return
            state.note_activity()
            state.connection_opened()
            serving = True
            # Honor the worker's own heartbeat cadence (it may have been
            # started with --heartbeat much larger than the master's):
            # the deadness deadline is per-connection, from the hello.
            worker_beat = float(hello.get("heartbeat", self.heartbeat))
            dead_after = max(
                self._dead_after, worker_beat * DEAD_AFTER_BEATS
            )
            while True:
                unit = state.next_unit()
                if unit is None:
                    lc.send({"type": "shutdown"})
                    return
                lc.send({"type": "unit", "unit": unit.to_dict()})
                while True:
                    message = lc.recv(timeout=dead_after)
                    state.note_activity()
                    if message.get("type") == "heartbeat":
                        continue
                    if message.get("type") == "result":
                        break
                    raise ConnectionError(
                        f"unexpected message type {message.get('type')!r}"
                    )
                if message.get("unit_id") != unit.unit_id:
                    # A version-skewed or buggy worker answering for the
                    # wrong unit must not corrupt the store: drop the
                    # worker, requeue the dispatched unit.
                    raise ConnectionError(
                        f"result for {message.get('unit_id')!r} while "
                        f"awaiting {unit.unit_id!r}"
                    )
                result = result_from_dict(
                    message["result"], unit.granularity, unit.rep
                )
                state.complete(unit, result)
                unit = None
        except (ConnectionError, OSError, socket.timeout, json.JSONDecodeError):
            # Worker died or went silent: put its in-flight unit back on
            # the queue for the next live worker (mappy-style requeue).
            if unit is not None:
                state.requeue(unit)
        finally:
            if serving:
                state.connection_closed()
            lc.close()

    # ------------------------------------------------------- local workers

    def _spawn_worker(self, extra_args: Sequence[str]) -> subprocess.Popen:
        host, port = self.address
        env = os.environ.copy()
        # Workers must resolve `repro` exactly like the master process.
        env["PYTHONPATH"] = os.pathsep.join(p for p in sys.path if p)
        cmd = [
            sys.executable,
            "-m",
            "repro.cli",
            "campaign",
            "worker",
            f"{host}:{port}",
            "--heartbeat",
            str(self.heartbeat),
            *extra_args,
        ]
        return subprocess.Popen(
            cmd, env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL
        )

    @staticmethod
    def _reap_worker(proc: subprocess.Popen) -> None:
        try:
            proc.wait(timeout=5.0)
        except subprocess.TimeoutExpired:
            proc.kill()
            proc.wait(timeout=5.0)


class _MasterState:
    """Shared queue/accounting between the master's handler threads."""

    def __init__(
        self,
        units: Sequence[WorkUnit],
        store: RunStore,
        progress: Optional[ProgressFn],
    ) -> None:
        self._cond = threading.Condition()
        self._pending: deque[WorkUnit] = deque(units)
        self._in_flight: dict[str, WorkUnit] = {}
        self._done: set[str] = set()
        self._total = len(units)
        self._store = store
        self._progress = progress
        self._finished = False
        self._active = 0
        self._activity = 0

    def next_unit(self) -> Optional[WorkUnit]:
        """Claim the next pending unit; blocks while others are in flight
        (a requeue may refill the queue); ``None`` once the campaign is
        complete (or aborted)."""
        with self._cond:
            while True:
                if self._finished or len(self._done) >= self._total:
                    return None
                if self._pending:
                    unit = self._pending.popleft()
                    self._in_flight[unit.unit_id] = unit
                    return unit
                self._cond.wait(timeout=0.1)

    def complete(self, unit: WorkUnit, result) -> None:
        with self._cond:
            self._in_flight.pop(unit.unit_id, None)
            if unit.unit_id in self._done:
                return  # duplicate from a requeue race; store dedups too
            self._done.add(unit.unit_id)
            self._store.append(unit, result)
            if self._progress is not None:
                self._progress(
                    unit_progress_line(unit, len(self._done), self._total)
                )
            self._cond.notify_all()

    def requeue(self, unit: WorkUnit) -> None:
        with self._cond:
            self._in_flight.pop(unit.unit_id, None)
            if unit.unit_id not in self._done:
                self._pending.appendleft(unit)
                self._cond.notify_all()

    def note_activity(self) -> None:
        """A worker message arrived (heartbeat/result/hello); the master
        uses this to distinguish "slow but alive" from "all dead"."""
        with self._cond:
            self._activity += 1

    def activity_count(self) -> int:
        with self._cond:
            return self._activity

    def connection_opened(self) -> None:
        with self._cond:
            self._active += 1

    def connection_closed(self) -> None:
        with self._cond:
            self._active -= 1
            self._cond.notify_all()

    def active_connections(self) -> int:
        with self._cond:
            return self._active

    def remaining(self) -> list[WorkUnit]:
        with self._cond:
            return list(self._pending) + list(self._in_flight.values())

    def wait_done(self, timeout: Optional[float]) -> bool:
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            while len(self._done) < self._total:
                wait_for = 0.2
                if deadline is not None:
                    wait_for = min(wait_for, deadline - time.monotonic())
                    if wait_for <= 0:
                        return False
                self._cond.wait(timeout=wait_for)
            return True

    def finish(self) -> None:
        with self._cond:
            self._finished = True
            self._cond.notify_all()


# ---------------------------------------------------------------- worker


def run_worker(
    host: str,
    port: int,
    max_units: Optional[int] = None,
    heartbeat: float = DEFAULT_HEARTBEAT,
    verbose: bool = False,
    idle_timeout: float = WORKER_IDLE_TIMEOUT,
) -> int:
    """Connect to a campaign master and compute units until shutdown.

    The body of ``repro-ftsched campaign worker HOST:PORT``.  A daemon
    thread heartbeats for the life of the connection so the master can
    tell "still computing" from "dead".  ``max_units`` makes the worker
    drop the connection after that many results — fault injection for
    the requeue path (quokka-style), never used in production.
    ``idle_timeout`` bounds how long the worker waits for the master's
    next message (keepalive plus a recv timeout), so a worker orphaned
    by a master host that died without closing the TCP connection exits
    instead of blocking forever.  Returns a process exit code.
    """
    sock = socket.create_connection((host, port), timeout=10.0)
    sock.settimeout(None)
    sock.setsockopt(socket.SOL_SOCKET, socket.SO_KEEPALIVE, 1)
    # Default kernel keepalive idles ~2h — longer than the recv timeout,
    # i.e. useless.  Tighten it where the platform allows so a vanished
    # master host (no FIN) errors the socket in minutes, not an hour.
    for opt, value in (
        ("TCP_KEEPIDLE", 60), ("TCP_KEEPINTVL", 10), ("TCP_KEEPCNT", 5)
    ):
        if hasattr(socket, opt):
            sock.setsockopt(socket.IPPROTO_TCP, getattr(socket, opt), value)
    lc = _LineConn(sock)
    label = f"{socket.gethostname()}:{os.getpid()}"
    lc.send({"type": "hello", "worker": label, "heartbeat": heartbeat})
    stop = threading.Event()

    def _beat() -> None:
        while not stop.wait(heartbeat):
            try:
                lc.send({"type": "heartbeat"})
            except OSError:
                return

    threading.Thread(target=_beat, name="campaign-heartbeat", daemon=True).start()
    done = 0
    try:
        while True:
            message = lc.recv(timeout=idle_timeout)
            kind = message.get("type")
            if kind == "shutdown":
                if verbose:
                    print(f"worker {label}: shutdown after {done} unit(s)",
                          file=sys.stderr)
                return 0
            if kind != "unit":
                continue
            unit = WorkUnit.from_dict(message["unit"])
            if verbose:
                print(f"worker {label}: {unit.unit_id}", file=sys.stderr)
            result = unit.run()
            lc.send(
                {
                    "type": "result",
                    "unit_id": unit.unit_id,
                    "result": result_to_dict(result),
                }
            )
            done += 1
            if max_units is not None and done >= max_units:
                # Simulated crash: vanish without a goodbye so the master
                # exercises its dead-worker detection.
                return 1
    except (ConnectionError, OSError):
        return 0 if done else 1
    finally:
        stop.set()
        lc.close()
