"""Distributed campaign execution over TCP (master + remote workers).

The :class:`SocketExecutor` is a master in the mappy mould: it binds a
TCP port, streams :class:`~repro.experiments.grid.WorkUnit`\\ s to any
``repro-ftsched campaign worker`` process that connects — from this
machine or another — and appends results to the store as they arrive.
Workers heartbeat while computing; a worker that goes silent (crash,
kill, network partition) has its in-flight unit *requeued* for the next
live worker, so a campaign survives any worker failure as long as one
worker remains.  Fitting machinery for a paper about tolerating crashes.

Wire protocol: newline-delimited JSON, one message per line.  Version 2
adds batch leases — the master hands a worker several units per
round-trip and the worker acks each unit as it completes, so a dead
worker only requeues the *unfinished remainder* of its lease.  Version 3
adds ``revoke``: the master reclaims the unstarted remainder of a lease
from a straggling worker and re-leases it to an idle one (work
stealing).  Version 4 adds the campaign-service *client* messages
(``submit`` / ``status`` / ``jobs`` / ``cancel`` / ``submit_units``,
served by :mod:`repro.experiments.service`); the worker flow is
unchanged from v3.

======================  ==========================================  =========
message                 fields                                      direction
======================  ==========================================  =========
``hello``               ``worker`` (label), ``heartbeat`` (s),      w -> m
                        ``proto`` (int, absent = 1)
``unit``                ``unit`` (WorkUnit dict)           [v1]     m -> w
``lease``               ``units`` (list of WorkUnit dicts) [v2]     m -> w
``heartbeat``           —                                           w -> m
``result``              ``unit_id``, ``result`` (RepResult),        w -> m
                        ``seconds`` (compute time)         [v2]
``revoke``              ``unit_ids`` (units stolen from the         m -> w
                        lease; skip any not yet started)   [v3]
``shutdown``            —                                           m -> w
======================  ==========================================  =========

Version negotiation: the worker's ``hello`` names the highest protocol
it speaks and the master answers in ``min(worker, PROTO_VERSION)`` — a
v1 worker (no ``proto`` field) is streamed single ``unit`` messages
exactly as before, a v2 worker gets ``lease`` batches sized by the
master's :class:`~repro.experiments.executors.base.LeasePolicy`, and
only v3 workers are ever sent a ``revoke`` — a v2 worker keeps working
its lease un-revoked (the master simply never steals from it).

Straggler mitigation is master-side and per-connection:

* **Work stealing** (on by default): a worker that goes idle against an
  empty queue triggers a steal — the master removes all but the first
  remaining unit of the largest outstanding v3 lease (the head is what
  the victim is computing *right now*; everything behind it has not
  started), tells the victim via ``revoke``, and leases the reclaimed
  units to the idle worker tagged ``"stolen"``.
* **Speculation** (:class:`~repro.experiments.executors.base.
  SpeculationPolicy`, opt-in): when there is nothing to lease *or*
  steal, the master duplicates the head unit of a lease that has made
  no progress for ``slow_factor`` x the EWMA unit time onto the idle
  worker.  First ack wins; the loser's delivery is swallowed by the
  store's idempotent append and attributed in
  ``dedup_stats()["by_attempt"]``.  This is the only rescue for a
  *wedged* worker — one that heartbeats forever without finishing its
  unit, which the dead-man deadline can never catch.

Units carry their full config, so workers need no shared filesystem and
no campaign-specific state: connect, compute, reply.  Results round-trip
through JSON exactly (float ``repr``), keeping distributed rows
bit-identical to serial ones — whatever the lease size and whoever wins
a duplicated attempt.
"""

from __future__ import annotations

import json
import os
import queue
import random
import socket
import subprocess
import sys
import threading
import time
from collections import deque
from typing import Callable, Optional, Sequence, Union

from repro.experiments.executors.base import (
    LeasePolicy,
    LeaseSpec,
    ProgressFn,
    SpeculationPolicy,
    SpeculationSpec,
    parse_steal,
    unit_progress_line,
)
from repro.experiments.grid import WorkUnit
from repro.experiments.store import RunStore, result_from_dict, result_to_dict

#: highest wire-protocol version this build speaks (3 = lease
#: revocation; 4 = the campaign-service client messages ``submit`` /
#: ``status`` / ``jobs`` / ``cancel`` / ``submit_units`` — the worker
#: flow is unchanged from v3)
PROTO_VERSION = 4

#: worker process exit codes — the conformance harness asserts *why* a
#: worker died, so the injected fault must be distinguishable from a
#: genuine crash (exit 1) and a clean shutdown (exit 0)
WORKER_EXIT_OK = 0
WORKER_EXIT_ERROR = 1
WORKER_EXIT_FAULT_INJECTED = 3

#: how often a worker emits a heartbeat while connected
DEFAULT_HEARTBEAT = 0.5
#: master declares a worker dead after this many silent heartbeat periods
DEAD_AFTER_BEATS = 8
#: a worker that hears nothing from the master for this long gives up —
#: the master host vanished without a TCP FIN (power loss, partition).
#: Generous, because a worker legitimately idles while the master holds
#: it back waiting on another worker's in-flight unit (possible requeue).
WORKER_IDLE_TIMEOUT = 3600.0

#: how many times the master relaunches a spawned worker that genuinely
#: crashed (any exit code besides a clean shutdown and the injected
#: ``--max-units`` fault) — one crash must not strand local capacity for
#: the rest of the campaign, but a unit that crash-loops its worker must
#: not respawn forever
WORKER_RESPAWN_LIMIT = 2

#: initial-connect retry schedule: a worker often races the master's
#: bind (spawn scripts start both at once), so the connect retries with
#: exponential backoff — jittered, so a fleet of workers pointed at a
#: late master doesn't stampede it in lockstep
CONNECT_RETRIES = 8
CONNECT_BACKOFF_S = 0.1
CONNECT_BACKOFF_MAX_S = 2.0


def sockets_available() -> bool:
    """Can this host bind a localhost TCP port?  Sandboxes sometimes
    can't — callers (tests, benches) use this to skip the socket
    executor instead of failing on ``run``."""
    try:
        probe = socket.create_server(("127.0.0.1", 0))
        probe.close()
        return True
    except OSError:
        return False


class _LineConn:
    """Newline-delimited JSON over one TCP socket, write-locked.

    Both sides write from two threads (workers: results from the main
    loop, heartbeats from a daemon; the master: leases from a handler
    thread, revokes from a thief's); the lock keeps lines atomic.
    """

    def __init__(self, sock: socket.socket) -> None:
        self.sock = sock
        self._rbuf = bytearray()
        self._wlock = threading.Lock()

    def send(self, message: dict) -> None:
        data = (json.dumps(message, separators=(",", ":")) + "\n").encode()
        with self._wlock:
            self.sock.sendall(data)

    def recv(self, timeout: Optional[float] = None) -> dict:
        """Next message; raises ``ConnectionError`` on EOF, ``TimeoutError``
        (``socket.timeout``) when the peer stays silent too long.

        Reads through an explicit buffer rather than ``sock.makefile``:
        a buffered file object that hits a timeout is poisoned for every
        later read, which would break callers that poll with short
        timeouts (the service's idle loops).  Here a timeout leaves any
        partial line in the buffer and the next call picks it back up.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            newline = self._rbuf.find(b"\n")
            if newline >= 0:
                line = bytes(self._rbuf[: newline + 1])
                del self._rbuf[: newline + 1]
                return json.loads(line)
            if deadline is None:
                self.sock.settimeout(None)
            else:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise socket.timeout("no complete line before deadline")
                self.sock.settimeout(remaining)
            chunk = self.sock.recv(65536)
            if not chunk:
                raise ConnectionError("peer closed the connection")
            self._rbuf.extend(chunk)

    def close(self) -> None:
        try:
            self.sock.close()
        except OSError:
            pass


def _reap_worker(proc: subprocess.Popen) -> int:
    try:
        return proc.wait(timeout=5.0)
    except subprocess.TimeoutExpired:
        proc.kill()
        return proc.wait(timeout=5.0)


class WorkerPool:
    """Lifecycle of locally spawned worker subprocesses — launch,
    bounded respawn, terminate, reap — shared by the one-shot campaign
    master and the long-lived campaign service.

    The respawn budget (:data:`WORKER_RESPAWN_LIMIT` relaunches per
    slot) is *per job*, not per pool lifetime: :meth:`new_job_epoch`
    resets it when a fresh job starts, so a service that outlives many
    campaigns never permanently strands a slot, while a unit that
    crash-loops its worker within one job still cannot respawn forever.
    A clean shutdown (exit 0) and the injected fault exit
    (:data:`WORKER_EXIT_FAULT_INJECTED`) are never respawned —
    whichever loop is supervising the pool.
    """

    def __init__(
        self,
        specs: Sequence[Sequence[str]],
        spawn_fn,
    ) -> None:
        self._specs = [list(extra) for extra in specs]
        self._spawn = spawn_fn
        self.procs: list[subprocess.Popen] = []
        self._budget = [0] * len(self._specs)
        self.replaced_codes: list[int] = []
        self.respawns = 0

    def spawn_all(self) -> None:
        """Launch every configured worker.

        A failure launching the Nth worker terminates and reaps the
        N-1 already running before propagating — a raised spawn must
        not orphan the children it already started."""
        try:
            for extra in self._specs:
                self.procs.append(self._spawn(extra))
        except BaseException:
            self.terminate_all()
            self.reap_all()
            raise

    def poll_respawn(self) -> None:
        """Relaunch spawned workers that genuinely crashed (never a
        clean shutdown or the injected fault exit), bounded per slot
        within the current job epoch."""
        for i, proc in enumerate(self.procs):
            code = proc.poll()
            if (
                code is None
                or code in (WORKER_EXIT_OK, WORKER_EXIT_FAULT_INJECTED)
                or self._budget[i] >= WORKER_RESPAWN_LIMIT
            ):
                continue
            self._budget[i] += 1
            self.respawns += 1
            self.replaced_codes.append(code)
            self.procs[i] = self._spawn(self._specs[i])

    def new_job_epoch(self) -> None:
        """Reset every slot's respawn budget — a new job's crashes are
        its own, not charged against a previous job's."""
        self._budget = [0] * len(self._specs)

    def all_exited(self) -> bool:
        return bool(self.procs) and all(p.poll() is not None for p in self.procs)

    def terminate_all(self) -> None:
        """Ask every live child to exit now (SIGTERM) — the exceptional
        exit path, where waiting out a worker's own shutdown would leave
        children running after the master is gone."""
        for proc in self.procs:
            if proc.poll() is None:
                try:
                    proc.terminate()
                except OSError:
                    pass

    def reap_all(self) -> list[int]:
        """Wait out (then kill) every child; the exit code of every
        worker the pool ever ran, replaced crashers included."""
        return self.replaced_codes + [_reap_worker(p) for p in self.procs]


class SocketExecutor:
    """TCP master that streams units to worker processes, requeues units
    from dead workers, and steals them back from straggling ones.

    ``spawn_workers`` launches that many local ``campaign worker``
    subprocesses against the bound port (an int, or a sequence of
    extra-argv lists for per-worker options — fault-injection tests pass
    ``["--max-units", "1"]`` to make a worker die mid-campaign).  A
    spawned worker that *genuinely* crashes (any exit code besides a
    clean shutdown or the injected fault's) is relaunched up to
    :data:`WORKER_RESPAWN_LIMIT` times, so one crash doesn't strand
    local capacity.  External workers connect with
    ``repro-ftsched campaign worker HOST:PORT`` at any time, including
    mid-campaign.  ``timeout`` is a *no-activity* deadline, not a wall
    clock for the whole run: it resets on every message any worker sends
    (heartbeats while computing, results, hellos), so a campaign with at
    least one live worker never trips it — however long the run or a
    single unit takes — while a run with no worker talking (every worker
    died and none reconnects) raises instead of hanging forever.

    ``lease`` sizes the unit batches handed to v2+ workers: an int pins
    a fixed lease size, ``"auto"`` (the default) adapts to observed unit
    latency — targeting ~2x the heartbeat interval of work per lease —
    and a configured :class:`LeasePolicy` instance passes through.

    ``steal`` (``"auto"``, the default, or ``"off"``) controls lease
    revocation: an idle worker facing an empty queue steals the
    unstarted remainder of the largest outstanding v3 lease.  An
    un-started unit costs only a protocol round-trip to move, so this is
    on by default.  ``speculate`` (``"off"`` by default, or ``"auto"``)
    additionally duplicates the slowest in-flight unit onto an idle
    worker near the campaign tail — the only rescue for a wedged worker
    that heartbeats without progressing; see
    :class:`~repro.experiments.executors.base.SpeculationPolicy`.

    After ``run`` returns, ``worker_exit_codes`` holds the exit code of
    every worker this master spawned, including replaced crashers
    (``WORKER_EXIT_FAULT_INJECTED`` identifies ``--max-units`` /
    ``--wedge-after`` fault workers), and ``stolen_units`` /
    ``speculative_attempts`` count what the straggler mitigation did.
    """

    name = "socket"

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        spawn_workers: Union[int, Sequence[Sequence[str]]] = 0,
        heartbeat: float = DEFAULT_HEARTBEAT,
        timeout: Optional[float] = 300.0,
        lease: LeaseSpec = None,
        speculate: SpeculationSpec = None,
        steal: Union[str, bool, None] = None,
        on_listen: Optional[Callable[[tuple[str, int]], None]] = None,
    ) -> None:
        self.host = host
        self.port = port
        self.heartbeat = heartbeat
        self.timeout = timeout
        #: called with the *actually bound* ``(host, port)`` right after
        #: the listening socket exists — the only correct place to learn
        #: the real port of a ``--bind host:0`` ephemeral bind (the CLI
        #: announces the master address through this)
        self.on_listen = on_listen
        self.lease_policy = LeasePolicy.from_spec(
            lease, target_seconds=2.0 * heartbeat
        )
        self.speculation = SpeculationPolicy.from_spec(speculate)
        self.steal = parse_steal(steal)
        if isinstance(spawn_workers, int):
            self._worker_specs: list[list[str]] = [[] for _ in range(spawn_workers)]
        else:
            self._worker_specs = [list(extra) for extra in spawn_workers]
        self.address: Optional[tuple[str, int]] = None
        self.worker_exit_codes: list[int] = []
        self.worker_respawns = 0
        self.stolen_units = 0
        self.speculative_attempts = 0
        self._dead_after = max(heartbeat * DEAD_AFTER_BEATS, 5.0)

    # ------------------------------------------------------------- master

    def run(
        self,
        units: Sequence[WorkUnit],
        store: RunStore,
        progress: Optional[ProgressFn] = None,
    ) -> None:
        state = _MasterState(
            units,
            store,
            progress,
            lease_policy=self.lease_policy,
            speculation=self.speculation,
            steal=self.steal,
        )
        server = socket.create_server((self.host, self.port))
        self.address = server.getsockname()[:2]
        if self.on_listen is not None:
            self.on_listen(self.address)
        stop = threading.Event()
        acceptor = threading.Thread(
            target=self._accept_loop,
            args=(server, state, stop),
            name="campaign-master-accept",
            daemon=True,
        )
        acceptor.start()
        # Workers spawn *inside* the try: an exception anywhere between
        # the first spawn and the finally (including a failed spawn
        # itself, handled inside spawn_all) must still terminate and
        # reap every child — an interrupted master cannot orphan them.
        pool = WorkerPool(self._worker_specs, self._spawn_worker)
        clean = False
        try:
            pool.spawn_all()
            last_activity = -1
            deadline: Optional[float] = None
            while not state.wait_done(0.2):
                activity = state.activity_count()
                if activity != last_activity:
                    # Any worker message (heartbeat, result, hello)
                    # resets the clock: `timeout` bounds how long the
                    # campaign may go with no worker talking, not its
                    # total length or a single unit's runtime.
                    last_activity = activity
                    deadline = (
                        None if self.timeout is None
                        else time.monotonic() + self.timeout
                    )
                if deadline is not None and time.monotonic() >= deadline:
                    missing = state.remaining()
                    raise TimeoutError(
                        f"socket campaign heard from no worker for "
                        f"{self.timeout:.0f}s: {len(missing)} unit(s) still "
                        f"pending "
                        f"(first: {missing[0].unit_id if missing else '-'}); "
                        "are any workers connected?"
                    )
                # Relaunch spawned workers that genuinely crashed (never
                # a clean shutdown or the injected --max-units fault),
                # bounded per slot so a crash-looping unit cannot
                # respawn its worker forever.
                pool.poll_respawn()
                # Every worker this master spawned has exited (respawn
                # budget included) and no connection is serving units:
                # the campaign can no longer make progress (e.g. a unit
                # crashes each worker in turn) — fail now instead of
                # sitting out the timeout.
                if pool.all_exited() and state.active_connections() == 0:
                    missing = state.remaining()
                    raise RuntimeError(
                        f"all {len(pool.procs)} spawned worker(s) exited with "
                        f"{len(missing)} unit(s) incomplete "
                        f"(first: {missing[0].unit_id if missing else '-'}); "
                        "check the worker logs — a crashing work unit kills "
                        "every worker it is requeued to"
                    )
            clean = True
        finally:
            stop.set()
            state.finish()
            try:
                server.close()
            except OSError:
                pass
            if not clean:
                # An exceptional exit (KeyboardInterrupt, timeout, a
                # raise mid-spawn) must not wait out the workers' own
                # shutdown: terminate them now so no child survives a
                # raised run.  On a clean exit the workers already got
                # `shutdown` messages and exit 0 on their own.
                pool.terminate_all()
            self.worker_exit_codes = pool.reap_all()
            self.worker_respawns += pool.respawns
            self.stolen_units = state.stolen_units
            self.speculative_attempts = state.speculative_attempts

    def _accept_loop(
        self, server: socket.socket, state: "_MasterState", stop: threading.Event
    ) -> None:
        server.settimeout(0.2)
        while not stop.is_set():
            try:
                conn, _addr = server.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            threading.Thread(
                target=self._serve_worker,
                args=(conn, state),
                name="campaign-master-worker",
                daemon=True,
            ).start()

    def _serve_worker(self, conn: socket.socket, state: "_MasterState") -> None:
        lc = _LineConn(conn)
        conn_id = state.new_conn_id()
        serving = False
        # Every unit id ever leased to this connection: a result for a
        # unit outside the *current* lease is legitimate only if it was
        # once leased here (a revoked unit's ack losing the race, or a
        # replayed delivery) — anything else is a version-skewed or
        # buggy worker and kills the connection.
        ever_leased: set[str] = set()
        try:
            hello = lc.recv(timeout=self._dead_after)
            if hello.get("type") != "hello":
                return
            state.note_activity()
            state.connection_opened()
            serving = True
            # Version negotiation: speak the highest protocol both sides
            # know.  A v1 worker (no proto field) is streamed one unit at
            # a time; v2+ gets policy-sized leases; only v3 connections
            # are ever steal victims (they understand `revoke`).
            proto = min(PROTO_VERSION, int(hello.get("proto", 1)))
            # Honor the worker's own heartbeat cadence (it may have been
            # started with --heartbeat much larger than the master's):
            # the deadness deadline is per-connection, from the hello.
            worker_beat = float(hello.get("heartbeat", self.heartbeat))
            dead_after = max(
                self._dead_after, worker_beat * DEAD_AFTER_BEATS
            )
            while True:
                lease = state.checkout_lease(
                    conn_id,
                    lc,
                    proto,
                    self.lease_policy if proto >= 2 else None,
                )
                if lease is None:
                    lc.send({"type": "shutdown"})
                    return
                # The lease is tracked in master state BEFORE the send:
                # if the worker died at the lease boundary (send
                # raises), the claimed units must requeue, not strand
                # in flight.
                ever_leased.update(lease.remaining)
                if proto >= 2:
                    lc.send(
                        {"type": "lease",
                         "units": [u.to_dict() for u in lease.units()]}
                    )
                else:
                    lc.send({"type": "unit", "unit": lease.units()[0].to_dict()})
                # Serve acks until the lease drains — by this worker's
                # results or by a thief stealing the remainder (the
                # condition is rechecked after every message).
                while lease.remaining:
                    message = lc.recv(timeout=dead_after)
                    state.note_activity()
                    if state.is_finished():
                        # The campaign completed without this lease
                        # draining — a wedged worker heartbeating while
                        # speculation rescued its units.  Closing the
                        # connection (finally) is what unwedges it.
                        return
                    kind = message.get("type")
                    if kind == "heartbeat":
                        continue
                    if kind != "result":
                        raise ConnectionError(
                            f"unexpected message type {kind!r}"
                        )
                    unit_id = message.get("unit_id")
                    unit, attempt = state.ack(conn_id, unit_id)
                    if unit is None:
                        unit = (
                            state.lookup(unit_id)
                            if unit_id in ever_leased else None
                        )
                        if unit is None:
                            # A version-skewed or buggy worker answering
                            # for a unit it was never leased must not
                            # corrupt the store: drop the worker,
                            # requeue its lease.
                            raise ConnectionError(
                                f"result for {unit_id!r} outside this "
                                "worker's lease"
                            )
                        # A stale ack: the unit was revoked from this
                        # connection (or this is a replayed delivery).
                        # First ack wins — the copy still routes through
                        # the store so the losing attempt is counted.
                        attempt = "stale"
                    result = result_from_dict(
                        message["result"], unit.granularity, unit.rep
                    )
                    state.complete(unit, result, attempt=attempt)
                    seconds = message.get("seconds")
                    if seconds is not None:
                        self.lease_policy.observe(float(seconds))
                state.retire_lease(conn_id)
        except (ConnectionError, OSError, socket.timeout, json.JSONDecodeError):
            # Worker died or went silent: put the *unfinished remainder*
            # of its lease back on the queue for the next live worker
            # (per-unit acks mean completed units never rerun).
            pass
        finally:
            state.requeue_lease(conn_id)
            if serving:
                state.connection_closed()
            lc.close()

    # ------------------------------------------------------- local workers

    def _spawn_worker(self, extra_args: Sequence[str]) -> subprocess.Popen:
        host, port = self.address
        env = os.environ.copy()
        # Workers must resolve `repro` exactly like the master process.
        env["PYTHONPATH"] = os.pathsep.join(p for p in sys.path if p)
        cmd = [
            sys.executable,
            "-m",
            "repro.cli",
            "campaign",
            "worker",
            f"{host}:{port}",
            "--heartbeat",
            str(self.heartbeat),
            *extra_args,
        ]
        return subprocess.Popen(
            cmd, env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL
        )

    _reap_worker = staticmethod(_reap_worker)


class _Lease:
    """One outstanding lease: which units a connection owns, how to
    reach it (for revokes), and the attempt tag its acks carry.

    ``order`` preserves the handout order — workers compute leases
    sequentially, so the first id still in ``remaining`` is the unit the
    worker is computing *right now* and everything behind it has not
    started.  That head/tail split is what makes stealing safe: only the
    unstarted tail is ever revoked.
    """

    __slots__ = (
        "conn_id", "lc", "proto", "order", "remaining", "attempt",
        "last_progress",
    )

    def __init__(
        self,
        conn_id: int,
        lc: _LineConn,
        proto: int,
        units: Sequence[WorkUnit],
        attempt: str,
    ) -> None:
        self.conn_id = conn_id
        self.lc = lc
        self.proto = proto
        self.order = [u.unit_id for u in units]
        self.remaining = {u.unit_id: u for u in units}
        self.attempt = attempt
        self.last_progress = time.monotonic()

    def units(self) -> list[WorkUnit]:
        return [
            self.remaining[uid] for uid in self.order if uid in self.remaining
        ]


class _MasterState:
    """Shared queue/accounting between the master's handler threads.

    Work distribution is a three-tier claim, all under one lock:
    pending queue first, then stealing the unstarted tail of the largest
    outstanding v3 lease, then (opt-in) a speculative duplicate of the
    most-stalled in-flight unit.  Every ack routes through
    :meth:`complete`, whose store append is idempotent — first ack wins,
    losing attempts are counted, never stored.
    """

    def __init__(
        self,
        units: Sequence[WorkUnit],
        store: RunStore,
        progress: Optional[ProgressFn],
        lease_policy: Optional[LeasePolicy] = None,
        speculation: Optional[SpeculationPolicy] = None,
        steal: bool = True,
    ) -> None:
        self._cond = threading.Condition()
        self._pending: deque[WorkUnit] = deque(units)
        self._units_by_id = {u.unit_id: u for u in units}
        self._in_flight: dict[str, WorkUnit] = {}
        self._done: set[str] = set()
        self._total = len(units)
        self._store = store
        self._progress = progress
        self._finished = False
        self._active = 0
        self._activity = 0
        self._next_conn_id = 0
        self._leases: dict[int, _Lease] = {}
        self._lease_policy = lease_policy or LeasePolicy()
        self._speculation = speculation or SpeculationPolicy()
        self._steal = steal
        #: total attempts launched per unit id (absent = 1, the primary)
        self._attempts: dict[str, int] = {}
        self._spec_budget: Optional[int] = None
        self.stolen_units = 0
        self.speculative_attempts = 0

    # ------------------------------------------------------------ leases

    def new_conn_id(self) -> int:
        with self._cond:
            self._next_conn_id += 1
            return self._next_conn_id

    def lookup(self, unit_id: Optional[str]) -> Optional[WorkUnit]:
        return self._units_by_id.get(unit_id)

    def try_checkout(
        self,
        conn_id: int,
        lc: _LineConn,
        proto: int,
        policy: Optional[LeasePolicy],
        pending_only: bool = False,
    ) -> tuple[Optional[_Lease], Optional[tuple[_LineConn, list[str]]]]:
        """One non-blocking claim attempt.

        Returns ``(lease, revoke)``: the claimed lease (or ``None`` when
        nothing is claimable right now, or the campaign is complete /
        aborted — distinguish via :meth:`is_complete`), and the revoke
        notification ``(victim_lc, unit_ids)`` to deliver *outside* any
        lock when the claim stole a tail.  ``pending_only`` restricts
        the claim to the pending queue — the campaign service's first
        scheduling pass, so an idle worker drains other jobs' queues
        before stealing within one.
        """
        with self._cond:
            if self._finished or len(self._done) >= self._total:
                return None, None
            units = self._claim_pending(policy)
            attempt = "primary"
            revoke: Optional[tuple[_LineConn, list[str]]] = None
            if units is None and self._steal and not pending_only:
                claim = self._claim_steal(conn_id, proto)
                if claim is not None:
                    units, victim_lc, revoked_ids = claim
                    attempt = "stolen"
                    revoke = (victim_lc, revoked_ids)
            if units is None and self._speculation.enabled and not pending_only:
                unit = self._claim_speculative(conn_id)
                if unit is not None:
                    units, attempt = [unit], "speculative"
            if units is None:
                return None, None
            lease = _Lease(conn_id, lc, proto, units, attempt)
            self._leases[conn_id] = lease
            for unit in units:
                self._in_flight[unit.unit_id] = unit
            return lease, revoke

    def checkout_lease(
        self,
        conn_id: int,
        lc: _LineConn,
        proto: int,
        policy: Optional[LeasePolicy],
    ) -> Optional[_Lease]:
        """Claim the next lease for a connection; blocks while other
        workers hold in-flight units (a requeue, steal, or speculation
        may produce new work); ``None`` once the campaign is complete
        (or aborted).

        ``policy=None`` (a v1 worker) leases exactly one unit.  The
        claim order is pending queue, then a steal from the largest
        outstanding v3 lease, then a speculative duplicate — cheapest
        source of work first.
        """
        while True:
            lease, revoke = self.try_checkout(conn_id, lc, proto, policy)
            if revoke is not None:
                # Sent outside the lock: a victim with a full TCP buffer
                # must not stall every other handler thread.  The revoke
                # is advisory — the master already re-leased the stolen
                # units; a victim that never reads it (wedged) just
                # wastes its own cycles and its late acks lose the race.
                victim_lc, revoked_ids = revoke
                try:
                    victim_lc.send({"type": "revoke", "unit_ids": revoked_ids})
                except OSError:
                    pass  # victim already dead; its lease requeues on reap
            if lease is not None:
                return lease
            with self._cond:
                if self._finished or len(self._done) >= self._total:
                    return None
                self._cond.wait(timeout=0.1)

    def _claim_pending(
        self, policy: Optional[LeasePolicy]
    ) -> Optional[list[WorkUnit]]:
        """Pop the next lease off the pending queue (None when empty).

        Assembly prefers locality: the lease is the queue head plus the
        next pending units sharing its ``locality_key``, so a worker
        computes one scenario back to back and reuses warm kernel/epoch-
        cache state.  Skipped units keep their queue order.  Units
        completed while queued (a speculative or stolen attempt won
        after a requeue) are dropped, never re-leased.
        """
        while self._pending and self._pending[0].unit_id in self._done:
            self._pending.popleft()
        if not self._pending:
            return None
        k = 1
        if policy is not None:
            k = policy.lease_size(
                len(self._pending), workers=max(1, self._active)
            )
        lease = [self._pending.popleft()]
        if k > 1:
            key = lease[0].locality_key
            kept: deque[WorkUnit] = deque()
            for unit in self._pending:
                if unit.unit_id in self._done:
                    continue
                if len(lease) < k and unit.locality_key == key:
                    lease.append(unit)
                else:
                    kept.append(unit)
            self._pending = kept
        return lease

    def _claim_steal(
        self, conn_id: int, proto: int
    ) -> Optional[tuple[list[WorkUnit], _LineConn, list[str]]]:
        """Steal the unstarted tail of the largest outstanding v3 lease.

        The head of a lease is what the victim is computing right now —
        revoking it would waste that work — so only the tail moves.
        Victims must speak v3 (they have to understand the ``revoke``);
        a v2 worker keeps working its lease un-revoked.  Returns the
        stolen units for the thief, the victim's connection, and the
        revoked ids (a v1 thief takes a single unit; the rest of the
        tail returns to the pending queue for anyone).
        """
        victims = [
            lease
            for lease in self._leases.values()
            if lease.conn_id != conn_id
            and lease.proto >= 3
            and lease.attempt != "speculative"
            and len(lease.remaining) >= 2
        ]
        if not victims:
            return None
        victim = max(victims, key=lambda lease: len(lease.remaining))
        live = [uid for uid in victim.order if uid in victim.remaining]
        revoked_ids = live[1:]
        stolen = [victim.remaining.pop(uid) for uid in revoked_ids]
        if proto < 2 and len(stolen) > 1:
            for unit in reversed(stolen[1:]):
                self._pending.appendleft(unit)
            stolen = stolen[:1]
        self.stolen_units += len(revoked_ids)
        return stolen, victim.lc, revoked_ids

    def _claim_speculative(self, conn_id: int) -> Optional[WorkUnit]:
        """Duplicate the first rescuable unit of the most-stalled lease.

        Eligibility is the policy's: the lease made no progress for
        ``slow_factor`` x the EWMA unit time, the campaign-wide launch
        budget is not spent, and the unit has attempts left.  Scanning
        each lease in handout order means a wedged worker's *whole*
        lease gets rescued one unit per idle claim — even a v2 worker's,
        since speculation needs no protocol support at all.
        """
        avg = self._lease_policy.observed_unit_seconds
        if self._spec_budget is None:
            self._spec_budget = self._speculation.budget(self._total)
        if self.speculative_attempts >= self._spec_budget:
            return None
        now = time.monotonic()
        best: Optional[tuple[float, WorkUnit]] = None
        for lease in self._leases.values():
            if lease.conn_id == conn_id or lease.attempt == "speculative":
                continue
            stalled = now - lease.last_progress
            if not self._speculation.is_straggler(stalled, avg):
                continue
            for uid in lease.order:
                if uid not in lease.remaining or uid in self._done:
                    continue
                if (
                    self._attempts.get(uid, 1)
                    >= self._speculation.max_attempts
                ):
                    continue
                if best is None or stalled > best[0]:
                    best = (stalled, lease.remaining[uid])
                break
        if best is None:
            return None
        unit = best[1]
        self._attempts[unit.unit_id] = self._attempts.get(unit.unit_id, 1) + 1
        self.speculative_attempts += 1
        return unit

    def ack(
        self, conn_id: int, unit_id: Optional[str]
    ) -> tuple[Optional[WorkUnit], str]:
        """Claim an arriving result against the connection's lease.

        Returns the unit and the lease's attempt tag when the unit was
        still this connection's to ack; ``(None, "stale")`` when it was
        revoked, already acked, or never leased here (the caller decides
        whether a stale ack is legitimate).  Any ack counts as lease
        progress for the speculation stall clock.
        """
        with self._cond:
            lease = self._leases.get(conn_id)
            if lease is None:
                return None, "stale"
            lease.last_progress = time.monotonic()
            unit = lease.remaining.pop(unit_id, None)
            if unit is None:
                return None, "stale"
            return unit, lease.attempt

    def retire_lease(self, conn_id: int) -> None:
        """Drop a fully-drained lease (nothing left to requeue)."""
        with self._cond:
            self._leases.pop(conn_id, None)

    def requeue_lease(self, conn_id: int) -> None:
        """Return a dead connection's unfinished lease remainder to the
        queue (front of the queue, original order preserved)."""
        with self._cond:
            lease = self._leases.pop(conn_id, None)
            if lease is None:
                return
            requeued = False
            for unit in reversed(lease.units()):
                self._in_flight.pop(unit.unit_id, None)
                if unit.unit_id not in self._done:
                    self._pending.appendleft(unit)
                    requeued = True
            if requeued:
                self._cond.notify_all()

    # -------------------------------------------------------- completion

    def complete(
        self, unit: WorkUnit, result, attempt: str = "primary"
    ) -> None:
        with self._cond:
            self._in_flight.pop(unit.unit_id, None)
            # First ack wins: the store's idempotent append decides, so
            # a losing attempt (speculative loser, revoked unit's stale
            # ack, replayed delivery) is counted in dedup_stats under
            # its attempt tag — never stored, never double-progressed.
            if not self._store.append(unit, result, attempt=attempt):
                return
            self._done.add(unit.unit_id)
            if self._progress is not None:
                self._progress(
                    unit_progress_line(unit, len(self._done), self._total)
                )
            self._cond.notify_all()

    # -------------------------------------------------------- accounting

    def note_activity(self) -> None:
        """A worker message arrived (heartbeat/result/hello); the master
        uses this to distinguish "slow but alive" from "all dead"."""
        with self._cond:
            self._activity += 1

    def activity_count(self) -> int:
        with self._cond:
            return self._activity

    def connection_opened(self) -> None:
        with self._cond:
            self._active += 1

    def connection_closed(self) -> None:
        with self._cond:
            self._active -= 1
            self._cond.notify_all()

    def active_connections(self) -> int:
        with self._cond:
            return self._active

    def remaining(self) -> list[WorkUnit]:
        with self._cond:
            return list(self._pending) + list(self._in_flight.values())

    def wait_done(self, timeout: Optional[float]) -> bool:
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            while len(self._done) < self._total:
                wait_for = 0.2
                if deadline is not None:
                    wait_for = min(wait_for, deadline - time.monotonic())
                    if wait_for <= 0:
                        return False
                self._cond.wait(timeout=wait_for)
            return True

    def is_finished(self) -> bool:
        with self._cond:
            return self._finished

    def is_complete(self) -> bool:
        """Every unit's result is in the store (the job is done)."""
        with self._cond:
            return len(self._done) >= self._total

    def progress_counts(self) -> tuple[int, int]:
        """``(done, total)`` — the campaign service's status payload."""
        with self._cond:
            return len(self._done), self._total

    def finish(self) -> None:
        with self._cond:
            self._finished = True
            self._cond.notify_all()

    def abort(self) -> list[tuple[_LineConn, int, list[str]]]:
        """Cancel: mark finished, strip every outstanding lease (so
        serving loops drain immediately instead of waiting on results
        that no longer matter), and return ``(lc, proto, unit_ids)``
        revoke notifications to deliver outside the lock.  Late acks
        for stripped units land as stale and are swallowed by the
        store's idempotent append."""
        with self._cond:
            self._finished = True
            notices: list[tuple[_LineConn, int, list[str]]] = []
            for lease in self._leases.values():
                ids = [uid for uid in lease.order if uid in lease.remaining]
                if not ids:
                    continue
                notices.append((lease.lc, lease.proto, ids))
                for uid in ids:
                    lease.remaining.pop(uid, None)
                    self._in_flight.pop(uid, None)
            self._pending.clear()
            self._cond.notify_all()
        return notices


# ---------------------------------------------------------------- worker


def _connect_with_backoff(
    host: str,
    port: int,
    retries: int = CONNECT_RETRIES,
) -> socket.socket:
    """Connect to the master, retrying with jittered exponential backoff.

    A worker often races the master's bind — spawn scripts start both at
    once — and dying on the first ECONNREFUSED would strand capacity for
    the whole campaign.  Bounded: after ``retries`` failed attempts the
    last ``OSError`` propagates.  Jittered, so a fleet of workers
    pointed at a late master doesn't retry in lockstep.
    """
    delay = CONNECT_BACKOFF_S
    for attempt in range(retries + 1):
        try:
            return socket.create_connection((host, port), timeout=10.0)
        except OSError as exc:
            if attempt >= retries:
                raise
            pause = min(delay, CONNECT_BACKOFF_MAX_S) * (0.5 + random.random())
            print(
                f"worker: master {host}:{port} unreachable ({exc}); "
                f"retry {attempt + 1}/{retries} in {pause:.2f}s",
                file=sys.stderr,
            )
            time.sleep(pause)
            delay *= 2


def run_worker(
    host: str,
    port: int,
    max_units: Optional[int] = None,
    heartbeat: float = DEFAULT_HEARTBEAT,
    verbose: bool = False,
    idle_timeout: float = WORKER_IDLE_TIMEOUT,
    wedge_after: Optional[int] = None,
    slow_factor: Optional[float] = None,
    die_after: Optional[int] = None,
    ignore_revoke: bool = False,
    connect_retries: int = CONNECT_RETRIES,
) -> int:
    """Connect to a campaign master and compute units until shutdown.

    The body of ``repro-ftsched campaign worker HOST:PORT``.  The
    initial connect retries with jittered exponential backoff (the
    worker may race the master's bind).  A daemon thread heartbeats for
    the life of the connection so the master can tell "still computing"
    from "dead"; a second daemon owns all socket reads and feeds an
    inbox queue, so mid-lease control traffic — a v3 ``revoke`` — is
    seen between units, not after the whole lease.  Revoked units still
    pending locally are skipped (the master already re-leased them).
    ``idle_timeout`` bounds how long the worker waits for the master's
    next message (keepalive plus a recv timeout), so a worker orphaned
    by a master host that died without closing the TCP connection exits
    instead of blocking forever.

    Fault injection (never used in production):

    * ``max_units`` drops the connection after that many results —
      because the budget is checked per unit, a worker holding a
      multi-unit lease dies *mid-lease*, exactly what the
      partial-requeue path needs exercised (quokka-style).
    * ``wedge_after`` stalls the worker *mid-unit* after that many
      results: it holds its next unit forever while the heartbeat
      daemon keeps beating — alive to the dead-man deadline, dead to
      the campaign.  Only speculation or stealing can rescue the work.
      The stall breaks (with the injected-fault exit code) once the
      master connection is gone.
    * ``slow_factor`` throttles every unit to that multiple of its real
      compute time — a reproducible 10x-slow straggler.
    * ``die_after`` exits with the *genuine-crash* code after that many
      results, exercising the master's bounded worker respawn (distinct
      from ``max_units``'s injected-fault code, which is never
      respawned).
    * ``ignore_revoke`` keeps computing revoked units, forcing the
      revoke-vs-ack race: its late acks must lose first-ack-wins.

    Returns a process exit code: ``WORKER_EXIT_OK`` after a clean
    shutdown, ``WORKER_EXIT_ERROR`` on a genuine failure (and from
    ``die_after``), and ``WORKER_EXIT_FAULT_INJECTED`` when the
    ``max_units`` budget ran out or a ``wedge_after`` stall ended —
    distinct codes, so the conformance harness can assert *why* a
    worker died.
    """
    sock = _connect_with_backoff(host, port, retries=connect_retries)
    sock.settimeout(None)
    sock.setsockopt(socket.SOL_SOCKET, socket.SO_KEEPALIVE, 1)
    # Default kernel keepalive idles ~2h — longer than the recv timeout,
    # i.e. useless.  Tighten it where the platform allows so a vanished
    # master host (no FIN) errors the socket in minutes, not an hour.
    for opt, value in (
        ("TCP_KEEPIDLE", 60), ("TCP_KEEPINTVL", 10), ("TCP_KEEPCNT", 5)
    ):
        if hasattr(socket, opt):
            sock.setsockopt(socket.IPPROTO_TCP, getattr(socket, opt), value)
    lc = _LineConn(sock)
    label = f"{socket.gethostname()}:{os.getpid()}"
    lc.send(
        {
            "type": "hello",
            "worker": label,
            "heartbeat": heartbeat,
            "proto": PROTO_VERSION,
        }
    )
    stop = threading.Event()
    conn_dead = threading.Event()

    def _beat() -> None:
        while not stop.wait(heartbeat):
            try:
                lc.send({"type": "heartbeat"})
            except OSError:
                return

    inbox: queue.Queue = queue.Queue()

    def _read() -> None:
        # All reads happen on this thread: the main loop computes units
        # and polls the inbox between them, so a mid-lease revoke is
        # acted on before the next unit starts.  EOF/timeout posts the
        # None sentinel and the main loop exits.
        try:
            while True:
                inbox.put(lc.recv(timeout=idle_timeout))
        except (ConnectionError, OSError, json.JSONDecodeError):
            conn_dead.set()
            inbox.put(None)

    threading.Thread(target=_beat, name="campaign-heartbeat", daemon=True).start()
    threading.Thread(target=_read, name="campaign-worker-read", daemon=True).start()
    pending: deque[WorkUnit] = deque()
    revoked: set[str] = set()
    done = 0
    try:
        while True:
            # Ingest control traffic: block when out of local work,
            # otherwise just drain whatever has already arrived.
            block = not pending
            while True:
                try:
                    message = inbox.get(block=block)
                except queue.Empty:
                    break
                if message is None:
                    # Connection gone: master shut down uncleanly, or
                    # the idle timeout expired with nothing to do.
                    return WORKER_EXIT_OK if done else WORKER_EXIT_ERROR
                kind = message.get("type")
                if kind == "shutdown":
                    if verbose:
                        print(
                            f"worker {label}: shutdown after {done} unit(s)",
                            file=sys.stderr,
                        )
                    return WORKER_EXIT_OK
                if kind == "lease":
                    pending.extend(
                        WorkUnit.from_dict(d) for d in message["units"]
                    )
                elif kind == "unit":
                    pending.append(WorkUnit.from_dict(message["unit"]))
                elif kind == "revoke":
                    ids = set(message.get("unit_ids", ()))
                    if ignore_revoke:
                        if verbose:
                            print(
                                f"worker {label}: ignoring revoke of "
                                f"{len(ids)} unit(s) (fault injection)",
                                file=sys.stderr,
                            )
                    else:
                        revoked |= ids
                        if verbose:
                            print(
                                f"worker {label}: master revoked "
                                f"{len(ids)} unit(s)",
                                file=sys.stderr,
                            )
                block = not pending
            unit = pending.popleft()
            if unit.unit_id in revoked:
                # The master stole this unit for an idle worker; skip it
                # — computing it anyway would only lose first-ack-wins.
                revoked.discard(unit.unit_id)
                continue
            if wedge_after is not None and done >= wedge_after:
                if verbose:
                    print(
                        f"worker {label}: wedged holding {unit.unit_id}",
                        file=sys.stderr,
                    )
                # Stall mid-unit while the heartbeat daemon keeps
                # beating: alive to the master's dead-man deadline, dead
                # to the campaign.  Unwedge once the master is gone so
                # harness runs reap quickly.
                conn_dead.wait()
                return WORKER_EXIT_FAULT_INJECTED
            if verbose:
                print(f"worker {label}: {unit.unit_id}", file=sys.stderr)
            t0 = time.perf_counter()
            result = unit.run()
            if slow_factor is not None and slow_factor > 1.0:
                # A reproducible straggler: stretch every unit to
                # slow_factor x its real compute time, visible to the
                # master's EWMA through the reported seconds.
                time.sleep((slow_factor - 1.0) * (time.perf_counter() - t0))
            # The per-unit ack: the master stores each unit the moment
            # it completes, so a later crash of this worker only
            # requeues the lease's unfinished remainder.
            lc.send(
                {
                    "type": "result",
                    "unit_id": unit.unit_id,
                    "result": result_to_dict(result),
                    "seconds": time.perf_counter() - t0,
                }
            )
            done += 1
            if max_units is not None and done >= max_units:
                # Simulated crash: vanish without a goodbye — mid-
                # lease when more units were leased — so the master
                # exercises dead-worker detection and partial-lease
                # requeue.  The distinct exit code lets a harness
                # tell this injected fault from a real crash.
                return WORKER_EXIT_FAULT_INJECTED
            if die_after is not None and done >= die_after:
                # Simulated *genuine* crash: the generic-failure exit
                # code, so the master's respawn path (which ignores the
                # injected-fault code above) kicks in.
                return WORKER_EXIT_ERROR
    except (ConnectionError, OSError):
        return WORKER_EXIT_OK if done else WORKER_EXIT_ERROR
    finally:
        stop.set()
        lc.close()
