"""Distributed campaign execution over TCP (master + remote workers).

The :class:`SocketExecutor` is a master in the mappy mould: it binds a
TCP port, streams :class:`~repro.experiments.grid.WorkUnit`\\ s to any
``repro-ftsched campaign worker`` process that connects — from this
machine or another — and appends results to the store as they arrive.
Workers heartbeat while computing; a worker that goes silent (crash,
kill, network partition) has its in-flight unit *requeued* for the next
live worker, so a campaign survives any worker failure as long as one
worker remains.  Fitting machinery for a paper about tolerating crashes.

Wire protocol: newline-delimited JSON, one message per line.  Version 2
adds batch leases — the master hands a worker several units per
round-trip and the worker acks each unit as it completes, so a dead
worker only requeues the *unfinished remainder* of its lease.

======================  ==========================================  =========
message                 fields                                      direction
======================  ==========================================  =========
``hello``               ``worker`` (label), ``heartbeat`` (s),      w -> m
                        ``proto`` (int, absent = 1)
``unit``                ``unit`` (WorkUnit dict)           [v1]     m -> w
``lease``               ``units`` (list of WorkUnit dicts) [v2]     m -> w
``heartbeat``           —                                           w -> m
``result``              ``unit_id``, ``result`` (RepResult),        w -> m
                        ``seconds`` (compute time)         [v2]
``shutdown``            —                                           m -> w
======================  ==========================================  =========

Version negotiation: the worker's ``hello`` names the highest protocol
it speaks and the master answers in ``min(worker, PROTO_VERSION)`` — a
v1 worker (no ``proto`` field) is streamed single ``unit`` messages
exactly as before, a v2 worker gets ``lease`` batches sized by the
master's :class:`~repro.experiments.executors.base.LeasePolicy` (adaptive
sizing targets ~2x the heartbeat interval of work per lease, and leases
prefer units of one scenario so workers reuse warm kernel state).

Units carry their full config, so workers need no shared filesystem and
no campaign-specific state: connect, compute, reply.  Results round-trip
through JSON exactly (float ``repr``), keeping distributed rows
bit-identical to serial ones — whatever the lease size.
"""

from __future__ import annotations

import json
import os
import socket
import subprocess
import sys
import threading
import time
from collections import deque
from typing import Optional, Sequence, Union

from repro.experiments.executors.base import (
    LeasePolicy,
    LeaseSpec,
    ProgressFn,
    unit_progress_line,
)
from repro.experiments.grid import WorkUnit
from repro.experiments.store import RunStore, result_from_dict, result_to_dict

#: highest wire-protocol version this build speaks
PROTO_VERSION = 2

#: worker process exit codes — the conformance harness asserts *why* a
#: worker died, so the injected fault must be distinguishable from a
#: genuine crash (exit 1) and a clean shutdown (exit 0)
WORKER_EXIT_OK = 0
WORKER_EXIT_ERROR = 1
WORKER_EXIT_FAULT_INJECTED = 3

#: how often a worker emits a heartbeat while connected
DEFAULT_HEARTBEAT = 0.5
#: master declares a worker dead after this many silent heartbeat periods
DEAD_AFTER_BEATS = 8
#: a worker that hears nothing from the master for this long gives up —
#: the master host vanished without a TCP FIN (power loss, partition).
#: Generous, because a worker legitimately idles while the master holds
#: it back waiting on another worker's in-flight unit (possible requeue).
WORKER_IDLE_TIMEOUT = 3600.0


def sockets_available() -> bool:
    """Can this host bind a localhost TCP port?  Sandboxes sometimes
    can't — callers (tests, benches) use this to skip the socket
    executor instead of failing on ``run``."""
    try:
        probe = socket.create_server(("127.0.0.1", 0))
        probe.close()
        return True
    except OSError:
        return False


class _LineConn:
    """Newline-delimited JSON over one TCP socket, write-locked.

    Workers write from two threads (results from the main loop,
    heartbeats from a daemon); the lock keeps lines atomic.
    """

    def __init__(self, sock: socket.socket) -> None:
        self.sock = sock
        self._rfile = sock.makefile("rb")
        self._wlock = threading.Lock()

    def send(self, message: dict) -> None:
        data = (json.dumps(message, separators=(",", ":")) + "\n").encode()
        with self._wlock:
            self.sock.sendall(data)

    def recv(self, timeout: Optional[float] = None) -> dict:
        """Next message; raises ``ConnectionError`` on EOF, ``TimeoutError``
        (``socket.timeout``) when the peer stays silent too long."""
        self.sock.settimeout(timeout)
        line = self._rfile.readline()
        if not line:
            raise ConnectionError("peer closed the connection")
        return json.loads(line)

    def close(self) -> None:
        try:
            self._rfile.close()
        except OSError:
            pass
        try:
            self.sock.close()
        except OSError:
            pass


class SocketExecutor:
    """TCP master that streams units to worker processes and requeues
    units from dead workers.

    ``spawn_workers`` launches that many local ``campaign worker``
    subprocesses against the bound port (an int, or a sequence of
    extra-argv lists for per-worker options — fault-injection tests pass
    ``["--max-units", "1"]`` to make a worker die mid-campaign).
    External workers connect with
    ``repro-ftsched campaign worker HOST:PORT`` at any time, including
    mid-campaign.  ``timeout`` is a *no-activity* deadline, not a wall
    clock for the whole run: it resets on every message any worker sends
    (heartbeats while computing, results, hellos), so a campaign with at
    least one live worker never trips it — however long the run or a
    single unit takes — while a run with no worker talking (every worker
    died and none reconnects) raises instead of hanging forever.

    ``lease`` sizes the unit batches handed to v2 workers: an int pins a
    fixed lease size, ``"auto"`` (the default) adapts to observed unit
    latency — targeting ~2x the heartbeat interval of work per lease —
    and a configured :class:`LeasePolicy` instance passes through.
    After ``run`` returns, ``worker_exit_codes`` holds the exit code of
    every worker this master spawned (``WORKER_EXIT_FAULT_INJECTED``
    identifies ``--max-units`` fault workers).
    """

    name = "socket"

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        spawn_workers: Union[int, Sequence[Sequence[str]]] = 0,
        heartbeat: float = DEFAULT_HEARTBEAT,
        timeout: Optional[float] = 300.0,
        lease: LeaseSpec = None,
    ) -> None:
        self.host = host
        self.port = port
        self.heartbeat = heartbeat
        self.timeout = timeout
        self.lease_policy = LeasePolicy.from_spec(
            lease, target_seconds=2.0 * heartbeat
        )
        if isinstance(spawn_workers, int):
            self._worker_specs: list[list[str]] = [[] for _ in range(spawn_workers)]
        else:
            self._worker_specs = [list(extra) for extra in spawn_workers]
        self.address: Optional[tuple[str, int]] = None
        self.worker_exit_codes: list[int] = []
        self._dead_after = max(heartbeat * DEAD_AFTER_BEATS, 5.0)

    # ------------------------------------------------------------- master

    def run(
        self,
        units: Sequence[WorkUnit],
        store: RunStore,
        progress: Optional[ProgressFn] = None,
    ) -> None:
        state = _MasterState(units, store, progress)
        server = socket.create_server((self.host, self.port))
        self.address = server.getsockname()[:2]
        stop = threading.Event()
        acceptor = threading.Thread(
            target=self._accept_loop,
            args=(server, state, stop),
            name="campaign-master-accept",
            daemon=True,
        )
        acceptor.start()
        workers = [self._spawn_worker(extra) for extra in self._worker_specs]
        try:
            last_activity = -1
            deadline: Optional[float] = None
            while not state.wait_done(0.2):
                activity = state.activity_count()
                if activity != last_activity:
                    # Any worker message (heartbeat, result, hello)
                    # resets the clock: `timeout` bounds how long the
                    # campaign may go with no worker talking, not its
                    # total length or a single unit's runtime.
                    last_activity = activity
                    deadline = (
                        None if self.timeout is None
                        else time.monotonic() + self.timeout
                    )
                if deadline is not None and time.monotonic() >= deadline:
                    missing = state.remaining()
                    raise TimeoutError(
                        f"socket campaign heard from no worker for "
                        f"{self.timeout:.0f}s: {len(missing)} unit(s) still "
                        f"pending "
                        f"(first: {missing[0].unit_id if missing else '-'}); "
                        "are any workers connected?"
                    )
                # Every worker this master spawned has exited and no
                # connection is serving units: the campaign can no longer
                # make progress (e.g. a unit crashes each worker in
                # turn) — fail now instead of sitting out the timeout.
                if (
                    workers
                    and all(p.poll() is not None for p in workers)
                    and state.active_connections() == 0
                ):
                    missing = state.remaining()
                    raise RuntimeError(
                        f"all {len(workers)} spawned worker(s) exited with "
                        f"{len(missing)} unit(s) incomplete "
                        f"(first: {missing[0].unit_id if missing else '-'}); "
                        "check the worker logs — a crashing work unit kills "
                        "every worker it is requeued to"
                    )
        finally:
            stop.set()
            state.finish()
            try:
                server.close()
            except OSError:
                pass
            self.worker_exit_codes = [
                self._reap_worker(proc) for proc in workers
            ]

    def _accept_loop(
        self, server: socket.socket, state: "_MasterState", stop: threading.Event
    ) -> None:
        server.settimeout(0.2)
        while not stop.is_set():
            try:
                conn, _addr = server.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            threading.Thread(
                target=self._serve_worker,
                args=(conn, state),
                name="campaign-master-worker",
                daemon=True,
            ).start()

    def _serve_worker(self, conn: socket.socket, state: "_MasterState") -> None:
        lc = _LineConn(conn)
        remaining: dict[str, WorkUnit] = {}
        serving = False
        try:
            hello = lc.recv(timeout=self._dead_after)
            if hello.get("type") != "hello":
                return
            state.note_activity()
            state.connection_opened()
            serving = True
            # Version negotiation: speak the highest protocol both sides
            # know.  A v1 worker (no proto field) is streamed one unit at
            # a time; a v2 worker gets policy-sized leases.
            proto = min(PROTO_VERSION, int(hello.get("proto", 1)))
            # Honor the worker's own heartbeat cadence (it may have been
            # started with --heartbeat much larger than the master's):
            # the deadness deadline is per-connection, from the hello.
            worker_beat = float(hello.get("heartbeat", self.heartbeat))
            dead_after = max(
                self._dead_after, worker_beat * DEAD_AFTER_BEATS
            )
            while True:
                lease = state.next_lease(
                    self.lease_policy if proto >= 2 else None
                )
                if lease is None:
                    lc.send({"type": "shutdown"})
                    return
                # Track the lease BEFORE the send: if the worker died at
                # the lease boundary (send raises), the claimed units
                # must requeue, not strand in flight.
                remaining = {u.unit_id: u for u in lease}
                if proto >= 2:
                    lc.send(
                        {"type": "lease",
                         "units": [u.to_dict() for u in lease]}
                    )
                else:
                    lc.send({"type": "unit", "unit": lease[0].to_dict()})
                while remaining:
                    message = lc.recv(timeout=dead_after)
                    state.note_activity()
                    kind = message.get("type")
                    if kind == "heartbeat":
                        continue
                    if kind != "result":
                        raise ConnectionError(
                            f"unexpected message type {kind!r}"
                        )
                    unit_id = message.get("unit_id")
                    unit = remaining.pop(unit_id, None)
                    if unit is None:
                        if state.is_done(unit_id):
                            # Duplicate delivery (a replayed ack): the
                            # unit is already stored, drop the copy.
                            continue
                        # A version-skewed or buggy worker answering for
                        # a unit it was never leased must not corrupt
                        # the store: drop the worker, requeue its lease.
                        raise ConnectionError(
                            f"result for {unit_id!r} outside this "
                            "worker's lease"
                        )
                    result = result_from_dict(
                        message["result"], unit.granularity, unit.rep
                    )
                    state.complete(unit, result)
                    seconds = message.get("seconds")
                    if seconds is not None:
                        self.lease_policy.observe(float(seconds))
        except (ConnectionError, OSError, socket.timeout, json.JSONDecodeError):
            # Worker died or went silent: put the *unfinished remainder*
            # of its lease back on the queue for the next live worker
            # (per-unit acks mean completed units never rerun).
            if remaining:
                state.requeue_units(list(remaining.values()))
        finally:
            if serving:
                state.connection_closed()
            lc.close()

    # ------------------------------------------------------- local workers

    def _spawn_worker(self, extra_args: Sequence[str]) -> subprocess.Popen:
        host, port = self.address
        env = os.environ.copy()
        # Workers must resolve `repro` exactly like the master process.
        env["PYTHONPATH"] = os.pathsep.join(p for p in sys.path if p)
        cmd = [
            sys.executable,
            "-m",
            "repro.cli",
            "campaign",
            "worker",
            f"{host}:{port}",
            "--heartbeat",
            str(self.heartbeat),
            *extra_args,
        ]
        return subprocess.Popen(
            cmd, env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL
        )

    @staticmethod
    def _reap_worker(proc: subprocess.Popen) -> int:
        try:
            return proc.wait(timeout=5.0)
        except subprocess.TimeoutExpired:
            proc.kill()
            return proc.wait(timeout=5.0)


class _MasterState:
    """Shared queue/accounting between the master's handler threads."""

    def __init__(
        self,
        units: Sequence[WorkUnit],
        store: RunStore,
        progress: Optional[ProgressFn],
    ) -> None:
        self._cond = threading.Condition()
        self._pending: deque[WorkUnit] = deque(units)
        self._in_flight: dict[str, WorkUnit] = {}
        self._done: set[str] = set()
        self._total = len(units)
        self._store = store
        self._progress = progress
        self._finished = False
        self._active = 0
        self._activity = 0

    def next_lease(
        self, policy: Optional[LeasePolicy]
    ) -> Optional[list[WorkUnit]]:
        """Claim the next lease of pending units; blocks while others are
        in flight (a requeue may refill the queue); ``None`` once the
        campaign is complete (or aborted).

        ``policy=None`` (a v1 worker) leases exactly one unit.  Otherwise
        the policy sizes the lease and assembly prefers locality: the
        lease is the queue head plus the next pending units sharing its
        ``locality_key``, so a worker computes one scenario back to back
        and reuses warm kernel/epoch-cache state.  Skipped units keep
        their queue order.
        """
        with self._cond:
            while True:
                if self._finished or len(self._done) >= self._total:
                    return None
                if self._pending:
                    k = 1
                    if policy is not None:
                        k = policy.lease_size(
                            len(self._pending), workers=max(1, self._active)
                        )
                    lease = [self._pending.popleft()]
                    if k > 1:
                        key = lease[0].locality_key
                        kept: deque[WorkUnit] = deque()
                        for unit in self._pending:
                            if len(lease) < k and unit.locality_key == key:
                                lease.append(unit)
                            else:
                                kept.append(unit)
                        self._pending = kept
                    for unit in lease:
                        self._in_flight[unit.unit_id] = unit
                    return lease
                self._cond.wait(timeout=0.1)

    def complete(self, unit: WorkUnit, result) -> None:
        with self._cond:
            self._in_flight.pop(unit.unit_id, None)
            if unit.unit_id in self._done:
                return  # duplicate from a requeue race; store dedups too
            self._done.add(unit.unit_id)
            self._store.append(unit, result)
            if self._progress is not None:
                self._progress(
                    unit_progress_line(unit, len(self._done), self._total)
                )
            self._cond.notify_all()

    def is_done(self, unit_id: Optional[str]) -> bool:
        with self._cond:
            return unit_id in self._done

    def requeue_units(self, units: Sequence[WorkUnit]) -> None:
        """Return a dead worker's unfinished lease remainder to the queue
        (front of the queue, original order preserved)."""
        with self._cond:
            requeued = False
            for unit in reversed(units):
                self._in_flight.pop(unit.unit_id, None)
                if unit.unit_id not in self._done:
                    self._pending.appendleft(unit)
                    requeued = True
            if requeued:
                self._cond.notify_all()

    def note_activity(self) -> None:
        """A worker message arrived (heartbeat/result/hello); the master
        uses this to distinguish "slow but alive" from "all dead"."""
        with self._cond:
            self._activity += 1

    def activity_count(self) -> int:
        with self._cond:
            return self._activity

    def connection_opened(self) -> None:
        with self._cond:
            self._active += 1

    def connection_closed(self) -> None:
        with self._cond:
            self._active -= 1
            self._cond.notify_all()

    def active_connections(self) -> int:
        with self._cond:
            return self._active

    def remaining(self) -> list[WorkUnit]:
        with self._cond:
            return list(self._pending) + list(self._in_flight.values())

    def wait_done(self, timeout: Optional[float]) -> bool:
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            while len(self._done) < self._total:
                wait_for = 0.2
                if deadline is not None:
                    wait_for = min(wait_for, deadline - time.monotonic())
                    if wait_for <= 0:
                        return False
                self._cond.wait(timeout=wait_for)
            return True

    def finish(self) -> None:
        with self._cond:
            self._finished = True
            self._cond.notify_all()


# ---------------------------------------------------------------- worker


def run_worker(
    host: str,
    port: int,
    max_units: Optional[int] = None,
    heartbeat: float = DEFAULT_HEARTBEAT,
    verbose: bool = False,
    idle_timeout: float = WORKER_IDLE_TIMEOUT,
) -> int:
    """Connect to a campaign master and compute units until shutdown.

    The body of ``repro-ftsched campaign worker HOST:PORT``.  A daemon
    thread heartbeats for the life of the connection so the master can
    tell "still computing" from "dead".  ``max_units`` makes the worker
    drop the connection after that many results — fault injection for
    the requeue path (quokka-style), never used in production; because
    the budget is checked per unit, a worker holding a multi-unit lease
    dies *mid-lease*, which is exactly what the partial-requeue path
    needs exercised.  ``idle_timeout`` bounds how long the worker waits
    for the master's next message (keepalive plus a recv timeout), so a
    worker orphaned by a master host that died without closing the TCP
    connection exits instead of blocking forever.

    Returns a process exit code: ``WORKER_EXIT_OK`` after a clean
    shutdown, ``WORKER_EXIT_ERROR`` on a genuine failure, and
    ``WORKER_EXIT_FAULT_INJECTED`` when the ``max_units`` budget ran out
    — distinct codes, so the conformance harness can assert *why* a
    worker died.
    """
    sock = socket.create_connection((host, port), timeout=10.0)
    sock.settimeout(None)
    sock.setsockopt(socket.SOL_SOCKET, socket.SO_KEEPALIVE, 1)
    # Default kernel keepalive idles ~2h — longer than the recv timeout,
    # i.e. useless.  Tighten it where the platform allows so a vanished
    # master host (no FIN) errors the socket in minutes, not an hour.
    for opt, value in (
        ("TCP_KEEPIDLE", 60), ("TCP_KEEPINTVL", 10), ("TCP_KEEPCNT", 5)
    ):
        if hasattr(socket, opt):
            sock.setsockopt(socket.IPPROTO_TCP, getattr(socket, opt), value)
    lc = _LineConn(sock)
    label = f"{socket.gethostname()}:{os.getpid()}"
    lc.send(
        {
            "type": "hello",
            "worker": label,
            "heartbeat": heartbeat,
            "proto": PROTO_VERSION,
        }
    )
    stop = threading.Event()

    def _beat() -> None:
        while not stop.wait(heartbeat):
            try:
                lc.send({"type": "heartbeat"})
            except OSError:
                return

    threading.Thread(target=_beat, name="campaign-heartbeat", daemon=True).start()
    done = 0
    try:
        while True:
            message = lc.recv(timeout=idle_timeout)
            kind = message.get("type")
            if kind == "shutdown":
                if verbose:
                    print(f"worker {label}: shutdown after {done} unit(s)",
                          file=sys.stderr)
                return WORKER_EXIT_OK
            if kind == "lease":
                units = [WorkUnit.from_dict(d) for d in message["units"]]
            elif kind == "unit":
                units = [WorkUnit.from_dict(message["unit"])]
            else:
                continue
            for unit in units:
                if verbose:
                    print(f"worker {label}: {unit.unit_id}", file=sys.stderr)
                t0 = time.perf_counter()
                result = unit.run()
                # The per-unit ack: the master stores each unit the
                # moment it completes, so a later crash of this worker
                # only requeues the lease's unfinished remainder.
                lc.send(
                    {
                        "type": "result",
                        "unit_id": unit.unit_id,
                        "result": result_to_dict(result),
                        "seconds": time.perf_counter() - t0,
                    }
                )
                done += 1
                if max_units is not None and done >= max_units:
                    # Simulated crash: vanish without a goodbye — mid-
                    # lease when more units were leased — so the master
                    # exercises dead-worker detection and partial-lease
                    # requeue.  The distinct exit code lets a harness
                    # tell this injected fault from a real crash.
                    return WORKER_EXIT_FAULT_INJECTED
    except (ConnectionError, OSError):
        return WORKER_EXIT_OK if done else WORKER_EXIT_ERROR
    finally:
        stop.set()
        lc.close()
