"""Statistical helpers for experiment campaigns.

The paper reports plain means over 60 random graphs; for a production
harness we also want dispersion and simple significance so that "A beats
B" claims can be checked honestly at smaller repetition counts.

The rep-level helpers at the bottom read the scenario-tagged per-rep
rows the campaign store keeps (``RunStore.rep_rows()`` /
``CampaignResult.rep_rows()``): every row names its scenario
(config/network/topology/policy), granularity, rep and algorithm, so
paired comparisons align the *same random instance* across algorithms —
and across scenarios, since scenario expansion keeps the instance seeds.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping, Optional, Sequence, Union


@dataclass(frozen=True)
class SeriesStats:
    """Summary statistics of one metric at one data point."""

    n: int
    mean: float
    std: float
    ci95_half_width: float

    @property
    def ci95(self) -> tuple[float, float]:
        return (self.mean - self.ci95_half_width, self.mean + self.ci95_half_width)


def summarize_series(values: Sequence[float]) -> SeriesStats:
    """Mean, sample std and a normal-approximation 95% CI half-width."""
    vals = [float(v) for v in values if not math.isnan(float(v))]
    n = len(vals)
    if n == 0:
        return SeriesStats(0, math.nan, math.nan, math.nan)
    mean = sum(vals) / n
    if n == 1:
        return SeriesStats(1, mean, 0.0, math.inf)
    var = sum((v - mean) ** 2 for v in vals) / (n - 1)
    std = math.sqrt(var)
    return SeriesStats(n, mean, std, 1.96 * std / math.sqrt(n))


def paired_mean_difference(
    a: Sequence[float], b: Sequence[float]
) -> tuple[float, float]:
    """Mean of ``a - b`` over paired observations, with its 95% CI half-width.

    Campaign comparisons are *paired* (same random instance scheduled by
    both algorithms), which removes the huge instance-to-instance variance;
    pairing is the reason small repetition counts already produce
    trustworthy orderings.
    """
    if len(a) != len(b):
        raise ValueError(f"paired series lengths differ: {len(a)} vs {len(b)}")
    diffs = [float(x) - float(y) for x, y in zip(a, b)]
    stats = summarize_series(diffs)
    return stats.mean, stats.ci95_half_width


def dominates(a: Sequence[float], b: Sequence[float]) -> bool:
    """True iff ``a`` is significantly smaller than ``b`` on paired data
    (the 95% CI of the paired difference lies strictly below zero)."""
    mean, half = paired_mean_difference(a, b)
    return mean + half < 0.0


def win_rate(a: Sequence[float], b: Sequence[float]) -> float:
    """Fraction of paired instances where ``a < b`` (ties count half)."""
    if len(a) != len(b):
        raise ValueError("paired series lengths differ")
    if not a:
        return math.nan
    score = 0.0
    for x, y in zip(a, b):
        if x < y:
            score += 1.0
        elif x == y:
            score += 0.5
    return score / len(a)


def geometric_mean_ratio(a: Sequence[float], b: Sequence[float]) -> float:
    """Geometric mean of ``a_i / b_i`` — the scale-free speedup summary."""
    if len(a) != len(b):
        raise ValueError("paired series lengths differ")
    logs = []
    for x, y in zip(a, b):
        if x <= 0 or y <= 0:
            raise ValueError("ratios need positive values")
        logs.append(math.log(x / y))
    if not logs:
        return math.nan
    return math.exp(sum(logs) / len(logs))


# --------------------------------------------------------------------------
# rep-level helpers over scenario-tagged store rows


def _instance_key(row: Mapping) -> tuple:
    """What identifies one scheduled random instance across algorithms."""
    return (
        row["config"],
        row["network"],
        row["topology"],
        row["policy"],
        row["granularity"],
        row["rep"],
    )


def _matches(row: Mapping, where: Optional[Mapping]) -> bool:
    # Delegates to the store's shared predicate so `where=` means the
    # same thing on raw row lists, streamed stores, and the columnar
    # fast paths (scalar equality, membership for list/tuple/set).
    from repro.experiments.store import row_matches

    return row_matches(row, where)


def rep_series(
    rows: Union[Sequence[Mapping], object],
    algorithm: str,
    metric: str = "norm_latency",
    where: Optional[Mapping] = None,
) -> list[float]:
    """One algorithm's per-rep metric values, in canonical instance order.

    ``rows`` is the output of ``rep_rows()`` — or any store: a source
    with a vectorized ``series_values`` (the columnar backend) answers
    without flattening a single row, one with ``iter_rows`` streams with
    the ``where`` pushed down, and a plain sequence takes the historical
    in-memory path.  ``where`` filters on any row column (e.g.
    ``{"topology": "ring"}`` or ``{"granularity": 1.0}``).  ``None``
    metric values (failed crash replays) come back as NaN so the series
    stays aligned with the instance grid.
    """
    fast = getattr(rows, "series_values", None)
    if fast is not None:
        return fast(algorithm, metric, where=where)
    if hasattr(rows, "iter_rows"):
        streamed = [
            (_instance_key(row), row[metric])
            for row in rows.iter_rows(where=where)
            if row["algorithm"] == algorithm
        ]
        streamed.sort(key=lambda kv: kv[0])
        return [math.nan if v is None else float(v) for _, v in streamed]
    picked = [
        row
        for row in rows
        if row["algorithm"] == algorithm and _matches(row, where)
    ]
    picked.sort(key=_instance_key)
    return [
        math.nan if row[metric] is None else float(row[metric]) for row in picked
    ]


def paired_rep_series(
    rows: Union[Sequence[Mapping], object],
    algo_a: str,
    algo_b: str,
    metric: str = "norm_latency",
    where: Optional[Mapping] = None,
) -> tuple[list[float], list[float]]:
    """Two algorithms' metric series over exactly the shared instances.

    Instances where either side is missing or ``None`` are dropped from
    *both* series, so the result feeds :func:`paired_mean_difference`,
    :func:`dominates`, :func:`win_rate` and
    :func:`geometric_mean_ratio` directly.  Sources dispatch like
    :func:`rep_series`: vectorized ``paired_series_values`` when the
    backend has it, streamed ``iter_rows`` otherwise, raw rows last.
    """
    fast = getattr(rows, "paired_series_values", None)
    if fast is not None:
        return fast(algo_a, algo_b, metric, where=where)
    if hasattr(rows, "iter_rows"):
        iterable = rows.iter_rows(where=where)
        where = None  # pushed down
    else:
        iterable = rows
    by_key: dict[tuple, dict[str, float]] = {}
    for row in iterable:
        if row["algorithm"] not in (algo_a, algo_b) or not _matches(row, where):
            continue
        value = row[metric]
        if value is None:
            continue
        by_key.setdefault(_instance_key(row), {})[row["algorithm"]] = float(value)
    a: list[float] = []
    b: list[float] = []
    for key in sorted(by_key):
        pair = by_key[key]
        if algo_a in pair and algo_b in pair:
            a.append(pair[algo_a])
            b.append(pair[algo_b])
    return a, b


@dataclass(frozen=True)
class PairedComparison:
    """Headline paired statistics of ``a`` vs ``b`` on one metric."""

    algo_a: str
    algo_b: str
    metric: str
    n: int
    mean_diff: float  # mean of a - b (negative: a is better on cost metrics)
    ci95_half_width: float
    win_rate: float  # fraction of instances where a < b
    geomean_ratio: float  # geometric mean of a / b

    @property
    def significant(self) -> bool:
        """True when the 95% CI of the paired difference excludes zero."""
        return (
            self.n > 1
            and math.isfinite(self.ci95_half_width)
            and abs(self.mean_diff) > self.ci95_half_width
        )


def compare_reps(
    rows: Union[Sequence[Mapping], object],
    algo_a: str,
    algo_b: str,
    metric: str = "norm_latency",
    where: Optional[Mapping] = None,
) -> PairedComparison:
    """Paired comparison of two algorithms over stored campaign rows
    (or a store source; dispatches like :func:`paired_rep_series`)."""
    a, b = paired_rep_series(rows, algo_a, algo_b, metric, where=where)
    if a:
        mean_diff, half = paired_mean_difference(a, b)
        ratio = geometric_mean_ratio(a, b) if all(
            x > 0 for x in a + b
        ) else math.nan
        rate = win_rate(a, b)
    else:
        mean_diff = half = ratio = rate = math.nan
    return PairedComparison(
        algo_a=algo_a,
        algo_b=algo_b,
        metric=metric,
        n=len(a),
        mean_diff=mean_diff,
        ci95_half_width=half,
        win_rate=rate,
        geomean_ratio=ratio,
    )
