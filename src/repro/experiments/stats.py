"""Statistical helpers for experiment campaigns.

The paper reports plain means over 60 random graphs; for a production
harness we also want dispersion and simple significance so that "A beats
B" claims can be checked honestly at smaller repetition counts.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence


@dataclass(frozen=True)
class SeriesStats:
    """Summary statistics of one metric at one data point."""

    n: int
    mean: float
    std: float
    ci95_half_width: float

    @property
    def ci95(self) -> tuple[float, float]:
        return (self.mean - self.ci95_half_width, self.mean + self.ci95_half_width)


def summarize_series(values: Sequence[float]) -> SeriesStats:
    """Mean, sample std and a normal-approximation 95% CI half-width."""
    vals = [float(v) for v in values if not math.isnan(float(v))]
    n = len(vals)
    if n == 0:
        return SeriesStats(0, math.nan, math.nan, math.nan)
    mean = sum(vals) / n
    if n == 1:
        return SeriesStats(1, mean, 0.0, math.inf)
    var = sum((v - mean) ** 2 for v in vals) / (n - 1)
    std = math.sqrt(var)
    return SeriesStats(n, mean, std, 1.96 * std / math.sqrt(n))


def paired_mean_difference(
    a: Sequence[float], b: Sequence[float]
) -> tuple[float, float]:
    """Mean of ``a - b`` over paired observations, with its 95% CI half-width.

    Campaign comparisons are *paired* (same random instance scheduled by
    both algorithms), which removes the huge instance-to-instance variance;
    pairing is the reason small repetition counts already produce
    trustworthy orderings.
    """
    if len(a) != len(b):
        raise ValueError(f"paired series lengths differ: {len(a)} vs {len(b)}")
    diffs = [float(x) - float(y) for x, y in zip(a, b)]
    stats = summarize_series(diffs)
    return stats.mean, stats.ci95_half_width


def dominates(a: Sequence[float], b: Sequence[float]) -> bool:
    """True iff ``a`` is significantly smaller than ``b`` on paired data
    (the 95% CI of the paired difference lies strictly below zero)."""
    mean, half = paired_mean_difference(a, b)
    return mean + half < 0.0


def win_rate(a: Sequence[float], b: Sequence[float]) -> float:
    """Fraction of paired instances where ``a < b`` (ties count half)."""
    if len(a) != len(b):
        raise ValueError("paired series lengths differ")
    if not a:
        return math.nan
    score = 0.0
    for x, y in zip(a, b):
        if x < y:
            score += 1.0
        elif x == y:
            score += 0.5
    return score / len(a)


def geometric_mean_ratio(a: Sequence[float], b: Sequence[float]) -> float:
    """Geometric mean of ``a_i / b_i`` — the scale-free speedup summary."""
    if len(a) != len(b):
        raise ValueError("paired series lengths differ")
    logs = []
    for x, y in zip(a, b):
        if x <= 0 or y <= 0:
            raise ValueError("ratios need positive values")
        logs.append(math.log(x / y))
    if not logs:
        return math.nan
    return math.exp(sum(logs) / len(logs))
