"""Campaign driver: grid → executor → store → results.

The composition root of the experiments layer.  A campaign is described
by a :class:`~repro.experiments.grid.ScenarioGrid`, executed by any
:class:`~repro.experiments.executors.Executor`, and recorded in a
:class:`~repro.experiments.store.RunStore`; this module wires the three
together and rebuilds :class:`~repro.experiments.harness.CampaignResult`
views from the store afterwards.  Because units are pure and the store
is keyed by unit id, the same entry points transparently provide
*resume*: point ``store`` at a directory of a killed campaign with
``resume=True`` and only the missing units run.

:func:`run_grid` is the engine the declarative front door drives: a
:class:`repro.experiments.api.CampaignSpec` (a serializable description
of grid + executor + store + lease) run through
:class:`repro.experiments.api.Campaign` ends up here.  The
:func:`run_campaign` / :func:`resume_campaign` keyword entry points are
kept as thin shims, bit-identical to the spec path.
"""

from __future__ import annotations

from pathlib import Path
from typing import Callable, Optional, Union

from repro.experiments.config import ExperimentConfig
from repro.experiments.executors import Executor, LeaseSpec, make_executor
from repro.experiments.grid import ScenarioGrid
from repro.experiments.harness import CampaignResult
from repro.experiments.store import RunStore, StoreError, open_store

#: accepted by every ``store=`` parameter: a live store, a directory, or
#: ``None`` for an ephemeral in-memory store
StoreLike = Union[RunStore, str, Path, None]


def resolve_store(store: StoreLike) -> RunStore:
    if isinstance(store, RunStore):
        return store
    if store is None:
        return RunStore(None)
    # Bare directories open with whichever backend wrote them (manifest
    # record, or file sniffing for fresh/pre-backend directories), so a
    # columnar campaign resumes onto columnar chunks.
    return open_store(store)


def run_grid(
    grid: ScenarioGrid,
    store: StoreLike = None,
    executor: Union[Executor, str, None] = None,
    progress: Optional[Callable[[str], None]] = None,
    workers: Optional[int] = None,
    resume: bool = False,
    lease: "LeaseSpec" = None,
) -> list[CampaignResult]:
    """Execute every unit of ``grid`` and return one result per scenario.

    ``store`` may be a directory (results persist as they complete) or
    ``None`` (in-memory).  With ``resume=True`` units already present in
    the store are skipped — the crash-recovery path — otherwise a
    non-empty store is an error, so two campaigns can never silently mix.
    ``lease`` sizes worker leases / pool chunks (``"auto"`` or an int;
    ignored when ``executor`` is an already-configured instance).
    Results are identical across executors, worker counts, lease sizes,
    and interrupt/resume splits: aggregation reads the store in
    canonical grid order, not completion order.
    """
    owns_store = not isinstance(store, RunStore)
    run_store = resolve_store(store)
    try:
        run_store.ensure_manifest(grid)
        units = grid.units()
        completed = run_store.completed_ids()
        if completed and not resume:
            raise StoreError(
                f"store already holds {len(completed)} completed unit(s); "
                "pass resume=True (CLI: --resume) to continue the campaign"
            )
        known = {unit.unit_id for unit in units}
        stray = completed - known
        if stray:
            raise StoreError(
                f"store holds {len(stray)} unit(s) outside this grid "
                f"(first: {sorted(stray)[0]}); wrong --store directory?"
            )
        todo = [unit for unit in units if unit.unit_id not in completed]
        if todo:
            make_executor(executor, workers=workers, lease=lease).run(
                todo, run_store, progress=progress
            )
        results = run_store.results()
    finally:
        if owns_store:
            run_store.close()
    missing = [unit.unit_id for unit in units if unit.unit_id not in results]
    if missing:
        raise StoreError(
            f"executor finished but {len(missing)} unit(s) missing from the "
            f"store (first: {missing[0]})"
        )
    return [
        CampaignResult(
            config=config,
            reps=[results[unit.unit_id] for unit in grid.units_for(config)],
        )
        for config in grid.configs
    ]


def run_campaign(
    config: ExperimentConfig,
    progress: Optional[Callable[[str], None]] = None,
    workers: Optional[int] = None,
    executor: Union[Executor, str, None] = None,
    store: StoreLike = None,
    resume: bool = False,
    lease: "LeaseSpec" = None,
) -> CampaignResult:
    """Run the full granularity sweep of one figure config.

    The single-scenario convenience wrapper over :func:`run_grid`; every
    historical call site (``workers=N`` for a process pool) keeps its
    behaviour, and ``executor=``/``store=``/``resume=``/``lease=``
    expose the distributed and resumable paths.
    """
    return run_grid(
        ScenarioGrid.from_config(config),
        store=store,
        executor=executor,
        progress=progress,
        workers=workers,
        resume=resume,
        lease=lease,
    )[0]


def resume_campaign(
    directory: Union[str, Path],
    executor: Union[Executor, str, None] = None,
    progress: Optional[Callable[[str], None]] = None,
    workers: Optional[int] = None,
    lease: "LeaseSpec" = None,
) -> list[CampaignResult]:
    """Finish a killed campaign from its store directory alone.

    The manifest records the generating grid, so nothing but the
    directory is needed: completed units are skipped, missing ones run
    on ``executor``, and the full results are returned.
    """
    with open_store(directory) as store:
        grid = store.read_manifest_grid()
        return run_grid(
            grid,
            store=store,
            executor=executor,
            progress=progress,
            workers=workers,
            resume=True,
            lease=lease,
        )
