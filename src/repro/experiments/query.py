"""Streaming store-backed campaign views.

:class:`~repro.experiments.harness.CampaignResult` answers everything
from a materialized ``reps`` list — fine for in-memory campaigns,
hopeless at a million rows.  This module is the streaming counterpart:
:func:`aggregate_points` folds a store's rows into the per-granularity
:class:`~repro.experiments.harness.PointResult` aggregates one streamed
row at a time (with the scenario predicate pushed down to the backend),
and :class:`StoreCampaignView` wraps that as a ``CampaignResult``-shaped
object — ``points`` / ``rows()`` / ``series()`` / ``rep_rows()`` — so
``report.render_figure``, ``svg`` rendering, and ``campaign_comparison``
run directly off a store without ever holding the campaign in memory.

The aggregation arithmetic *is* the harness's ``_aggregate_point`` —
rows are regrouped into per-unit results in (granularity, rep) order
first, so every mean is computed over the same floats in the same order
as the in-memory path and the numbers stay bit-identical.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Mapping, Optional, Sequence

from repro.experiments.config import ExperimentConfig
from repro.experiments.harness import (
    CampaignResult,
    PointResult,
    RepResult,
    _aggregate_point,
)
from repro.experiments.store import TAG_COLUMNS, canonical_row_key

#: row keys that are coordinates rather than metric values
_COORDINATE_KEYS = frozenset(TAG_COLUMNS) | {
    "granularity",
    "rep",
    "algorithm",
    "faultfree_norm",
}


def scenario_where(config: ExperimentConfig) -> dict[str, str]:
    """The pushdown predicate selecting one scenario's rows."""
    name, model, topology, policy = config.scenario_key()
    return {
        "config": name,
        "network": model,
        "topology": topology,
        "policy": policy,
    }


def aggregate_points(source, config: ExperimentConfig) -> list[PointResult]:
    """Fold one scenario's stored rows into per-granularity aggregates.

    ``source`` is any row source with ``iter_rows`` (both store
    backends); rows stream through once, regrouped into per-unit
    :class:`RepResult`\\ s and folded with the harness's own
    ``_aggregate_point`` in canonical (granularity, rep) order — the
    exact arithmetic ``CampaignResult.points`` performs, so the
    aggregates are bit-identical to the in-memory path.
    """
    units: dict[tuple, tuple[dict, dict]] = {}
    for row in source.iter_rows(where=scenario_where(config)):
        key = (row["granularity"], row["rep"])
        entry = units.get(key)
        if entry is None:
            entry = units[key] = ({}, {})
        faultfree, metrics = entry
        algo = row["algorithm"]
        faultfree[algo] = row["faultfree_norm"]
        metrics[algo] = {
            k: v for k, v in row.items() if k not in _COORDINATE_KEYS
        }
    by_g: dict[float, list[RepResult]] = {g: [] for g in config.granularities}
    for (g, rep), (faultfree, metrics) in units.items():
        if g in by_g:  # stray granularities are ignored, like from_store
            by_g[g].append(
                RepResult(
                    granularity=g,
                    rep=rep,
                    faultfree_norm=faultfree,
                    metrics=metrics,
                )
            )
    for reps in by_g.values():
        reps.sort(key=lambda r: r.rep)
    return [
        _aggregate_point(config, g, by_g[g])
        for g in config.granularities
        if by_g[g]
    ]


@dataclass
class StoreCampaignView:
    """A ``CampaignResult``-shaped streaming view over one stored scenario.

    Everything the report/SVG/comparison layers touch — ``config``,
    ``points``, ``rows()``, ``series()``, ``rep_rows()``,
    ``scenario_columns()`` — backed by pushdown queries against the
    store instead of a materialized ``reps`` list.  Aggregates are
    computed once (streamed) and cached; ``rep_rows()`` is the only
    call that materializes per-rep rows, and only for this view's
    scenario.
    """

    store: object
    config: ExperimentConfig
    _agg: Optional[CampaignResult] = field(default=None, repr=False, compare=False)

    def _aggregated(self) -> CampaignResult:
        if self._agg is None:
            self._agg = CampaignResult(
                config=self.config,
                reps=[],
                _points=aggregate_points(self.store, self.config),
            )
        return self._agg

    @property
    def points(self) -> list[PointResult]:
        return self._aggregated().points

    def scenario_columns(self) -> dict[str, str]:
        return self._aggregated().scenario_columns()

    def rows(self) -> list[dict]:
        return self._aggregated().rows()

    def series(self, column: str) -> list[float]:
        return self._aggregated().series(column)

    def iter_rows(
        self,
        where: Optional[Mapping] = None,
        columns: Optional[Sequence[str]] = None,
    ) -> Iterator[dict]:
        """Stream this scenario's rows (scenario predicate + ``where``)."""
        merged = dict(scenario_where(self.config))
        if where:
            merged.update(where)
        return self.store.iter_rows(where=merged, columns=columns)

    def rep_rows(self) -> list[dict]:
        """This scenario's per-rep rows, canonically ordered."""
        rows = list(self.iter_rows())
        rows.sort(key=canonical_row_key)
        return rows
