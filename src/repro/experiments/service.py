"""A persistent multi-tenant campaign service over the socket protocol.

The :class:`SocketExecutor` master runs exactly one campaign and dies
with it.  :class:`CampaignService` inverts that ownership: one
long-lived master process accepts many :class:`~repro.experiments.api.
CampaignSpec` submissions over the wire, runs them as *jobs* on one
shared worker pool, and outlives every one of them.  Each job keeps the
full unit-level machinery of the socket executor — batch leases, crash
requeue, work stealing, speculation, first-ack-wins dedup — by owning
its own :class:`~repro.experiments.executors.socket._MasterState`, its
own per-job :class:`~repro.experiments.executors.base.LeasePolicy`
(one job's unit times never size another's leases), and its own durable
store under the service root, so every bit-identical guarantee holds
per job.

Wire protocol v4 extends v3 with *client* messages; the worker flow
(``hello`` / ``lease`` / ``result`` / ``revoke`` / ``shutdown``) is
unchanged, and a connection is classified by its first message — a
``hello`` is a worker, anything else is a client:

================  ==============================================  =========
message           fields                                          direction
================  ==============================================  =========
``submit``        ``spec`` (CampaignSpec dict), ``tenant``,       c -> s
                  ``priority`` (int >= 0)
``submitted``     job snapshot (``job_id``, ``store``, ...)       s -> c
``status``        ``job_id``                                      c -> s
``jobs``          —                                               c -> s
``cancel``        ``job_id``                                      c -> s
``submit_units``  ``units`` (WorkUnit dicts), ``tenant``,         c -> s
                  ``priority``; the connection stays open and
                  streams ``result`` messages back
``result``        ``unit_id``, ``result``         [submit_units]  s -> c
``job_done``      ``job_id``                      [submit_units]  s -> c
``error``         ``error``, optional ``key``                     s -> c
================  ==============================================  =========

**Scheduling** is two-level.  Across tenants: weighted fair queuing —
each tenant has a virtual time advanced by ``1 / (1 + priority)`` per
granted lease, and the idle worker is offered work from the runnable
tenant with the smallest virtual time first (ties break by tenant
name), so a priority-1 tenant receives twice the grants of a priority-0
tenant while the priority-0 tenant still makes continuous progress —
neither can starve the other.  Within a tenant: highest priority, then
submission order.  An idle worker drains *pending* queues across all
jobs before stealing or speculating within one.

**Durability**: every submitted spec's store is rewritten under
``root/jobs/<job_id>/store`` (an in-memory store becomes JSONL — a
service job always survives a restart); ``job.json`` beside it records
the job's identity and terminal state, and the store manifest carries
the same identity as ``extra`` metadata.  On start the service rescans
``root/jobs``, re-opens every incomplete job's store via
:func:`~repro.experiments.store.open_store` sniffing, and resumes
exactly the units missing from it — ``resume_campaign`` semantics, so
a SIGKILLed service restarted on the same root finishes both halves of
every interrupted job bit-identically.  Results are queryable while
jobs run: ``status`` reports live done/total counts, and the job's
store directory can be opened read-only with ``open_store`` /
``StoreCampaignView`` at any time.

``submit_units`` jobs are the executor client path
(``ExecutorSpec(kind="service", address=...)``): the units stream in
over the connection, results stream back, and the *client* owns the
store — these jobs are not recoverable and die with their connection.
"""

from __future__ import annotations

import json
import os
import shutil
import socket
import subprocess
import sys
import threading
import time
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Mapping, Optional, Sequence, Union

from repro.experiments.api import CampaignSpec, ExecutorSpec
from repro.experiments.executors.base import (
    LeasePolicy,
    LeaseSpec,
    ProgressFn,
    SpeculationPolicy,
    SpeculationSpec,
    parse_steal,
)
from repro.experiments.executors.socket import (
    DEAD_AFTER_BEATS,
    DEFAULT_HEARTBEAT,
    PROTO_VERSION,
    WorkerPool,
    _connect_with_backoff,
    _LineConn,
    _MasterState,
)
from repro.experiments.grid import WorkUnit
from repro.experiments.store import (
    RunStore,
    make_store,
    open_store,
    result_from_dict,
    result_to_dict,
)
from repro.utils.errors import CampaignConfigError

#: file beside each job's store recording identity and terminal state
JOB_FILE_NAME = "job.json"
#: file in the service root recording the live service's bound address
SERVICE_FILE_NAME = "service.json"
#: every state a job moves through; ``queued`` only exists transiently
#: inside submit (a job is leasable the moment it is registered)
JOB_STATES = ("running", "done", "cancelled", "failed")


def _atomic_write_json(path: Path, payload: Mapping) -> None:
    """Write-then-rename so a SIGKILL mid-write never leaves a torn
    file — recovery either sees the old record or the new one."""
    tmp = path.with_suffix(".tmp")
    tmp.write_text(json.dumps(payload, indent=2) + "\n")
    os.replace(tmp, path)


#: job states whose directories :func:`gc_job_dirs` may remove
TERMINAL_JOB_STATES = ("done", "cancelled", "failed")


def gc_job_dirs(
    root: Union[str, Path],
    ttl: float,
    now: Optional[float] = None,
) -> list[str]:
    """Prune terminal job directories older than ``ttl`` seconds.

    Scans ``root/jobs/job-*`` and removes every directory whose
    ``job.json`` records a terminal state (``done`` / ``cancelled`` /
    ``failed``) and was last written at least ``ttl`` seconds ago (by
    file mtime, against ``now`` — defaults to the current time).
    Directories without a ``job.json``, with an unreadable one, or
    recording any non-terminal state are **never** touched: a running
    or incomplete job survives every sweep and is resumed by the next
    service start.  Returns the removed job ids.
    """
    if ttl < 0:
        raise ValueError(f"job ttl must be >= 0, got {ttl}")
    if now is None:
        now = time.time()
    removed: list[str] = []
    jobs_dir = Path(root) / "jobs"
    if not jobs_dir.is_dir():
        return removed
    for job_dir in sorted(jobs_dir.glob("job-*")):
        job_file = job_dir / JOB_FILE_NAME
        try:
            meta = json.loads(job_file.read_text())
            age = now - job_file.stat().st_mtime
        except (OSError, json.JSONDecodeError):
            continue  # no/unreadable job.json: assume live, keep it
        if meta.get("state") not in TERMINAL_JOB_STATES or age < ttl:
            continue
        job_id = meta.get("job_id", job_dir.name)
        try:
            shutil.rmtree(job_dir)
        except OSError:
            continue  # a half-removed dir is retried next sweep
        removed.append(job_id)
    return removed


@dataclass
class ServiceJob:
    """One submitted campaign: identity, its own master state + store,
    and the mutable lifecycle state the service persists."""

    job_id: str
    tenant: str
    priority: int
    seq: int
    status: str
    spec: Optional[CampaignSpec] = None
    directory: Optional[Path] = None
    store: Optional[RunStore] = None
    state: Optional[_MasterState] = None
    lease_policy: Optional[LeasePolicy] = None
    error: Optional[str] = None
    #: terminal done/total recorded at persist time (recovered terminal
    #: jobs have no live state to count from)
    final_counts: Optional[tuple[int, int]] = None
    relay: bool = False

    def counts(self) -> tuple[int, int]:
        if self.state is not None and self.status == "running":
            return self.state.progress_counts()
        if self.final_counts is not None:
            return self.final_counts
        if self.state is not None:
            return self.state.progress_counts()
        return 0, 0

    def snapshot(self) -> dict:
        done, total = self.counts()
        return {
            "job_id": self.job_id,
            "tenant": self.tenant,
            "priority": self.priority,
            "state": self.status,
            "done": done,
            "total": total,
            "store": str(self.directory / "store") if self.directory else None,
            "error": self.error,
        }

    def persist(self) -> None:
        """Write ``job.json`` (no-op for relay jobs, which die with
        their client connection and are never recovered)."""
        if self.directory is None or self.spec is None:
            return
        done, total = self.counts()
        _atomic_write_json(
            self.directory / JOB_FILE_NAME,
            {
                "job_id": self.job_id,
                "tenant": self.tenant,
                "priority": self.priority,
                "state": self.status,
                "done": done,
                "total": total,
                "spec": self.spec.to_dict(),
                "error": self.error,
            },
        )


class _RelayStore:
    """The store a ``submit_units`` job appends into: each first-win
    result is streamed back to the submitting client as a ``result``
    message.  Implements exactly the slice of the store contract
    :meth:`_MasterState.complete` uses (idempotent ``append``)."""

    def __init__(self, lc: _LineConn, job_id: str) -> None:
        self._lc = lc
        self._job_id = job_id
        self._lock = threading.Lock()
        self._seen: set[str] = set()

    def append(self, unit: WorkUnit, result, attempt: str = "primary") -> bool:
        with self._lock:
            if unit.unit_id in self._seen:
                return False
            self._seen.add(unit.unit_id)
            try:
                self._lc.send(
                    {
                        "type": "result",
                        "job_id": self._job_id,
                        "unit_id": unit.unit_id,
                        "result": result_to_dict(result),
                    }
                )
            except OSError:
                # Client vanished mid-stream; the relay handler notices
                # the dead connection and cancels the job — the unit
                # still counts as done so the job drains instead of
                # re-leasing units nobody will receive.
                pass
            return True

    def close(self) -> None:
        pass


class CampaignService:
    """A long-lived campaign master serving many jobs on one worker pool.

    ``root`` is the durable service directory (jobs live under
    ``root/jobs/<job_id>``); starting a service on a root that already
    holds jobs *resumes* every incomplete one.  ``spawn_workers`` is an
    int or a sequence of extra-argv lists exactly like
    :class:`SocketExecutor`; external ``repro-ftsched campaign worker``
    processes can connect at any time and are shared across jobs.
    ``lease`` / ``speculate`` / ``steal`` set the service-wide defaults;
    each job gets its *own* lease policy (a submitted spec's ``lease``
    field overrides the default for that job).
    """

    def __init__(
        self,
        root: Union[str, Path],
        host: str = "127.0.0.1",
        port: int = 0,
        spawn_workers: Union[int, Sequence[Sequence[str]]] = 0,
        heartbeat: float = DEFAULT_HEARTBEAT,
        lease: LeaseSpec = None,
        speculate: SpeculationSpec = None,
        steal: Union[str, bool, None] = None,
        job_ttl: Optional[float] = None,
    ) -> None:
        self.root = Path(root)
        self.host = host
        self.port = port
        self.heartbeat = heartbeat
        self._lease_spec = lease
        self.speculation = SpeculationPolicy.from_spec(speculate)
        self.steal = parse_steal(steal)
        if isinstance(spawn_workers, int):
            self._worker_specs: list[list[str]] = [[] for _ in range(spawn_workers)]
        else:
            self._worker_specs = [list(extra) for extra in spawn_workers]
        self.address: Optional[tuple[str, int]] = None
        self._server: Optional[socket.socket] = None
        self._pool: Optional[WorkerPool] = None
        self._stop = threading.Event()
        self._lock = threading.Lock()
        self._jobs: dict[str, ServiceJob] = {}
        self._order: list[ServiceJob] = []
        self._seq = 0
        self._next_conn_id = 0
        #: weighted-fair-queuing virtual time per tenant
        self._vtime: dict[str, float] = {}
        self._conns: set[_LineConn] = set()
        self._dead_after = max(heartbeat * DEAD_AFTER_BEATS, 5.0)
        if job_ttl is not None and job_ttl < 0:
            raise ValueError(f"job ttl must be >= 0, got {job_ttl}")
        #: prune terminal job dirs older than this many seconds (None
        #: keeps them forever); swept at start and periodically while
        #: serving
        self.job_ttl = job_ttl
        self._last_gc = time.monotonic()

    # ------------------------------------------------------------ lifecycle

    def start(self) -> tuple[str, int]:
        """Bind, recover incomplete jobs from the root, spawn the worker
        pool, and start serving; returns the actually-bound address."""
        self.jobs_dir.mkdir(parents=True, exist_ok=True)
        if self.job_ttl is not None:
            gc_job_dirs(self.root, self.job_ttl)
        self._recover_jobs()
        self._server = socket.create_server((self.host, self.port))
        self.address = self._server.getsockname()[:2]
        _atomic_write_json(
            self.root / SERVICE_FILE_NAME,
            {"host": self.address[0], "port": self.address[1], "pid": os.getpid()},
        )
        threading.Thread(
            target=self._accept_loop,
            name="campaign-service-accept",
            daemon=True,
        ).start()
        self._pool = WorkerPool(self._worker_specs, self._spawn_worker)
        self._pool.spawn_all()
        threading.Thread(
            target=self._supervise_loop,
            name="campaign-service-supervise",
            daemon=True,
        ).start()
        return self.address

    def serve_forever(self) -> None:
        """Block until :meth:`stop` (the CLI's foreground loop)."""
        while not self._stop.wait(timeout=0.5):
            if self.job_ttl is not None:
                interval = max(1.0, min(self.job_ttl, 60.0))
                if time.monotonic() - self._last_gc >= interval:
                    self.gc_now()

    def gc_now(self) -> list[str]:
        """Run one TTL sweep immediately; returns the removed job ids.

        Removed jobs are also unregistered from the live tables so
        ``jobs`` / ``status`` stop reporting them.  No-op when the
        service has no ``job_ttl``.
        """
        self._last_gc = time.monotonic()
        if self.job_ttl is None:
            return []
        removed = gc_job_dirs(self.root, self.job_ttl)
        if removed:
            with self._lock:
                for job_id in removed:
                    job = self._jobs.pop(job_id, None)
                    if job is not None:
                        self._order.remove(job)
        return removed

    def request_stop(self) -> None:
        """Ask :meth:`serve_forever` to return — safe from a signal
        handler (only sets an event; the teardown runs in the caller)."""
        self._stop.set()

    def stop(self) -> None:
        """Shut down: idle workers get ``shutdown`` messages, stragglers
        are terminated, running jobs stay ``running`` on disk so the
        next start resumes them."""
        self._stop.set()
        if self._pool is not None:
            # Give spawned workers a moment to take the shutdown their
            # idle serve loops send, then terminate whatever remains.
            deadline = time.monotonic() + 2.0
            while time.monotonic() < deadline and not all(
                p.poll() is not None for p in self._pool.procs
            ):
                time.sleep(0.05)
            self._pool.terminate_all()
            self._pool.reap_all()
        if self._server is not None:
            try:
                self._server.close()
            except OSError:
                pass
        with self._lock:
            conns = list(self._conns)
            jobs = list(self._order)
        for lc in conns:
            lc.close()
        for job in jobs:
            if job.state is not None:
                job.state.finish()
            if job.store is not None:
                job.store.close()

    @property
    def jobs_dir(self) -> Path:
        return self.root / "jobs"

    def __enter__(self) -> "CampaignService":
        return self

    def __exit__(self, *exc) -> None:
        self.stop()

    # ------------------------------------------------------------ recovery

    def _recover_jobs(self) -> None:
        """Rescan ``root/jobs`` and resume every incomplete job.

        Terminal jobs (done/cancelled/failed) register for ``status`` /
        ``jobs`` queries without a live state; incomplete ones re-open
        their store (``open_store`` backend sniffing), verify the
        manifest against the recorded spec's grid, and lease out exactly
        the units the store does not hold yet."""
        for job_dir in sorted(self.jobs_dir.glob("job-*")):
            job_file = job_dir / JOB_FILE_NAME
            if not job_file.exists():
                continue  # a kill landed before job.json: nothing leased
            try:
                seq = int(job_dir.name.split("-", 1)[1])
            except ValueError:
                continue
            self._seq = max(self._seq, seq)
            try:
                meta = json.loads(job_file.read_text())
            except (OSError, json.JSONDecodeError):
                continue  # torn writes are impossible (atomic rename)
            job = ServiceJob(
                job_id=meta["job_id"],
                tenant=meta.get("tenant", "default"),
                priority=int(meta.get("priority", 0)),
                seq=seq,
                status=meta.get("state", "running"),
                directory=job_dir,
                final_counts=(
                    int(meta.get("done", 0)),
                    int(meta.get("total", 0)),
                ),
            )
            try:
                job.spec = CampaignSpec.from_dict(meta["spec"])
            except (KeyError, CampaignConfigError) as exc:
                job.status = "failed"
                job.error = f"unrecoverable spec: {exc}"
                self._register(job)
                continue
            if job.status in ("done", "cancelled", "failed"):
                self._register(job)
                continue
            try:
                self._resume_job(job)
            except Exception as exc:  # a corrupt store must not kill start
                job.status = "failed"
                job.error = f"resume failed: {exc}"
                job.persist()
            self._register(job)

    def _resume_job(self, job: ServiceJob) -> None:
        store_dir = job.directory / "store"
        grid = job.spec.grid()
        extra = self._manifest_extra(job)
        if store_dir.exists():
            store = open_store(store_dir)
        else:  # killed between job.json and the first manifest write
            store = make_store(job.spec.store.resolved_backend, store_dir)
        store.ensure_manifest(grid, extra=extra)
        completed = store.completed_ids()
        todo = [u for u in grid.units() if u.unit_id not in completed]
        job.store = store
        job.lease_policy = self._job_lease_policy(job.spec.lease)
        if not todo:
            job.status = "done"
            job.final_counts = (grid.total_units, grid.total_units)
            job.persist()
            store.close()
            job.store = None
            return
        job.state = self._new_state(todo, store, job.lease_policy)
        job.status = "running"
        job.persist()

    # ------------------------------------------------------------- submit

    def submit_spec(
        self,
        data: Mapping,
        tenant: str = "default",
        priority: int = 0,
    ) -> dict:
        """Register one campaign-spec job; returns its status snapshot.

        The spec validates exactly like a local campaign
        (:class:`CampaignConfigError` names the offending key), then its
        store is rewritten under the job directory — ``memory`` becomes
        ``jsonl`` so every service job survives a restart — and its
        executor field is dropped (the service *is* the executor)."""
        tenant, priority = self._check_tenant(tenant, priority)
        with self._lock:
            self._seq += 1
            job_id = f"job-{self._seq:06d}"
        job_dir = self.jobs_dir / job_id
        store_dir = job_dir / "store"
        payload = dict(data)
        store_tbl = dict(payload.get("store") or {})
        if store_tbl.get("backend") in (None, "memory"):
            store_tbl["backend"] = "jsonl"
        store_tbl["directory"] = str(store_dir)
        payload["store"] = store_tbl
        spec = CampaignSpec.from_dict(payload)
        spec = replace(spec, executor=ExecutorSpec())
        grid = spec.grid()
        job = ServiceJob(
            job_id=job_id,
            tenant=tenant,
            priority=priority,
            seq=self._seq,
            status="running",
            spec=spec,
            directory=job_dir,
        )
        job_dir.mkdir(parents=True, exist_ok=True)
        store = make_store(spec.store.resolved_backend, store_dir)
        store.ensure_manifest(grid, extra=self._manifest_extra(job))
        job.store = store
        job.lease_policy = self._job_lease_policy(spec.lease)
        job.state = self._new_state(grid.units(), store, job.lease_policy)
        job.persist()
        self._register(job)
        return job.snapshot()

    def submit_units(
        self,
        units: Sequence[WorkUnit],
        lc: _LineConn,
        tenant: str = "default",
        priority: int = 0,
    ) -> ServiceJob:
        """Register a relay job: results stream back over ``lc``."""
        tenant, priority = self._check_tenant(tenant, priority)
        if not units:
            raise CampaignConfigError("submit_units with no units")
        with self._lock:
            self._seq += 1
            job_id = f"job-{self._seq:06d}"
        job = ServiceJob(
            job_id=job_id,
            tenant=tenant,
            priority=priority,
            seq=self._seq,
            status="running",
            relay=True,
        )
        store = _RelayStore(lc, job_id)
        job.store = store  # type: ignore[assignment]
        job.lease_policy = self._job_lease_policy(None)
        job.state = self._new_state(units, store, job.lease_policy)
        self._register(job)
        return job

    def _register(self, job: ServiceJob) -> None:
        with self._lock:
            self._jobs[job.job_id] = job
            self._order.append(job)
            if job.status == "running" and job.tenant not in self._vtime:
                # A tenant joining late starts at the current virtual
                # floor, not zero — otherwise it would monopolize the
                # pool until its clock caught up.
                floor = min(self._vtime.values(), default=0.0)
                self._vtime[job.tenant] = floor
        if job.status == "running" and self._pool is not None:
            # A fresh job gets a fresh respawn budget: its crashes are
            # charged to it, not to whatever ran before.
            self._pool.new_job_epoch()

    def _check_tenant(self, tenant, priority) -> tuple[str, int]:
        if not isinstance(tenant, str) or not tenant:
            raise CampaignConfigError(
                f"bad tenant {tenant!r}: expected a non-empty string",
                key="tenant",
            )
        if not isinstance(priority, int) or isinstance(priority, bool) or priority < 0:
            raise CampaignConfigError(
                f"bad priority {priority!r}: expected an integer >= 0",
                key="priority",
            )
        return tenant, priority

    def _manifest_extra(self, job: ServiceJob) -> dict:
        return {
            "service": {
                "job_id": job.job_id,
                "tenant": job.tenant,
                "priority": job.priority,
            }
        }

    def _job_lease_policy(self, spec_lease: LeaseSpec) -> LeasePolicy:
        """A fresh per-job policy: the job spec's ``lease`` field wins,
        else the service default — never a shared EWMA instance."""
        spec = spec_lease if spec_lease is not None else self._lease_spec
        policy = LeasePolicy.from_spec(spec, target_seconds=2.0 * self.heartbeat)
        if policy is spec:
            policy = policy.clone()
        return policy

    def _new_state(self, units, store, lease_policy: LeasePolicy) -> _MasterState:
        # SpeculationPolicy is stateless configuration (the per-job
        # launch budget counter lives in _MasterState), so sharing the
        # service-wide instance across jobs is safe.
        return _MasterState(
            units,
            store,
            None,
            lease_policy=lease_policy,
            speculation=self.speculation,
            steal=self.steal,
        )

    # -------------------------------------------------------------- queries

    def status(self, job_id: str) -> dict:
        with self._lock:
            job = self._jobs.get(job_id)
        if job is None:
            raise CampaignConfigError(
                f"unknown job {job_id!r}", key="job_id"
            )
        return job.snapshot()

    def jobs(self) -> list[dict]:
        with self._lock:
            order = list(self._order)
        return [job.snapshot() for job in order]

    def cancel(self, job_id: str) -> dict:
        """Stop leasing a job's units and revoke what is outstanding.

        Workers already computing a cancelled unit finish it; their acks
        land as stale and are swallowed.  Terminal jobs cancel as a
        no-op (the snapshot reports the state they already reached)."""
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None:
                raise CampaignConfigError(
                    f"unknown job {job_id!r}", key="job_id"
                )
            if job.status != "running":
                return job.snapshot()
            job.final_counts = job.counts()
            job.status = "cancelled"
        notices = job.state.abort() if job.state is not None else []
        for lc, proto, unit_ids in notices:
            if proto >= 3:
                try:
                    lc.send({"type": "revoke", "unit_ids": unit_ids})
                except OSError:
                    pass
        job.persist()
        if job.store is not None and not job.relay:
            job.store.close()
        return job.snapshot()

    # ----------------------------------------------------------- scheduling

    def _runnable_by_tenant(self) -> dict[str, list[ServiceJob]]:
        by_tenant: dict[str, list[ServiceJob]] = {}
        for job in self._order:
            if job.status == "running" and job.state is not None:
                by_tenant.setdefault(job.tenant, []).append(job)
        return by_tenant

    def _checkout(
        self, conn_id: int, lc: _LineConn, proto: int
    ) -> Optional[tuple[ServiceJob, object]]:
        """One scheduling pass over all runnable jobs in fair-share
        order; ``None`` when no job has claimable work right now.

        Pass 1 offers only pending queues (an idle worker drains other
        jobs before stealing within one); pass 2 allows steal and
        speculation.  A successful grant advances the winning tenant's
        virtual time by ``1 / (1 + priority)`` — the weighted-fair-share
        clock."""
        with self._lock:
            by_tenant = self._runnable_by_tenant()
            tenants = sorted(by_tenant, key=lambda t: (self._vtime.get(t, 0.0), t))
        for pending_only in (True, False):
            for tenant in tenants:
                jobs = sorted(by_tenant[tenant], key=lambda j: (-j.priority, j.seq))
                weight = 1 + max(j.priority for j in jobs)
                for job in jobs:
                    policy = job.lease_policy if proto >= 2 else None
                    lease, revoke = job.state.try_checkout(
                        conn_id, lc, proto, policy, pending_only=pending_only
                    )
                    if revoke is not None:
                        victim_lc, revoked_ids = revoke
                        try:
                            victim_lc.send(
                                {"type": "revoke", "unit_ids": revoked_ids}
                            )
                        except OSError:
                            pass
                    if lease is not None:
                        with self._lock:
                            self._vtime[tenant] = (
                                self._vtime.get(tenant, 0.0) + 1.0 / weight
                            )
                        return job, lease
        return None

    def _maybe_finish(self, job: ServiceJob) -> None:
        if job.state is None or not job.state.is_complete():
            return
        with self._lock:
            if job.status != "running":
                return
            job.final_counts = job.state.progress_counts()
            job.status = "done"
        job.persist()
        if job.store is not None and not job.relay:
            job.store.close()

    # ------------------------------------------------------------- serving

    def _accept_loop(self) -> None:
        self._server.settimeout(0.2)
        while not self._stop.is_set():
            try:
                conn, _addr = self._server.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            threading.Thread(
                target=self._serve_connection,
                args=(conn,),
                name="campaign-service-conn",
                daemon=True,
            ).start()

    def _serve_connection(self, conn: socket.socket) -> None:
        lc = _LineConn(conn)
        with self._lock:
            self._conns.add(lc)
        try:
            first = lc.recv(timeout=self._dead_after)
        except (ConnectionError, OSError, socket.timeout, json.JSONDecodeError):
            with self._lock:
                self._conns.discard(lc)
            lc.close()
            return
        try:
            if first.get("type") == "hello":
                self._serve_worker(lc, first)
            elif first.get("type") == "submit_units":
                self._serve_relay_client(lc, first)
            else:
                self._serve_client(lc, first)
        except (ConnectionError, OSError, socket.timeout, json.JSONDecodeError):
            pass
        finally:
            with self._lock:
                self._conns.discard(lc)
            lc.close()

    # -- workers

    def _serve_worker(self, lc: _LineConn, hello: dict) -> None:
        with self._lock:
            self._next_conn_id += 1
            conn_id = self._next_conn_id
        proto = min(PROTO_VERSION, int(hello.get("proto", 1)))
        worker_beat = float(hello.get("heartbeat", self.heartbeat))
        dead_after = max(self._dead_after, worker_beat * DEAD_AFTER_BEATS)
        # unit_id -> owning job for everything ever leased to this
        # connection: a stale ack (revoked unit, replayed delivery) must
        # route to the job that leased it.  Unit ids can collide across
        # jobs running the same spec; last lease wins, which at worst
        # lands an *identical* row in the twin job's store (idempotent
        # append) — never a wrong row.
        ever_leased: dict[str, ServiceJob] = {}
        lease_job: Optional[ServiceJob] = None
        try:
            while not self._stop.is_set():
                claim = self._checkout(conn_id, lc, proto)
                if claim is None:
                    # Nothing leasable: consume heartbeats (and notice a
                    # dead worker) while idling between jobs.
                    try:
                        message = lc.recv(timeout=0.2)
                    except socket.timeout:
                        continue
                    if message.get("type") == "result":
                        self._stale_result(message, ever_leased)
                    continue
                job, lease = claim
                lease_job = job
                for uid in lease.remaining:
                    ever_leased[uid] = job
                if proto >= 2:
                    lc.send(
                        {"type": "lease",
                         "units": [u.to_dict() for u in lease.units()]}
                    )
                else:
                    lc.send({"type": "unit", "unit": lease.units()[0].to_dict()})
                while lease.remaining:
                    message = lc.recv(timeout=dead_after)
                    if self._stop.is_set():
                        return
                    kind = message.get("type")
                    if kind == "heartbeat":
                        continue
                    if kind != "result":
                        raise ConnectionError(
                            f"unexpected message type {kind!r}"
                        )
                    unit_id = message.get("unit_id")
                    unit, attempt = job.state.ack(conn_id, unit_id)
                    if unit is None:
                        self._stale_result(message, ever_leased)
                        continue
                    result = result_from_dict(
                        message["result"], unit.granularity, unit.rep
                    )
                    job.state.complete(unit, result, attempt=attempt)
                    seconds = message.get("seconds")
                    if seconds is not None:
                        job.lease_policy.observe(float(seconds))
                    self._maybe_finish(job)
                job.state.retire_lease(conn_id)
                lease_job = None
            lc.send({"type": "shutdown"})
        finally:
            if lease_job is not None:
                lease_job.state.requeue_lease(conn_id)

    def _stale_result(
        self, message: dict, ever_leased: Mapping[str, ServiceJob]
    ) -> None:
        """Route a result outside any current lease to the job that
        once leased it here; anything else is a version-skewed or buggy
        worker and kills the connection."""
        unit_id = message.get("unit_id")
        owner = ever_leased.get(unit_id)
        unit = owner.state.lookup(unit_id) if owner is not None else None
        if unit is None:
            raise ConnectionError(
                f"result for {unit_id!r} outside this worker's leases"
            )
        result = result_from_dict(message["result"], unit.granularity, unit.rep)
        owner.state.complete(unit, result, attempt="stale")
        self._maybe_finish(owner)

    # -- clients

    def _serve_client(self, lc: _LineConn, first: dict) -> None:
        """Request/response client connection (``submit`` / ``status`` /
        ``jobs`` / ``cancel``); serves until the client hangs up."""
        message = first
        while True:
            lc.send(self._client_reply(message))
            message = lc.recv(timeout=self._dead_after)

    def _client_reply(self, message: dict) -> dict:
        kind = message.get("type")
        try:
            if kind == "submit":
                snap = self.submit_spec(
                    message.get("spec") or {},
                    tenant=message.get("tenant", "default"),
                    priority=message.get("priority", 0),
                )
                return {"type": "submitted", **snap}
            if kind == "status":
                return {"type": "status", **self.status(message.get("job_id"))}
            if kind == "jobs":
                return {"type": "jobs", "jobs": self.jobs()}
            if kind == "cancel":
                return {"type": "cancelled", **self.cancel(message.get("job_id"))}
            raise CampaignConfigError(f"unknown message type {kind!r}")
        except CampaignConfigError as exc:
            return {"type": "error", "error": str(exc), "key": exc.key}

    def _serve_relay_client(self, lc: _LineConn, first: dict) -> None:
        """A ``submit_units`` connection: register the relay job, then
        watch the connection until the job drains (sending
        ``job_done``) or the client vanishes (cancelling the job)."""
        try:
            units = [WorkUnit.from_dict(d) for d in first.get("units") or []]
            job = self.submit_units(
                units,
                lc,
                tenant=first.get("tenant", "default"),
                priority=first.get("priority", 0),
            )
        except (CampaignConfigError, KeyError, TypeError, ValueError) as exc:
            lc.send({"type": "error", "error": str(exc), "key": None})
            return
        lc.send({"type": "submitted", **job.snapshot()})
        try:
            while not self._stop.is_set():
                if job.state.is_complete():
                    self._maybe_finish(job)
                    lc.send({"type": "job_done", "job_id": job.job_id})
                    return
                try:
                    message = lc.recv(timeout=0.2)
                except socket.timeout:
                    continue
                if message.get("type") == "cancel":
                    self.cancel(job.job_id)
                    lc.send({"type": "cancelled", **job.snapshot()})
                    return
        finally:
            # Whatever ends this connection ends the job: results have
            # nowhere to go without it.
            if job.status == "running":
                self.cancel(job.job_id)

    # ----------------------------------------------------------- processes

    def _supervise_loop(self) -> None:
        while not self._stop.wait(timeout=0.2):
            self._pool.poll_respawn()
            with self._lock:
                jobs = list(self._order)
            for job in jobs:
                if job.status == "running":
                    self._maybe_finish(job)

    def _spawn_worker(self, extra_args: Sequence[str]) -> subprocess.Popen:
        host, port = self.address
        env = os.environ.copy()
        env["PYTHONPATH"] = os.pathsep.join(p for p in sys.path if p)
        cmd = [
            sys.executable,
            "-m",
            "repro.cli",
            "campaign",
            "worker",
            f"{host}:{port}",
            "--heartbeat",
            str(self.heartbeat),
            *extra_args,
        ]
        return subprocess.Popen(
            cmd, env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL
        )


# ------------------------------------------------------------------ clients


def _parse_address(address: Union[str, tuple[str, int]]) -> tuple[str, int]:
    if isinstance(address, tuple):
        return address[0], int(address[1])
    host, sep, port = address.rpartition(":")
    if not sep or not host:
        raise CampaignConfigError(
            f"bad service address {address!r}: expected HOST:PORT",
            key="executor.address",
        )
    return host, int(port)


class ServiceClient:
    """Thin request/response client for a running :class:`CampaignService`.

    One connection per request; ``error`` replies raise
    :class:`CampaignConfigError` carrying the server's ``key``."""

    def __init__(
        self, address: Union[str, tuple[str, int]], timeout: float = 30.0
    ) -> None:
        self.host, self.port = _parse_address(address)
        self.timeout = timeout

    def _request(self, message: dict) -> dict:
        sock = _connect_with_backoff(self.host, self.port, retries=3)
        lc = _LineConn(sock)
        try:
            lc.send(message)
            reply = lc.recv(timeout=self.timeout)
        finally:
            lc.close()
        if reply.get("type") == "error":
            raise CampaignConfigError(reply["error"], key=reply.get("key"))
        return reply

    def submit(
        self,
        spec: Union[CampaignSpec, Mapping],
        tenant: str = "default",
        priority: int = 0,
    ) -> dict:
        """Submit a campaign spec; returns the job's status snapshot."""
        payload = spec.to_dict() if isinstance(spec, CampaignSpec) else dict(spec)
        return self._request(
            {
                "type": "submit",
                "spec": payload,
                "tenant": tenant,
                "priority": priority,
                "proto": PROTO_VERSION,
            }
        )

    def submit_handle(
        self,
        spec: Union[CampaignSpec, Mapping],
        tenant: str = "default",
        priority: int = 0,
    ) -> "ServiceJobHandle":
        snap = self.submit(spec, tenant=tenant, priority=priority)
        return ServiceJobHandle(
            client=self,
            job_id=snap["job_id"],
            store_directory=snap.get("store"),
        )

    def status(self, job_id: str) -> dict:
        return self._request({"type": "status", "job_id": job_id})

    def jobs(self) -> list[dict]:
        return self._request({"type": "jobs"})["jobs"]

    def cancel(self, job_id: str) -> dict:
        return self._request({"type": "cancel", "job_id": job_id})

    def wait(
        self, job_id: str, timeout: Optional[float] = None, poll: float = 0.2
    ) -> dict:
        """Poll until the job reaches a terminal state; returns the
        final snapshot (raises ``TimeoutError`` past ``timeout``)."""
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            snap = self.status(job_id)
            if snap["state"] != "running":
                return snap
            if deadline is not None and time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {snap['state']} after {timeout:.0f}s "
                    f"({snap['done']}/{snap['total']} units)"
                )
            time.sleep(poll)


@dataclass
class ServiceJobHandle:
    """A submitted job as seen by the client: poll, wait, read rows."""

    client: ServiceClient
    job_id: str
    store_directory: Optional[str] = None

    def status(self) -> dict:
        return self.client.status(self.job_id)

    def cancel(self) -> dict:
        return self.client.cancel(self.job_id)

    def wait(self, timeout: Optional[float] = None, poll: float = 0.2) -> dict:
        snap = self.client.wait(self.job_id, timeout=timeout, poll=poll)
        if snap["state"] != "done":
            raise RuntimeError(
                f"job {self.job_id} ended {snap['state']}"
                + (f": {snap['error']}" if snap.get("error") else "")
            )
        return snap

    def open_store(self) -> RunStore:
        """Open the job's store read-only — valid while the job runs
        (live partial rows) or after it finishes."""
        if self.store_directory is None:
            raise CampaignConfigError(
                f"job {self.job_id} has no client-visible store"
            )
        return open_store(self.store_directory)


class ServiceExecutor:
    """The :class:`~repro.experiments.executors.base.Executor` backed by
    a running campaign service (``ExecutorSpec(kind="service",
    address="HOST:PORT")``).

    ``run`` streams the units to the service as a ``submit_units`` job
    and appends each returned result to the *local* store as it arrives
    — results round-trip JSON exactly, so rows are bit-identical to a
    serial run.  ``timeout`` is a no-activity deadline on the
    connection, mirroring the socket master's."""

    name = "service"

    def __init__(
        self,
        address: Union[str, tuple[str, int]],
        tenant: str = "default",
        priority: int = 0,
        timeout: Optional[float] = 300.0,
    ) -> None:
        self.host, self.port = _parse_address(address)
        self.tenant = tenant
        self.priority = priority
        self.timeout = timeout
        self.job_id: Optional[str] = None

    def run(
        self,
        units: Sequence[WorkUnit],
        store: RunStore,
        progress: Optional[ProgressFn] = None,
    ) -> None:
        if not units:
            return
        by_id = {u.unit_id: u for u in units}
        sock = _connect_with_backoff(self.host, self.port)
        lc = _LineConn(sock)
        try:
            lc.send(
                {
                    "type": "submit_units",
                    "units": [u.to_dict() for u in units],
                    "tenant": self.tenant,
                    "priority": self.priority,
                    "proto": PROTO_VERSION,
                }
            )
            reply = lc.recv(timeout=self.timeout)
            if reply.get("type") == "error":
                raise CampaignConfigError(
                    reply["error"], key=reply.get("key")
                )
            self.job_id = reply.get("job_id")
            done: set[str] = set()
            while len(done) < len(by_id):
                message = lc.recv(timeout=self.timeout)
                kind = message.get("type")
                if kind == "result":
                    unit = by_id.get(message.get("unit_id"))
                    if unit is None or unit.unit_id in done:
                        continue
                    result = result_from_dict(
                        message["result"], unit.granularity, unit.rep
                    )
                    store.append(unit, result)
                    done.add(unit.unit_id)
                    if progress is not None:
                        progress(
                            f"[{len(done)}/{len(by_id)}] {unit.unit_id} "
                            f"(service {self.host}:{self.port})"
                        )
                elif kind == "job_done":
                    break
                elif kind == "error":
                    raise RuntimeError(
                        f"service failed job {self.job_id}: "
                        f"{message.get('error')}"
                    )
            missing = [uid for uid in by_id if uid not in done]
            if missing:
                raise RuntimeError(
                    f"service job {self.job_id} ended with "
                    f"{len(missing)} unit(s) missing (first: {missing[0]})"
                )
        except socket.timeout:
            raise TimeoutError(
                f"service {self.host}:{self.port} sent nothing for "
                f"{self.timeout:.0f}s (job {self.job_id}, "
                f"{len(by_id)} unit(s) submitted)"
            ) from None
        finally:
            lc.close()


__all__ = [
    "CampaignService",
    "ServiceClient",
    "ServiceExecutor",
    "ServiceJob",
    "ServiceJobHandle",
    "JOB_FILE_NAME",
    "SERVICE_FILE_NAME",
]
