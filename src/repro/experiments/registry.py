"""Pluggable registries behind every name a campaign spec can mention.

A :class:`~repro.experiments.api.CampaignSpec` describes a campaign
purely as *data* — scheduler, network, topology, executor, and store
backends all appear by name.  This module is the single place those
names resolve: one generic :class:`Registry` plus five instances, with
``register_*`` entry points so downstream code can plug in new
implementations without touching any dispatch site::

    from repro.experiments.registry import register_scheduler

    register_scheduler("my-heft", lambda inst, eps, rng, model, fast=True: ...)

Builtin entries are registered by the modules that own them (schedulers
by ``experiments.harness``, executors by ``experiments.executors``,
stores by ``experiments.store``); network models and topology shapes
live in the lower ``repro.comm`` / ``repro.platform`` layers, whose
``register_network`` / ``register_topology`` are re-exported here so
one import surface covers every extension point.

Lookups of unknown names raise
:class:`~repro.utils.errors.CampaignConfigError` naming the offending
key and listing what *is* registered — the uniform configuration error
the API and the CLI share.  Duplicate registrations raise a plain
``ValueError`` (that is a programming error, not a bad config).

Registrations are **process-local**.  A campaign whose spec names a
plugin (a registered scheduler, network, ...) validates on the process
that registered it; every executor worker process must perform the same
registrations before computing units, or its lookups fail.  Fork-started
local pools inherit them automatically; spawn-started pools and remote
``repro-ftsched campaign worker`` processes do not — put the
``register_*`` calls in an importable module and import it on the
workers (e.g. via ``sitecustomize`` or a wrapper entry point).
"""

from __future__ import annotations

from typing import Callable, Iterator, NamedTuple, Optional, TypeVar

from repro.comm import network_names, register_network
from repro.experiments.arrival import (
    arrival_process_names,
    register_arrival_process,
)
from repro.fault.model import failure_model_names, register_failure_model
from repro.platform.topology import register_topology, topology_names
from repro.utils.errors import CampaignConfigError
from repro.utils.registry import check_registration

T = TypeVar("T")


class Registry:
    """A named collection of implementations of one campaign concept.

    A thin mapping with campaign-flavoured errors: :meth:`get` on an
    unknown name raises :class:`CampaignConfigError` that names the
    spec key being resolved and lists the registered alternatives.
    """

    def __init__(self, kind: str) -> None:
        #: what the entries are, e.g. ``"executor"`` (used in messages)
        self.kind = kind
        self._entries: dict[str, object] = {}

    def register(self, name: str, value: T, *, overwrite: bool = False) -> T:
        check_registration(self.kind, name, name in self._entries, overwrite)
        self._entries[name] = value
        return value

    def remove(self, name: str) -> None:
        """Drop a registration (tests unplug what they plugged in)."""
        self._entries.pop(name, None)

    def get(self, name: str, key: Optional[str] = None):
        """Resolve ``name``; unknown names are a :class:`CampaignConfigError`.

        ``key`` names the spec field being resolved (defaults to the
        registry kind) so the error points at the user's input.
        """
        try:
            return self._entries[name]
        except KeyError:
            where = f" (key {key!r})" if key else ""
            raise CampaignConfigError(
                f"unknown {self.kind} {name!r}{where}; "
                f"registered: {', '.join(self.names()) or '(none)'}",
                key=key or self.kind,
            ) from None

    def names(self) -> tuple[str, ...]:
        return tuple(sorted(self._entries))

    def __contains__(self, name: object) -> bool:
        return name in self._entries

    def __iter__(self) -> Iterator[str]:
        return iter(self.names())

    def __len__(self) -> int:
        return len(self._entries)


class SchedulerEntry(NamedTuple):
    """How one algorithm name runs: fault-tolerant and fault-free forms."""

    #: ``runner(instance, epsilon, rng, model, fast=True) -> Schedule``
    runner: Callable
    #: ``faultfree(instance, rng, model, fast=True) -> Schedule`` —
    #: the ε = 0 reference the overhead metrics normalize against
    faultfree: Callable


#: algorithm names a config's ``algorithms`` tuple may use
SCHEDULERS = Registry("scheduler")
#: executor kinds (``--executor`` / ``executor.kind``)
EXECUTORS = Registry("executor")
#: results-store backends (``store.backend``)
STORES = Registry("store")


def register_scheduler(
    name: str,
    runner: Callable,
    faultfree: Optional[Callable] = None,
    *,
    overwrite: bool = False,
) -> Callable:
    """Register a scheduling algorithm under ``name``.

    ``runner(instance, epsilon, rng, model, fast=True)`` must return a
    :class:`~repro.schedule.schedule.Schedule`.  ``faultfree`` defaults
    to ``runner`` at ε = 0, which is correct for any scheduler whose
    fault-free form is simply "no replication".  Registered names are
    valid in ``ExperimentConfig.algorithms`` and show up in every
    campaign's per-algorithm columns.  Returns ``runner``.
    """
    if faultfree is None:
        def faultfree(inst, rng, model, fast=True, _runner=runner):
            return _runner(inst, 0, rng, model, fast)

    SCHEDULERS.register(name, SchedulerEntry(runner, faultfree), overwrite=overwrite)
    return runner


def register_executor(
    name: str, factory: Callable, *, overwrite: bool = False
) -> Callable:
    """Register an executor factory under ``name``.

    ``factory(workers=None, lease=None, **options)`` must return an
    object satisfying the :class:`~repro.experiments.executors.Executor`
    protocol.  The name becomes valid for ``--executor``, executor spec
    strings (``"name"`` / ``"name:N"`` — the ``:N`` suffix arrives as
    ``workers``), and ``executor.kind`` in campaign specs, whose extra
    fields (e.g. ``bind``/``timeout`` for sockets) arrive as keyword
    ``options``.  Returns ``factory``.
    """
    return EXECUTORS.register(name, factory, overwrite=overwrite)


def register_store(
    name: str, factory: Callable, *, overwrite: bool = False
) -> Callable:
    """Register a results-store backend under ``name``.

    ``factory(directory=None)`` must return a
    :class:`~repro.experiments.store.RunStore` (or a compatible
    object).  The name becomes valid for ``store.backend`` in campaign
    specs.  Returns ``factory``.
    """
    return STORES.register(name, factory, overwrite=overwrite)


def scheduler_names() -> tuple[str, ...]:
    return SCHEDULERS.names()


def executor_names() -> tuple[str, ...]:
    return EXECUTORS.names()


def store_names() -> tuple[str, ...]:
    return STORES.names()


__all__ = [
    "Registry",
    "SchedulerEntry",
    "SCHEDULERS",
    "EXECUTORS",
    "STORES",
    "register_scheduler",
    "register_executor",
    "register_store",
    "register_network",
    "register_topology",
    "register_arrival_process",
    "register_failure_model",
    "scheduler_names",
    "executor_names",
    "store_names",
    "network_names",
    "topology_names",
    "arrival_process_names",
    "failure_model_names",
]
