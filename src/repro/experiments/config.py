"""Experiment configurations for the paper's evaluation (§6).

The paper characterizes its random workloads by three parameters — task
count in ``[80, 120]``, per-task degree in ``[1, 3]``, granularity sweep —
plus unit link delays in ``[0.5, 1]`` and message volumes in ``[50, 150]``.
Each data point averages 60 random DAGs.  Two granularity sweeps are used:
``A = 0.2..2.0`` (step 0.2, Figures 1–3) and ``B = 1..10`` (step 1,
Figures 4–6), with platforms of 10 processors (ε ∈ {1, 3}) or 20
processors (ε = 5).
"""

from __future__ import annotations

import os
from dataclasses import asdict, dataclass, field, fields, replace
from typing import Mapping, Optional, Sequence

from repro.experiments.arrival import ArrivalSpec
from repro.fault.model import FailureSpec

GRANULARITY_SWEEP_A: tuple[float, ...] = tuple(round(0.2 * i, 1) for i in range(1, 11))
GRANULARITY_SWEEP_B: tuple[float, ...] = tuple(float(i) for i in range(1, 11))

#: figure panels compare these fault-tolerant algorithms
DEFAULT_ALGORITHMS: tuple[str, ...] = ("caft", "caft-paper", "ftsa", "ftbar")

#: valid one-port reservation policies (``port_policy`` / ``--policy``):
#: the paper's append-only eqs. (4)/(6), or the gap-reusing ablation
PORT_POLICIES: tuple[str, ...] = ("append", "insertion")

#: config fields whose values are tuples (JSON round-trips them as lists)
TUPLE_FIELDS: frozenset[str] = frozenset(
    {
        "granularities",
        "task_range",
        "degree_range",
        "volume_range",
        "delay_range",
        "base_cost_range",
        "algorithms",
    }
)


def default_num_graphs(paper_count: int = 60) -> int:
    """Graphs per data point: the paper's 60, unless ``REPRO_GRAPHS`` says less.

    Benchmarks default to a faster count; export ``REPRO_GRAPHS=60`` to run
    campaigns at the paper's scale (EXPERIMENTS.md records such runs).
    """
    env = os.environ.get("REPRO_GRAPHS")
    if env:
        return max(1, int(env))
    return paper_count


@dataclass(frozen=True)
class ExperimentConfig:
    """Everything needed to regenerate one figure."""

    name: str
    granularities: tuple[float, ...]
    num_procs: int
    epsilon: int
    crashes: int
    num_graphs: int = 60
    task_range: tuple[int, int] = (80, 120)
    degree_range: tuple[int, int] = (1, 3)
    volume_range: tuple[float, float] = (50.0, 150.0)
    delay_range: tuple[float, float] = (0.5, 1.0)
    base_cost_range: tuple[float, float] = (1.0, 2.0)
    heterogeneity: float = 0.5
    base_seed: int = 20080206  # the report's publication month
    algorithms: tuple[str, ...] = DEFAULT_ALGORITHMS
    model: str = "oneport"
    #: sparse-interconnect shape (``"ring"``, ``"torus"``, ``"star"``, ...)
    #: for ``model="routed-oneport"`` campaigns: per-link delays are drawn
    #: from ``delay_range`` and the platform is the topology's effective
    #: route-delay matrix (paper §7 scenario axis).  ``None`` = clique.
    topology: Optional[str] = None
    #: port-reservation policy for ``model="oneport"``: the paper's
    #: append-only eqs. (4)/(6) or the gap-reusing ``"insertion"`` ablation
    port_policy: str = "append"
    #: route scheduler trials through the vectorized placement kernel
    #: (bit-identical schedules; set False to time the slow path)
    fast: bool = True
    #: online workload: DAGs arriving over time against the shared
    #: platform, with the ``granularities`` axis reinterpreted as the
    #: arrival-rate sweep.  ``None`` = the paper's offline scenario.
    arrival: Optional[ArrivalSpec] = None
    #: how crash scenarios are drawn (``None`` = i.i.d. per-processor,
    #: bit-identical to the historical draws)
    failure: Optional[FailureSpec] = None
    description: str = ""

    def __post_init__(self) -> None:
        if self.topology is not None and self.model != "routed-oneport":
            raise ValueError(
                f"topology={self.topology!r} requires model='routed-oneport' "
                f"(got {self.model!r})"
            )
        if self.model == "routed-oneport" and self.topology is None:
            raise ValueError("model='routed-oneport' needs a topology shape")
        if self.port_policy != "append" and self.model != "oneport":
            raise ValueError(
                f"port_policy={self.port_policy!r} only applies to model='oneport'"
            )
        if self.arrival is not None and not isinstance(self.arrival, ArrivalSpec):
            raise ValueError(
                f"arrival must be an ArrivalSpec or None, got {self.arrival!r}"
            )
        if self.failure is not None and not isinstance(self.failure, FailureSpec):
            raise ValueError(
                f"failure must be a FailureSpec or None, got {self.failure!r}"
            )
        if self.arrival is not None:
            for rate in self.granularities:
                if rate <= 0:
                    raise ValueError(
                        f"online configs sweep the arrival rate on the "
                        f"granularity axis; rates must be positive, got {rate}"
                    )
            if self.arrival.width > self.num_procs:
                raise ValueError(
                    f"arrival.width={self.arrival.width} exceeds "
                    f"num_procs={self.num_procs}"
                )

    def with_graphs(self, num_graphs: Optional[int]) -> "ExperimentConfig":
        """A copy with a different repetition count (None keeps the default)."""
        if num_graphs is None:
            return self
        return replace(self, num_graphs=num_graphs)

    def with_fast(self, fast: Optional[bool]) -> "ExperimentConfig":
        """A copy with the fast path toggled (None keeps the default)."""
        if fast is None or fast == self.fast:
            return self
        return replace(self, fast=fast)

    def with_network(
        self,
        model: Optional[str] = None,
        topology: Optional[str] = None,
        policy: Optional[str] = None,
    ) -> "ExperimentConfig":
        """A copy over a different communication scenario (None = keep).

        ``topology`` alone implies ``model="routed-oneport"``; naming the
        routed model without a shape defaults to ``"ring"``.
        """
        if model is None and topology is None and policy is None:
            return self
        if model is None and topology is None:
            model, topology = self.model, self.topology
        elif model is None:
            model = "routed-oneport"
        elif model == "routed-oneport" and topology is None:
            topology = self.topology or "ring"
        return replace(
            self,
            model=model,
            topology=topology,
            port_policy=policy if policy is not None else self.port_policy,
        )

    def scenario_key(self) -> tuple[str, str, str, str]:
        """The identity of this config's communication scenario.

        ``(name, model, topology, policy)`` — what distinguishes two
        campaigns over the same figure, and what tags every stored row.
        """
        return (self.name, self.model, self.topology or "clique", self.port_policy)

    def to_dict(self) -> dict:
        """JSON-ready mapping (tuples become lists; see :meth:`from_dict`).

        The ``arrival``/``failure`` sub-specs serialize through their own
        canonical ``to_dict`` and are omitted entirely when unset, so
        offline configs round-trip byte-identically to pre-online stores.
        """
        out = asdict(self)
        for key, spec in (("arrival", self.arrival), ("failure", self.failure)):
            if spec is None:
                del out[key]
            else:
                out[key] = spec.to_dict()
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "ExperimentConfig":
        """Rebuild a config from :meth:`to_dict` output (JSON round-trip safe).

        Unknown keys are ignored so stores written by newer versions stay
        readable; list-valued fields are coerced back to tuples and the
        ``arrival``/``failure`` tables back to their spec types
        (tolerantly — manifests, not spec files).
        """
        known = {f.name for f in fields(cls)}
        kwargs = {}
        for key, value in data.items():
            if key not in known:
                continue
            if key == "arrival" and isinstance(value, Mapping):
                value = ArrivalSpec.from_dict(value, strict=False)
            elif key == "failure" and isinstance(value, Mapping):
                value = FailureSpec.from_dict(value, strict=False)
            kwargs[key] = tuple(value) if key in TUPLE_FIELDS else value
        return cls(**kwargs)


FIGURES: dict[int, ExperimentConfig] = {
    1: ExperimentConfig(
        name="figure1",
        granularities=GRANULARITY_SWEEP_A,
        num_procs=10,
        epsilon=1,
        crashes=1,
        description="latency/overhead vs granularity 0.2..2.0, m=10, eps=1, 1 crash",
    ),
    2: ExperimentConfig(
        name="figure2",
        granularities=GRANULARITY_SWEEP_A,
        num_procs=10,
        epsilon=3,
        crashes=2,
        description="latency/overhead vs granularity 0.2..2.0, m=10, eps=3, 2 crashes",
    ),
    3: ExperimentConfig(
        name="figure3",
        granularities=GRANULARITY_SWEEP_A,
        num_procs=20,
        epsilon=5,
        crashes=3,
        description="latency/overhead vs granularity 0.2..2.0, m=20, eps=5, 3 crashes",
    ),
    4: ExperimentConfig(
        name="figure4",
        granularities=GRANULARITY_SWEEP_B,
        num_procs=10,
        epsilon=1,
        crashes=1,
        description="latency/overhead vs granularity 1..10, m=10, eps=1, 1 crash",
    ),
    5: ExperimentConfig(
        name="figure5",
        granularities=GRANULARITY_SWEEP_B,
        num_procs=10,
        epsilon=3,
        crashes=2,
        description="latency/overhead vs granularity 1..10, m=10, eps=3, 2 crashes",
    ),
    6: ExperimentConfig(
        name="figure6",
        granularities=GRANULARITY_SWEEP_B,
        num_procs=20,
        epsilon=5,
        crashes=3,
        description="latency/overhead vs granularity 1..10, m=20, eps=5, 3 crashes",
    ),
}
