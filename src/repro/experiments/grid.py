"""Declarative campaign description: scenario grids and work units.

A campaign is a cross product of axes — figure (granularity sweep, platform,
ε, crashes), communication scenario (network model × topology × port
policy), and repetition.  :class:`ScenarioGrid` expands those axes into a
flat list of :class:`WorkUnit`\\ s, each a *self-describing, individually
seeded* unit of work: a unit carries its full :class:`ExperimentConfig`,
so any executor — an inline loop, a process pool, or a worker on another
machine — can regenerate the same instance and produce the bit-identical
:class:`~repro.experiments.harness.RepResult` from the unit alone.

The grid is the single source of truth for *what* a campaign computes;
executors (``repro.experiments.executors``) decide *where*, and the
:class:`~repro.experiments.store.RunStore` records *results*.  Keeping the
three independent is what makes campaigns distributable and resumable.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Iterator, Optional, Sequence

from repro.experiments.config import FIGURES, ExperimentConfig

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (harness uses grid)
    from repro.experiments.harness import RepResult


def unit_id_for(
    name: str, model: str, topology: str, policy: str, granularity: float, rep: int
) -> str:
    """The stable unit identity shared by :class:`WorkUnit` and every
    store backend that regenerates ids from stored coordinates.

    ``repr`` of the granularity keeps distinct floats distinct (the sweep
    values round-trip exactly through JSON for the same reason).
    """
    return f"{name}|{model}|{topology}|{policy}|g={granularity!r}|rep={rep}"


@dataclass(frozen=True)
class WorkUnit:
    """One independently-executable cell of a campaign grid.

    The unit of distribution: ``run()`` is a pure function of the three
    fields (all randomness derives from labelled child seeds of
    ``config.base_seed``), so units can be executed in any order, on any
    machine, any number of times, and always yield the same result.
    """

    config: ExperimentConfig
    granularity: float
    rep: int

    @property
    def unit_id(self) -> str:
        """Stable identity used for store rows, resume, and dedup."""
        name, model, topology, policy = self.config.scenario_key()
        return unit_id_for(
            name, model, topology, policy, self.granularity, self.rep
        )

    @property
    def locality_key(self) -> tuple[str, str, str, str]:
        """What a lease should keep together: the communication scenario.

        Units sharing this key schedule over the same figure, network
        model, topology, and port policy, so a worker that computes them
        back to back reuses warm kernel/epoch-cache state.  Canonical
        grid order is already sorted by this key; requeues can interleave
        scenarios, which is why lease assembly filters on it explicitly.
        """
        name, model, topology, policy = self.config.scenario_key()
        return (name, model, topology, policy)

    @property
    def scenario(self) -> dict[str, str]:
        """Scenario tags every stored row carries (report columns)."""
        name, model, topology, policy = self.config.scenario_key()
        return {
            "config": name,
            "network": model,
            "topology": topology,
            "policy": policy,
        }

    def run(self) -> "RepResult":
        """Execute the unit (pure function of the unit's fields)."""
        from repro.experiments.harness import run_rep

        return run_rep(self.config, self.granularity, self.rep)

    def to_dict(self) -> dict:
        """JSON-ready wire format (socket executor, store manifest)."""
        return {
            "config": self.config.to_dict(),
            "granularity": self.granularity,
            "rep": self.rep,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "WorkUnit":
        return cls(
            config=ExperimentConfig.from_dict(data["config"]),
            granularity=data["granularity"],
            rep=data["rep"],
        )


@dataclass(frozen=True)
class ScenarioGrid:
    """The declarative description of one campaign: a tuple of scenarios.

    Each member config is one fully-resolved scenario; the grid expands
    every config's ``granularities × num_graphs`` axes into
    :class:`WorkUnit`\\ s in canonical order (config, then granularity in
    sweep order, then rep).  Scenario keys must be unique so unit ids —
    and therefore store rows — never collide.
    """

    configs: tuple[ExperimentConfig, ...]

    def __post_init__(self) -> None:
        if not self.configs:
            raise ValueError("a ScenarioGrid needs at least one config")
        keys = [cfg.scenario_key() for cfg in self.configs]
        if len(set(keys)) != len(keys):
            dupes = sorted({k for k in keys if keys.count(k) > 1})
            raise ValueError(f"duplicate scenario keys in grid: {dupes}")

    @property
    def total_units(self) -> int:
        return sum(len(c.granularities) * c.num_graphs for c in self.configs)

    def units(self) -> list[WorkUnit]:
        """All work units in canonical (config, granularity, rep) order."""
        return list(self.iter_units())

    def iter_units(self) -> Iterator[WorkUnit]:
        for cfg in self.configs:
            for g in cfg.granularities:
                for rep in range(cfg.num_graphs):
                    yield WorkUnit(cfg, g, rep)

    def units_for(self, config: ExperimentConfig) -> list[WorkUnit]:
        """The sub-grid of one member scenario, in canonical order."""
        return [
            WorkUnit(config, g, rep)
            for g in config.granularities
            for rep in range(config.num_graphs)
        ]

    @classmethod
    def from_config(cls, config: ExperimentConfig) -> "ScenarioGrid":
        """A single-scenario grid (what ``run_campaign`` uses)."""
        return cls(configs=(config,))

    @classmethod
    def from_figure(
        cls,
        number: int,
        num_graphs: Optional[int] = None,
        fast: Optional[bool] = None,
        model: Optional[str] = None,
        topology: Optional[str] = None,
        policy: Optional[str] = None,
    ) -> "ScenarioGrid":
        """The grid of one paper figure, optionally under another scenario."""
        from repro.utils.errors import CampaignConfigError

        try:
            config = FIGURES[number]
        except KeyError:
            raise CampaignConfigError(
                f"no figure {number}; the paper has figures 1-6", key="figure"
            ) from None
        config = (
            config.with_graphs(num_graphs)
            .with_fast(fast)
            .with_network(model=model, topology=topology, policy=policy)
        )
        return cls.from_config(config)

    @classmethod
    def from_scenarios(
        cls,
        base: ExperimentConfig,
        topologies: Sequence[str] = (),
        policies: Sequence[str] = (),
        include_base: bool = True,
    ) -> "ScenarioGrid":
        """Expand one base config along communication-scenario axes.

        Every scenario keeps ``base.name`` (and therefore the labelled
        seeds), so all scenarios schedule the *same* random instances —
        comparisons across the grid are paired.  ``topologies`` adds one
        routed-one-port scenario per shape; ``policies`` adds one clique
        one-port scenario per reservation policy.
        """
        configs: list[ExperimentConfig] = []
        if include_base:
            configs.append(base)
        for topo in topologies:
            configs.append(base.with_network(model="routed-oneport", topology=topo))
        for pol in policies:
            configs.append(
                replace(base, model="oneport", topology=None, port_policy=pol)
            )
        return cls(configs=tuple(configs))

    def to_dict(self) -> dict:
        """Manifest form: enough to rebuild the grid for ``--resume``."""
        return {"configs": [cfg.to_dict() for cfg in self.configs]}

    @classmethod
    def from_dict(cls, data: dict) -> "ScenarioGrid":
        return cls(
            configs=tuple(
                ExperimentConfig.from_dict(c) for c in data["configs"]
            )
        )
