"""Fault injection: fail-stop scenarios, crash replay, robustness checks."""

from repro.fault.model import FailureScenario
from repro.fault.simulator import (
    ExecutionResult,
    EventOutcome,
    ReplicaOutcome,
    ReplicaStatus,
    crash_latency,
    replay,
)
from repro.fault.scenarios import (
    random_crash_scenario,
    all_crash_scenarios,
    check_robustness,
    RobustnessReport,
)
from repro.fault.validation import validate_execution, is_valid_execution
from repro.fault.montecarlo import (
    MonteCarloReport,
    monte_carlo_crashes,
    survival_curve,
)

__all__ = [
    "FailureScenario",
    "ExecutionResult",
    "EventOutcome",
    "ReplicaOutcome",
    "ReplicaStatus",
    "crash_latency",
    "replay",
    "random_crash_scenario",
    "all_crash_scenarios",
    "check_robustness",
    "RobustnessReport",
    "MonteCarloReport",
    "monte_carlo_crashes",
    "survival_curve",
    "validate_execution",
    "is_valid_execution",
]
