"""Crash-replay engine: execute a static schedule under a failure scenario.

The paper's §6 evaluates "the real execution time for a given schedule
rather than just bounds".  Replay keeps every *ordering* the schedule
committed (tasks per processor, messages per port/link) but recomputes
*times* under fail-stop semantics:

* a message is attempted only if its source replica completed, and is
  delivered only if both endpoints stay alive through the (recomputed)
  transfer window; dropped messages free their resources, which is why
  crash latency can be *smaller* than the 0-crash latency (§6 example);
* a replica runs once, for every predecessor, at least one supply (local
  copy or delivered message) is in; fail-stop failures are detectable, so
  a replica whose inputs can provably never arrive is *skipped* and does
  not block its processor (starvation — only possible for one-to-one
  channels whose upstream support died);
* the latency with crashes is the latest first-completion over tasks; if
  some task has no completed replica the execution failed (more than ε
  faults, or a non-robust schedule).

With an empty scenario the replayed times reproduce the committed times
exactly — a strong consistency check between builder and replayer that the
integration tests exercise.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Optional

from repro.fault.model import FailureScenario
from repro.schedule.schedule import CommEvent, Replica, Schedule
from repro.utils.errors import ExecutionFailedError


class ReplicaStatus(Enum):
    COMPLETED = "completed"
    CRASHED = "crashed"  # its processor failed before the replica finished
    STARVED = "starved"  # some predecessor's data can never arrive


@dataclass(frozen=True)
class ReplicaOutcome:
    replica: Replica
    status: ReplicaStatus
    start: Optional[float]  # None when the replica never ran
    finish: Optional[float]


@dataclass(frozen=True)
class EventOutcome:
    event: CommEvent
    delivered: bool
    start: Optional[float]
    finish: Optional[float]


@dataclass
class ExecutionResult:
    """Outcome of replaying one schedule under one failure scenario."""

    schedule: Schedule
    scenario: FailureScenario
    replica_outcomes: dict[int, ReplicaOutcome] = field(default_factory=dict)
    event_outcomes: dict[int, EventOutcome] = field(default_factory=dict)
    dead_tasks: tuple[int, ...] = ()

    @property
    def success(self) -> bool:
        """True iff every task has at least one completed replica."""
        return not self.dead_tasks

    def outcome_of(self, replica: Replica) -> ReplicaOutcome:
        return self.replica_outcomes[replica.seq]

    def task_finish(self, task: int) -> float:
        """Earliest completion of ``task`` across its surviving replicas."""
        finishes = [
            out.finish
            for r in self.schedule.replicas[task]
            if (out := self.replica_outcomes[r.seq]).status is ReplicaStatus.COMPLETED
        ]
        if not finishes:
            raise ExecutionFailedError(
                f"t{task} has no completed replica under {self.scenario}",
                dead_tasks=(task,),
            )
        return min(finishes)

    def latency(self) -> float:
        """Latency with crashes; raises if the execution failed."""
        if self.dead_tasks:
            raise ExecutionFailedError(
                f"{len(self.dead_tasks)} task(s) have no completed replica "
                f"under {self.scenario}: {self.dead_tasks[:10]}",
                dead_tasks=self.dead_tasks,
            )
        return max(
            self.task_finish(t) for t in range(self.schedule.instance.num_tasks)
        )

    def counts(self) -> dict[str, int]:
        """Tally of replica statuses and message deliveries."""
        tally = {s.value: 0 for s in ReplicaStatus}
        for out in self.replica_outcomes.values():
            tally[out.status.value] += 1
        tally["messages_delivered"] = sum(
            1 for e in self.event_outcomes.values() if e.delivered
        )
        tally["messages_dropped"] = sum(
            1 for e in self.event_outcomes.values() if not e.delivered
        )
        return tally


def replay(schedule: Schedule, scenario: FailureScenario) -> ExecutionResult:
    """Execute ``schedule`` under ``scenario`` (see module docstring)."""
    inst = schedule.instance
    graph = inst.graph
    net = schedule.make_network()
    proc_ready = [0.0] * inst.num_procs

    result = ExecutionResult(schedule=schedule, scenario=scenario)
    rep_out = result.replica_outcomes
    ev_out = result.event_outcomes

    for entry in schedule.commit_log:
        if isinstance(entry, CommEvent):
            src = rep_out[entry.src_replica.seq]
            if src.status is not ReplicaStatus.COMPLETED:
                ev_out[entry.seq] = EventOutcome(entry, False, None, None)
                continue
            token = net.checkpoint()
            start, finish = net.place_transfer(
                entry.src_proc, entry.dst_proc, src.finish, entry.volume
            )
            delivered = scenario.survives(
                entry.src_proc, start, finish
            ) and scenario.survives(entry.dst_proc, start, finish)
            if delivered:
                net.commit()
                ev_out[entry.seq] = EventOutcome(entry, True, start, finish)
            else:
                # Failed transfers do not hold resources (fail-stop is
                # detectable; see DESIGN.md on this simplification).
                net.rollback(token)
                ev_out[entry.seq] = EventOutcome(entry, False, None, None)
        else:
            r: Replica = entry
            data = 0.0
            starved = False
            for pred in graph.preds(r.task):
                best = float("inf")
                local = r.local_inputs.get(pred)
                if local is not None:
                    lout = rep_out[local.seq]
                    if lout.status is ReplicaStatus.COMPLETED:
                        best = lout.finish
                for e in r.inputs.get(pred, ()):
                    eo = ev_out[e.seq]
                    if eo.delivered and eo.finish < best:
                        best = eo.finish
                if best == float("inf"):
                    starved = True
                    break
                if best > data:
                    data = best
            if starved:
                rep_out[r.seq] = ReplicaOutcome(r, ReplicaStatus.STARVED, None, None)
                continue
            start = max(proc_ready[r.proc], net.compute_floor(r.proc), data)
            finish = start + r.duration
            if scenario.survives(r.proc, start, finish):
                rep_out[r.seq] = ReplicaOutcome(
                    r, ReplicaStatus.COMPLETED, start, finish
                )
                proc_ready[r.proc] = finish
                net.note_compute(r.proc, start, finish)
            else:
                rep_out[r.seq] = ReplicaOutcome(r, ReplicaStatus.CRASHED, start, None)

    dead = []
    for t in range(graph.num_tasks):
        if not any(
            rep_out[r.seq].status is ReplicaStatus.COMPLETED
            for r in schedule.replicas[t]
        ):
            dead.append(t)
    result.dead_tasks = tuple(dead)
    return result


def crash_latency(schedule: Schedule, scenario: FailureScenario) -> float:
    """Convenience wrapper: replay and return the latency with crashes."""
    return replay(schedule, scenario).latency()
