"""Validation of crash-replay executions (defense in depth).

The replay engine is itself part of the trusted base for every robustness
claim, so this module re-checks an :class:`ExecutionResult` against the
model from first principles: completed work respects precedence with the
*delivered* supplies only, nothing runs on a processor past its failure
time, and the one-port exclusivity constraints hold on the executed
timeline too.
"""

from __future__ import annotations

from collections import defaultdict

from repro.fault.simulator import ExecutionResult, ReplicaStatus
from repro.utils.errors import ScheduleValidationError

_EPS = 1e-9


def validate_execution(result: ExecutionResult) -> None:
    """Raise :class:`ScheduleValidationError` on any violated run-time rule."""
    schedule = result.schedule
    scenario = result.scenario
    graph = schedule.instance.graph

    # --- dead processors do no work -------------------------------------
    for out in result.replica_outcomes.values():
        if out.status is ReplicaStatus.COMPLETED:
            if not scenario.survives(out.replica.proc, out.start, out.finish):
                raise ScheduleValidationError(
                    f"{out.replica} completed on a failed processor"
                )
    for eo in result.event_outcomes.values():
        if eo.delivered:
            e = eo.event
            if not scenario.survives(e.src_proc, eo.start, eo.finish):
                raise ScheduleValidationError(f"{e} delivered from a dead sender")
            if not scenario.survives(e.dst_proc, eo.start, eo.finish):
                raise ScheduleValidationError(f"{e} delivered to a dead receiver")

    # --- messages only from completed sources ---------------------------
    for eo in result.event_outcomes.values():
        if eo.delivered:
            src_out = result.replica_outcomes[eo.event.src_replica.seq]
            if src_out.status is not ReplicaStatus.COMPLETED:
                raise ScheduleValidationError(
                    f"{eo.event} delivered but its source never completed"
                )
            if eo.start < src_out.finish - _EPS:
                raise ScheduleValidationError(
                    f"{eo.event} started before its source finished"
                )

    # --- precedence with delivered supplies only -------------------------
    for out in result.replica_outcomes.values():
        if out.status is not ReplicaStatus.COMPLETED:
            continue
        r = out.replica
        for pred in graph.preds(r.task):
            supplies = []
            local = r.local_inputs.get(pred)
            if local is not None:
                lout = result.replica_outcomes[local.seq]
                if lout.status is ReplicaStatus.COMPLETED:
                    supplies.append(lout.finish)
            for e in r.inputs.get(pred, ()):
                eo = result.event_outcomes[e.seq]
                if eo.delivered:
                    supplies.append(eo.finish)
            if not supplies:
                raise ScheduleValidationError(
                    f"{r} completed without any delivered supply for t{pred}"
                )
            if min(supplies) > out.start + _EPS:
                raise ScheduleValidationError(
                    f"{r} started before its earliest t{pred} supply"
                )

    # --- executed-timeline exclusivity -----------------------------------
    def check_intervals(groups: dict, what: str) -> None:
        for key, intervals in groups.items():
            intervals.sort()
            for (s1, f1), (s2, f2) in zip(intervals, intervals[1:]):
                if s2 < f1 - _EPS:
                    raise ScheduleValidationError(
                        f"executed {what} {key} overlaps: "
                        f"[{s1:.3f},{f1:.3f}] vs [{s2:.3f},{f2:.3f}]"
                    )

    proc_groups: dict = defaultdict(list)
    for out in result.replica_outcomes.values():
        if out.status is ReplicaStatus.COMPLETED:
            proc_groups[out.replica.proc].append((out.start, out.finish))
    check_intervals(proc_groups, "processor")

    if "oneport" in schedule.model:
        send_groups: dict = defaultdict(list)
        recv_groups: dict = defaultdict(list)
        for eo in result.event_outcomes.values():
            if eo.delivered and eo.finish > eo.start:
                send_groups[eo.event.src_proc].append((eo.start, eo.finish))
                recv_groups[eo.event.dst_proc].append((eo.start, eo.finish))
        check_intervals(send_groups, "send port")
        check_intervals(recv_groups, "receive port")


def is_valid_execution(result: ExecutionResult) -> bool:
    """Boolean wrapper around :func:`validate_execution`."""
    try:
        validate_execution(result)
    except ScheduleValidationError:
        return False
    return True
