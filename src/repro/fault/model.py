"""Fail-stop failure scenarios.

A :class:`FailureScenario` assigns each failed processor the instant it
stops (fail-silent / fail-stop, paper §2): the processor behaves correctly
strictly before its failure time and does nothing afterwards.  The paper's
experiments crash processors chosen uniformly at random; the failure time
defaults to 0 (the processor never contributes), the most adverse case for
an active-replication schedule.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Iterable, Mapping, Optional, Sequence

import numpy as np

from repro.utils.errors import CampaignConfigError, ReproError


class FailureScenario:
    """An immutable map ``processor -> failure time``.

    Processors absent from the map never fail.  A unit of work occupying
    ``[start, finish]`` on processor ``p`` succeeds iff ``start <
    fail_time(p)`` and ``finish <= fail_time(p)``.
    """

    __slots__ = ("_fail_times",)

    def __init__(self, fail_times: Mapping[int, float]) -> None:
        clean: dict[int, float] = {}
        for proc, t in fail_times.items():
            t = float(t)
            if t < 0 or math.isnan(t):
                raise ReproError(f"bad failure time {t} for P{proc}")
            if not math.isinf(t):
                clean[int(proc)] = t
        self._fail_times = clean

    # ------------------------------------------------------------------
    @classmethod
    def crash_at_start(cls, procs: Iterable[int]) -> "FailureScenario":
        """Processors in ``procs`` are dead from time 0."""
        return cls({p: 0.0 for p in procs})

    @classmethod
    def none(cls) -> "FailureScenario":
        """The failure-free scenario."""
        return cls({})

    # ------------------------------------------------------------------
    @property
    def failed_procs(self) -> tuple[int, ...]:
        return tuple(sorted(self._fail_times))

    @property
    def num_failures(self) -> int:
        return len(self._fail_times)

    def fail_time(self, proc: int) -> float:
        """Failure instant of ``proc`` (``inf`` if it never fails)."""
        return self._fail_times.get(proc, math.inf)

    def survives(self, proc: int, start: float, finish: float) -> bool:
        """Whether work on ``proc`` over ``[start, finish]`` completes."""
        t = self.fail_time(proc)
        return start < t and finish <= t

    def __repr__(self) -> str:
        if not self._fail_times:
            return "FailureScenario(none)"
        inner = ", ".join(f"P{p}@{t:g}" for p, t in sorted(self._fail_times.items()))
        return f"FailureScenario({inner})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FailureScenario):
            return NotImplemented
        return self._fail_times == other._fail_times

    def __hash__(self) -> int:
        return hash(tuple(sorted(self._fail_times.items())))


# ----------------------------------------------------------------------
# Failure models: how scenarios are *drawn* (i.i.d. or correlated)
# ----------------------------------------------------------------------


class FailureModel:
    """How random failure scenarios are drawn for a platform.

    A failure model partitions the processors into *events* — the units
    that fail together.  The i.i.d. model's events are the individual
    processors (the paper's setting); a correlated model's events are
    failure domains (a rack/switch taking all member processors down at
    one drawn instant).  Monte-Carlo pools and campaign crash scenarios
    are expressed over events, so "``k`` failures" uniformly means
    "``k`` events", and the i.i.d. model is the trivial instance:
    singleton events make every draw bit-identical to the historical
    per-processor code path.
    """

    name = "iid"

    def event_members(self, num_procs: int) -> tuple[tuple[int, ...], ...]:
        """The processors of each event (singletons for i.i.d.)."""
        return tuple((p,) for p in range(num_procs))

    def draw_event_pool(
        self, num_procs: int, samples: int, rng: np.random.Generator
    ) -> np.ndarray:
        """``(samples, num_events)`` matrix of independent event permutations.

        The ``k``-failure scenario of sample ``i`` is the union of the
        members of events ``pool[i, :k]`` — nested across ``k`` so
        survival curves stay paired.  For singleton events this is
        exactly :func:`repro.fault.montecarlo.draw_crash_pool` (same
        single vectorized RNG call, same bits).
        """
        n = len(self.event_members(num_procs))
        pool = np.tile(np.arange(n), (samples, 1))
        return rng.permuted(pool, axis=1)

    def draw_scenario(
        self,
        num_procs: int,
        num_failures: int,
        rng: np.random.Generator,
        time_range: Optional[tuple[float, float]] = None,
    ) -> FailureScenario:
        """One random scenario of ``num_failures`` events.

        With singleton events and ``time_range=None`` this makes exactly
        the RNG calls of
        :func:`repro.fault.scenarios.random_crash_scenario`, so configs
        that never name a failure model keep their historical draws.
        All members of one event share the event's drawn failure time.
        """
        events = self.event_members(num_procs)
        if not (0 <= num_failures <= len(events)):
            raise ReproError(
                f"cannot fail {num_failures} of {len(events)} "
                f"failure event(s)"
            )
        picked = rng.choice(len(events), size=num_failures, replace=False)
        if time_range is None:
            return FailureScenario.crash_at_start(
                p for e in picked for p in events[int(e)]
            )
        lo, hi = time_range
        fail_times: dict[int, float] = {}
        for e in picked:
            t = float(rng.uniform(lo, hi))
            for p in events[int(e)]:
                fail_times[p] = t
        return FailureScenario(fail_times)


#: the trivial instance — one event per processor, the paper's draws
IIDFailureModel = FailureModel


class CorrelatedFailureModel(FailureModel):
    """Failure domains: disjoint processor groups that fail together.

    ``domains`` is a sequence of disjoint processor groups (e.g. the
    racks of a fat-tree pod, the rows of a torus); processors not named
    by any group become singleton events, so partial groupings stay
    valid.  Events are ordered by their smallest member — with singleton
    domains the event order is the processor order and every draw
    reproduces the i.i.d. model exactly.
    """

    name = "correlated"

    def __init__(self, domains: Sequence[Sequence[int]]) -> None:
        groups: list[tuple[int, ...]] = []
        seen: set[int] = set()
        for domain in domains:
            members = tuple(sorted(int(p) for p in domain))
            if not members:
                continue
            if len(set(members)) != len(members) or seen & set(members):
                raise ReproError(
                    f"failure domains must be disjoint, got {domains!r}"
                )
            seen.update(members)
            groups.append(members)
        self.domains = tuple(sorted(groups))

    def event_members(self, num_procs: int) -> tuple[tuple[int, ...], ...]:
        for domain in self.domains:
            if domain[-1] >= num_procs or domain[0] < 0:
                raise ReproError(
                    f"failure domain {domain} names processors outside "
                    f"0..{num_procs - 1}"
                )
        covered = {p for domain in self.domains for p in domain}
        events = list(self.domains) + [
            (p,) for p in range(num_procs) if p not in covered
        ]
        return tuple(sorted(events))


# ----------------------------------------------------------------------
# Serializable failure-model spec + registry
# ----------------------------------------------------------------------

#: failure-model builders: ``name -> builder(spec, num_procs, topology)``
FAILURE_MODELS: dict[str, Callable] = {}


def failure_model_names() -> tuple[str, ...]:
    """Registered failure-model kinds (``failure_model.kind`` in specs)."""
    return tuple(sorted(FAILURE_MODELS))


def register_failure_model(
    name: str, builder: Callable, *, overwrite: bool = False
) -> Callable:
    """Register a failure-model builder under ``name``.

    ``builder(spec, num_procs, topology)`` must return a
    :class:`FailureModel` (``spec`` is the :class:`FailureSpec` naming
    it, ``topology`` the config's topology shape name or ``None``).
    Registered kinds become valid ``failure_model.kind`` values in
    campaign specs.  Returns ``builder`` so it can be a decorator.
    """
    from repro.utils.registry import check_registration

    check_registration("failure model", name, name in FAILURE_MODELS, overwrite)
    FAILURE_MODELS[name] = builder
    return builder


@dataclass(frozen=True)
class FailureSpec:
    """Serializable description of how failures are drawn.

    ``kind`` names a registered failure model: ``"iid"`` (independent
    per-processor failures, the paper's setting and the default),
    ``"domains"`` (contiguous blocks of ``domain_size`` processors fail
    together — racks on a flat processor numbering), or ``"topology"``
    (domains derived from the config's topology shape: fat-tree pods,
    torus/mesh rows; shapes without natural groups fall back to
    ``domain_size`` blocks).  Round-trips through JSON/TOML as one flat
    table; unknown keys are rejected loudly.
    """

    kind: str = "iid"
    domain_size: Optional[int] = None

    _KNOWN = frozenset({"kind", "domain_size"})

    def __post_init__(self) -> None:
        if self.kind not in FAILURE_MODELS:
            raise CampaignConfigError(
                f"unknown failure model {self.kind!r} (key "
                f"'failure_model.kind'); registered: "
                f"{', '.join(failure_model_names())}",
                key="failure_model.kind",
            )
        if self.domain_size is not None and (
            isinstance(self.domain_size, bool)
            or not isinstance(self.domain_size, int)
            or self.domain_size < 1
        ):
            raise CampaignConfigError(
                f"failure_model.domain_size must be a positive integer, "
                f"got {self.domain_size!r}",
                key="failure_model.domain_size",
            )
        if self.kind == "domains" and self.domain_size is None:
            raise CampaignConfigError(
                "failure_model.kind 'domains' needs failure_model."
                "domain_size (how many processors fail together)",
                key="failure_model.domain_size",
            )

    def to_dict(self) -> dict:
        """Canonical JSON/TOML-ready mapping (defaults omitted)."""
        out: dict = {"kind": self.kind}
        if self.domain_size is not None:
            out["domain_size"] = self.domain_size
        return out

    @classmethod
    def from_dict(
        cls, data: Optional[Mapping], strict: bool = True
    ) -> Optional["FailureSpec"]:
        """Rebuild from :meth:`to_dict` output (``None`` passes through).

        ``strict`` rejects unknown keys (spec files); store manifests
        load tolerantly so rows written by newer versions stay readable.
        """
        if data is None:
            return None
        if not isinstance(data, Mapping):
            raise CampaignConfigError(
                f"'failure_model' must be a table/object, "
                f"got {type(data).__name__}",
                key="failure_model",
            )
        unknown = sorted(set(data) - cls._KNOWN)
        if unknown and strict:
            keys = ", ".join(repr(k) for k in unknown)
            raise CampaignConfigError(
                f"unknown key(s) {keys} in failure_model spec; known "
                f"keys: {', '.join(sorted(cls._KNOWN))}",
                key=f"failure_model.{unknown[0]}",
            )
        return cls(**{k: v for k, v in data.items() if k in cls._KNOWN})


def _contiguous_domains(num_procs: int, size: int) -> list[tuple[int, ...]]:
    return [
        tuple(range(lo, min(lo + size, num_procs)))
        for lo in range(0, num_procs, size)
    ]


def _build_iid(spec: FailureSpec, num_procs: int, topology) -> FailureModel:
    return FailureModel()


def _build_domains(spec: FailureSpec, num_procs: int, topology) -> FailureModel:
    return CorrelatedFailureModel(
        _contiguous_domains(num_procs, spec.domain_size)
    )


def _build_topology_domains(
    spec: FailureSpec, num_procs: int, topology
) -> FailureModel:
    from repro.platform.topology import topology_groups

    groups = topology_groups(topology, num_procs) if topology else None
    if groups is None:
        size = spec.domain_size or max(1, int(round(num_procs**0.5)))
        groups = _contiguous_domains(num_procs, size)
    return CorrelatedFailureModel(groups)


if "iid" not in FAILURE_MODELS:
    register_failure_model("iid", _build_iid)
    register_failure_model("domains", _build_domains)
    register_failure_model("topology", _build_topology_domains)


def build_failure_model(
    spec: Optional[FailureSpec],
    num_procs: int,
    topology: Optional[str] = None,
) -> FailureModel:
    """Instantiate the failure model a spec names (``None`` = i.i.d.)."""
    if spec is None:
        return FailureModel()
    builder = FAILURE_MODELS[spec.kind]
    return builder(spec, num_procs, topology)
