"""Fail-stop failure scenarios.

A :class:`FailureScenario` assigns each failed processor the instant it
stops (fail-silent / fail-stop, paper §2): the processor behaves correctly
strictly before its failure time and does nothing afterwards.  The paper's
experiments crash processors chosen uniformly at random; the failure time
defaults to 0 (the processor never contributes), the most adverse case for
an active-replication schedule.
"""

from __future__ import annotations

import math
from typing import Iterable, Mapping

from repro.utils.errors import ReproError


class FailureScenario:
    """An immutable map ``processor -> failure time``.

    Processors absent from the map never fail.  A unit of work occupying
    ``[start, finish]`` on processor ``p`` succeeds iff ``start <
    fail_time(p)`` and ``finish <= fail_time(p)``.
    """

    __slots__ = ("_fail_times",)

    def __init__(self, fail_times: Mapping[int, float]) -> None:
        clean: dict[int, float] = {}
        for proc, t in fail_times.items():
            t = float(t)
            if t < 0 or math.isnan(t):
                raise ReproError(f"bad failure time {t} for P{proc}")
            if not math.isinf(t):
                clean[int(proc)] = t
        self._fail_times = clean

    # ------------------------------------------------------------------
    @classmethod
    def crash_at_start(cls, procs: Iterable[int]) -> "FailureScenario":
        """Processors in ``procs`` are dead from time 0."""
        return cls({p: 0.0 for p in procs})

    @classmethod
    def none(cls) -> "FailureScenario":
        """The failure-free scenario."""
        return cls({})

    # ------------------------------------------------------------------
    @property
    def failed_procs(self) -> tuple[int, ...]:
        return tuple(sorted(self._fail_times))

    @property
    def num_failures(self) -> int:
        return len(self._fail_times)

    def fail_time(self, proc: int) -> float:
        """Failure instant of ``proc`` (``inf`` if it never fails)."""
        return self._fail_times.get(proc, math.inf)

    def survives(self, proc: int, start: float, finish: float) -> bool:
        """Whether work on ``proc`` over ``[start, finish]`` completes."""
        t = self.fail_time(proc)
        return start < t and finish <= t

    def __repr__(self) -> str:
        if not self._fail_times:
            return "FailureScenario(none)"
        inner = ", ".join(f"P{p}@{t:g}" for p, t in sorted(self._fail_times.items()))
        return f"FailureScenario({inner})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FailureScenario):
            return NotImplemented
        return self._fail_times == other._fail_times

    def __hash__(self) -> int:
        return hash(tuple(sorted(self._fail_times.items())))
