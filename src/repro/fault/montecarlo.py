"""Monte-Carlo fault analysis (batched).

Exhaustive robustness checking (:func:`repro.fault.scenarios.check_robustness`)
is exponential in ε; for larger platforms this module estimates the same
quantities by sampling failure scenarios: survival probability, expected
crash latency, and the latency distribution's tail.  It also supports
failure-*time* sampling (processors dying mid-execution), which the
exhaustive checker does not explore.

Two fast-path mechanisms keep large campaigns cheap:

* **batched sampling** — all crash scenarios of a campaign are drawn in
  one vectorized RNG call (a permutation matrix sliced per scenario)
  instead of one ``Generator.choice`` per sample;
* **replay short-circuiting** — a scenario whose every failure strikes a
  processor strictly after its last scheduled activity cannot change any
  outcome, so the replay collapses to the committed schedule (the
  documented no-crash invariant).  In particular every crash subset that
  misses the processors used by the schedule — and the whole ``k = 0``
  row of a survival curve — costs O(1).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.fault.model import FailureModel, FailureScenario
from repro.fault.simulator import replay
from repro.schedule.schedule import Schedule
from repro.utils.rng import RngLike, as_rng


@dataclass
class MonteCarloReport:
    """Aggregated outcome of a sampled crash campaign.

    ``latencies`` is an ndarray of the surviving replays' latencies (one
    entry per survived sample, in sample order).
    """

    samples: int
    survived: int
    latencies: np.ndarray = field(default_factory=lambda: np.empty(0))
    failures: list[FailureScenario] = field(default_factory=list)

    @property
    def survival_rate(self) -> float:
        return self.survived / self.samples if self.samples else math.nan

    @property
    def mean_latency(self) -> float:
        return float(np.mean(self.latencies)) if self.latencies.size else math.nan

    @property
    def max_latency(self) -> float:
        return float(np.max(self.latencies)) if self.latencies.size else math.nan

    def latency_quantile(self, q: float) -> float:
        if not self.latencies.size:
            return math.nan
        return float(np.quantile(self.latencies, q))


def draw_crash_pool(
    num_procs: int, samples: int, rng: RngLike = None
) -> np.ndarray:
    """``(samples, num_procs)`` matrix of independent processor permutations.

    One vectorized RNG call covers a whole campaign: the scenario with
    ``k`` crashes of sample ``i`` is ``pool[i, :k]`` — ``k`` distinct
    processors chosen uniformly at random, and nested across ``k`` so a
    survival curve reuses the same draws at every crash count.
    """
    gen = as_rng(rng)
    pool = np.tile(np.arange(num_procs), (samples, 1))
    return gen.permuted(pool, axis=1)


def _last_busy_times(schedule: Schedule) -> np.ndarray:
    """Per-processor time of the last scheduled activity (−inf if unused).

    A processor failing strictly after this instant cannot affect the
    execution: every replica and message endpoint on it finishes no later,
    so all its work survives and the replay equals the committed schedule.
    """
    busy = np.full(schedule.instance.num_procs, -np.inf)
    for reps in schedule.replicas:
        for r in reps:
            if r.finish > busy[r.proc]:
                busy[r.proc] = r.finish
    for e in schedule.events:
        if e.finish > busy[e.src_proc]:
            busy[e.src_proc] = e.finish
        if e.finish > busy[e.dst_proc]:
            busy[e.dst_proc] = e.finish
    return busy


class _Replayer:
    """Shared per-schedule replay state with short-circuiting."""

    def __init__(self, schedule: Schedule) -> None:
        self.schedule = schedule
        self.last_busy = _last_busy_times(schedule)
        self._base_latency: Optional[float] = None

    def harmless(self, scenario: FailureScenario) -> bool:
        busy = self.last_busy
        return all(
            scenario.fail_time(p) > busy[p] for p in scenario.failed_procs
        )

    def base_latency(self) -> float:
        if self._base_latency is None:
            self._base_latency = self.schedule.latency()
        return self._base_latency

    def run(self, scenario: FailureScenario):
        """Return ``(survived, latency_or_None)`` for one scenario."""
        if self.harmless(scenario):
            return True, self.base_latency()
        result = replay(self.schedule, scenario)
        if result.success:
            return True, result.latency()
        return False, None


def _pool_scenario(
    members: tuple[tuple[int, ...], ...],
    events: np.ndarray,
    times: Optional[np.ndarray],
) -> FailureScenario:
    """Scenario for one pool row: members of each event share its time."""
    if times is None:
        return FailureScenario.crash_at_start(
            p for e in events for p in members[int(e)]
        )
    fail_times: dict[int, float] = {}
    for e, t in zip(events, times):
        for p in members[int(e)]:
            fail_times[p] = float(t)
    return FailureScenario(fail_times)


def monte_carlo_crashes(
    schedule: Schedule,
    num_failures: int,
    samples: int = 200,
    rng: RngLike = None,
    time_range: Optional[tuple[float, float]] = None,
    failure_model: Optional[FailureModel] = None,
) -> MonteCarloReport:
    """Replay ``schedule`` under ``samples`` random crash scenarios.

    ``num_failures`` failure events are drawn uniformly per sample — all
    samples in one vectorized RNG call; with ``time_range`` the failure
    instants are drawn uniformly from the range (mid-execution crashes),
    otherwise the failed processors are dead from time 0.  The default
    ``failure_model`` fails individual processors independently (the
    paper's setting, bit-identical to the historical draws); a
    :class:`~repro.fault.model.CorrelatedFailureModel` fails whole
    domains — every member of a drawn domain stops at the domain's one
    drawn time.
    """
    if samples < 1:
        raise ValueError("samples must be >= 1")
    m = schedule.instance.num_procs
    model = failure_model if failure_model is not None else FailureModel()
    members = model.event_members(m)
    if not (0 <= num_failures <= len(members)):
        raise ValueError(
            f"cannot fail {num_failures} of {len(members)} failure event(s)"
        )
    gen = as_rng(rng)
    pool = model.draw_event_pool(m, samples, gen)[:, :num_failures]
    times = None
    if time_range is not None:
        lo, hi = time_range
        times = gen.uniform(lo, hi, size=(samples, num_failures))

    replayer = _Replayer(schedule)
    survived = 0
    latencies: list[float] = []
    failures: list[FailureScenario] = []
    for i in range(samples):
        scenario = _pool_scenario(
            members, pool[i], None if times is None else times[i]
        )
        ok, latency = replayer.run(scenario)
        if ok:
            survived += 1
            latencies.append(latency)
        else:
            failures.append(scenario)
    return MonteCarloReport(
        samples=samples,
        survived=survived,
        latencies=np.asarray(latencies),
        failures=failures,
    )


def survival_curve(
    schedule: Schedule,
    max_failures: int,
    samples: int = 100,
    rng: RngLike = None,
    samples_per_k: Optional[int] = None,
    failure_model: Optional[FailureModel] = None,
) -> dict[int, MonteCarloReport]:
    """Estimated survival as a function of the failure-event count.

    One batched scenario pool is drawn up front and reused across every
    crash count ``k`` (the ``k``-crash scenario of sample ``i`` is the
    first ``k`` processors of pool row ``i``), so the curve is paired
    across ``k`` instead of re-estimated from scratch.  ``samples_per_k``
    caps how many pool rows each crash count replays (default: all
    ``samples``).  Every row — including ``k = 0``, which earlier versions
    hard-coded without sampling — is a full :class:`MonteCarloReport`
    with its sample count; the ``k = 0`` replays short-circuit to the
    committed schedule, so the row is exact and effectively free.

    For a correct ε-fault-tolerant schedule ``survival_rate`` is exactly
    1.0 up to ``ε`` and typically degrades beyond it (the schedule may
    still survive more crashes by luck — replication placement often
    covers more than the guaranteed budget).

    With a correlated ``failure_model``, ``k`` counts failure *events*
    (domains), not processors — row ``k`` of the curve answers "does the
    schedule survive ``k`` racks going down".
    """
    if samples < 1:
        raise ValueError("samples must be >= 1")
    m = schedule.instance.num_procs
    model = failure_model if failure_model is not None else FailureModel()
    members = model.event_members(m)
    if max_failures > len(members):
        raise ValueError(
            f"cannot fail {max_failures} of {len(members)} failure event(s)"
        )
    n_k = samples if samples_per_k is None else max(1, min(samples_per_k, samples))
    pool = model.draw_event_pool(m, samples, as_rng(rng))
    replayer = _Replayer(schedule)

    curve: dict[int, MonteCarloReport] = {}
    for k in range(max_failures + 1):
        survived = 0
        latencies: list[float] = []
        failures: list[FailureScenario] = []
        for i in range(n_k):
            scenario = _pool_scenario(members, pool[i, :k], None)
            ok, latency = replayer.run(scenario)
            if ok:
                survived += 1
                latencies.append(latency)
            else:
                failures.append(scenario)
        curve[k] = MonteCarloReport(
            samples=n_k,
            survived=survived,
            latencies=np.asarray(latencies),
            failures=failures,
        )
    return curve
