"""Monte-Carlo fault analysis.

Exhaustive robustness checking (:func:`repro.fault.scenarios.check_robustness`)
is exponential in ε; for larger platforms this module estimates the same
quantities by sampling failure scenarios: survival probability, expected
crash latency, and the latency distribution's tail.  It also supports
failure-*time* sampling (processors dying mid-execution), which the
exhaustive checker does not explore.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.fault.model import FailureScenario
from repro.fault.scenarios import random_crash_scenario
from repro.fault.simulator import replay
from repro.schedule.schedule import Schedule
from repro.utils.rng import RngLike, as_rng


@dataclass
class MonteCarloReport:
    """Aggregated outcome of a sampled crash campaign."""

    samples: int
    survived: int
    latencies: list[float] = field(default_factory=list)
    failures: list[FailureScenario] = field(default_factory=list)

    @property
    def survival_rate(self) -> float:
        return self.survived / self.samples if self.samples else math.nan

    @property
    def mean_latency(self) -> float:
        return float(np.mean(self.latencies)) if self.latencies else math.nan

    @property
    def max_latency(self) -> float:
        return float(np.max(self.latencies)) if self.latencies else math.nan

    def latency_quantile(self, q: float) -> float:
        if not self.latencies:
            return math.nan
        return float(np.quantile(self.latencies, q))


def monte_carlo_crashes(
    schedule: Schedule,
    num_failures: int,
    samples: int = 200,
    rng: RngLike = None,
    time_range: Optional[tuple[float, float]] = None,
) -> MonteCarloReport:
    """Replay ``schedule`` under ``samples`` random crash scenarios.

    ``num_failures`` processors are drawn uniformly per sample; with
    ``time_range`` the failure instants are drawn uniformly from the range
    (mid-execution crashes), otherwise processors are dead from time 0.
    """
    if samples < 1:
        raise ValueError("samples must be >= 1")
    gen = as_rng(rng)
    report = MonteCarloReport(samples=samples, survived=0)
    m = schedule.instance.num_procs
    for _ in range(samples):
        scenario = random_crash_scenario(
            m, num_failures, rng=gen, time_range=time_range
        )
        result = replay(schedule, scenario)
        if result.success:
            report.survived += 1
            report.latencies.append(result.latency())
        else:
            report.failures.append(scenario)
    return report


def survival_curve(
    schedule: Schedule,
    max_failures: int,
    samples: int = 100,
    rng: RngLike = None,
) -> dict[int, float]:
    """Estimated survival probability as a function of the crash count.

    For a correct ε-fault-tolerant schedule the curve is exactly 1.0 up to
    ``ε`` and typically degrades beyond it (the schedule may still survive
    more crashes by luck — replication placement often covers more than the
    guaranteed budget).
    """
    gen = as_rng(rng)
    curve: dict[int, float] = {}
    for k in range(max_failures + 1):
        if k == 0:
            curve[0] = 1.0
            continue
        report = monte_carlo_crashes(schedule, k, samples=samples, rng=gen)
        curve[k] = report.survival_rate
    return curve
