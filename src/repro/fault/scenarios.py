"""Failure-scenario generators and exhaustive robustness checking.

The paper's experiments crash processors "chosen uniformly from the range
[1, 10]" (§6); :func:`random_crash_scenario` reproduces that.
:func:`check_robustness` verifies Proposition 5.2 the hard way: replay the
schedule under **every** subset of at most ``ε`` failed processors and
report any subset that kills a task.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterator, Optional

from repro.fault.model import FailureScenario
from repro.fault.simulator import replay
from repro.schedule.schedule import Schedule
from repro.utils.rng import RngLike, as_rng


def random_crash_scenario(
    num_procs: int,
    num_failures: int,
    rng: RngLike = None,
    time_range: Optional[tuple[float, float]] = None,
) -> FailureScenario:
    """``num_failures`` distinct processors chosen uniformly at random.

    With ``time_range=None`` processors are dead from time 0 (the paper's
    setting); otherwise each failure time is drawn uniformly from the
    range, modelling mid-execution crashes.
    """
    if not (0 <= num_failures <= num_procs):
        raise ValueError(
            f"cannot fail {num_failures} of {num_procs} processors"
        )
    gen = as_rng(rng)
    procs = gen.choice(num_procs, size=num_failures, replace=False)
    if time_range is None:
        return FailureScenario.crash_at_start(int(p) for p in procs)
    lo, hi = time_range
    return FailureScenario(
        {int(p): float(gen.uniform(lo, hi)) for p in procs}
    )


def all_crash_scenarios(
    num_procs: int, max_failures: int, exact: bool = False
) -> Iterator[FailureScenario]:
    """Every crash-at-0 scenario with ``<= max_failures`` (or exactly that many)."""
    sizes = [max_failures] if exact else range(max_failures + 1)
    for k in sizes:
        for subset in itertools.combinations(range(num_procs), k):
            yield FailureScenario.crash_at_start(subset)


@dataclass
class RobustnessReport:
    """Outcome of an exhaustive robustness check."""

    schedule: Schedule
    max_failures: int
    scenarios_checked: int = 0
    violations: list[tuple[FailureScenario, tuple[int, ...]]] = field(
        default_factory=list
    )
    worst_latency: float = 0.0

    @property
    def robust(self) -> bool:
        return not self.violations


def check_robustness(
    schedule: Schedule,
    max_failures: Optional[int] = None,
    exact: bool = False,
) -> RobustnessReport:
    """Replay ``schedule`` under every ``<= max_failures`` crash subset.

    ``max_failures`` defaults to the schedule's ``ε``.  The check is
    exponential in ``max_failures`` — intended for tests and diagnostics
    at small platform sizes, exactly like the paper's proof obligations.
    """
    if max_failures is None:
        max_failures = schedule.epsilon
    report = RobustnessReport(schedule=schedule, max_failures=max_failures)
    for scenario in all_crash_scenarios(
        schedule.instance.num_procs, max_failures, exact=exact
    ):
        result = replay(schedule, scenario)
        report.scenarios_checked += 1
        if result.success:
            report.worst_latency = max(report.worst_latency, result.latency())
        else:
            report.violations.append((scenario, result.dead_tasks))
    return report
