"""Scheduling heuristics: HEFT (baseline), FTSA and FTBAR (competitors)."""

from repro.schedulers.heft import heft
from repro.schedulers.ftsa import ftsa
from repro.schedulers.ftbar import ftbar
from repro.schedulers.base import (
    FreeTaskList,
    argmin_trial,
    make_builder,
    resolve_network,
    full_fanin_sources,
    eligible_procs,
)

__all__ = [
    "heft",
    "ftsa",
    "ftbar",
    "FreeTaskList",
    "argmin_trial",
    "make_builder",
    "resolve_network",
    "full_fanin_sources",
    "eligible_procs",
]
