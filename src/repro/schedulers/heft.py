"""HEFT — Heterogeneous Earliest Finish Time (Topcuoglu et al. 2002).

The reference fault-free heuristic (paper [27]).  One replica per task:
tasks are ordered by priority, and each is placed on the processor that
minimizes its finish time given the communication model.  Under the
one-port model this is exactly the paper's "FaultFree-CAFT" curve: "the
fault-free version of CAFT reduces to an implementation of HEFT" (§6).

``priority="bl"`` (default) is classic HEFT upward-rank ordering;
``priority="tl+bl"`` with ``dynamic=True`` matches CAFT's ordering so that
``caft(..., epsilon=0)`` and ``heft(..., priority="tl+bl")`` coincide.
"""

from __future__ import annotations

from repro.platform.instance import ProblemInstance
from repro.schedule.schedule import Schedule
from repro.schedulers.base import (
    FreeTaskList,
    ModelSpec,
    argmin_trial,
    eligible_procs,
    full_fanin_sources,
    make_builder,
    seeded,
)
from repro.utils.rng import RngLike


def heft(
    instance: ProblemInstance,
    model: ModelSpec = "oneport",
    priority: str = "bl",
    dynamic: bool = False,
    rng: RngLike = 0,
    fast: bool = True,
) -> Schedule:
    """Schedule ``instance`` with HEFT (one replica per task).

    Parameters
    ----------
    instance:
        The problem to schedule.
    model:
        Communication model name or instance (default: the paper's
        bi-directional one-port).
    priority:
        ``"bl"`` for classic upward rank, ``"tl+bl"`` for the paper's rule.
    dynamic:
        Refresh top levels from actual finish times (paper §5 behaviour).
    rng:
        Seed or generator for random tie-breaking.
    fast:
        Evaluate candidate processors through the vectorized placement
        kernel (bit-identical schedules; see ``repro.schedule.kernel``).
    """
    gen = seeded(rng)
    builder = make_builder(instance, epsilon=0, model=model, scheduler="heft", fast=fast)
    free = FreeTaskList(instance, gen, priority=priority, dynamic=dynamic)

    while free:
        task = free.pop()
        sources = full_fanin_sources(builder, task)
        # trial_batch is a single-task slice of the kernel's batched
        # sweep: candidates share one eq. (6) prologue and, between
        # placements that did not touch their resources, the epoch cache.
        trials = builder.trial_batch(task, eligible_procs(builder, task), sources)
        best = argmin_trial(trials, gen)
        builder.commit(task, best.proc, sources, kind="primary")
        builder.mark_task_done(task)
        free.task_scheduled(task, best_finish=best.finish)

    return builder.finish()
