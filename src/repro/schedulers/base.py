"""Shared list-scheduling machinery for HEFT, FTSA, FTBAR and CAFT.

All four algorithms follow the same outer loop (paper Algorithm 5.1,
lines 4–24): compute bottom levels, keep a priority queue of *free* tasks
(every predecessor scheduled), pop the highest-priority task, place its
replicas, update successor priorities.  The pieces that differ — replica
placement and (for FTBAR) task selection — are supplied by each
scheduler; everything else lives here.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence, Union

import numpy as np

from repro.comm.base import NetworkModel
from repro.comm import make_network
from repro.dag.analysis import bottom_levels
from repro.platform.instance import ProblemInstance
from repro.schedule.schedule import ScheduleBuilder, Trial
from repro.utils.errors import SchedulingError
from repro.utils.priority_queue import StablePriorityQueue
from repro.utils.rng import RngLike, as_rng

ModelSpec = Union[str, NetworkModel]

#: tolerance when comparing finish times for tie-breaking
TIE_EPS = 1e-9


def resolve_network(
    model: ModelSpec, instance: ProblemInstance, **kwargs
) -> tuple[NetworkModel, Callable[[], NetworkModel]]:
    """Build ``(network, fresh-network factory)`` from a model spec.

    ``model`` is either a model name (``"oneport"``, ``"macro-dataflow"``,
    ...) or a ready :class:`NetworkModel` instance (e.g. a routed network
    over a sparse topology).  The factory recreates an identical *empty*
    network — the crash-replay engine uses it to re-derive resource
    chains.
    """
    if isinstance(model, NetworkModel):
        network = model
        # Dispatch through the model's own clone protocol: every
        # NetworkModel knows its constructor arguments (platform, policy,
        # topology, ...), so subclassed networks rebuild with their
        # configuration intact instead of being string-matched by name.
        factory = network.clone_factory()
        network.reset()
        return network, factory
    name = str(model)
    factory = lambda: make_network(name, instance.platform, **kwargs)  # noqa: E731
    return factory(), factory


class FreeTaskList:
    """Priority-driven free-task management (Algorithm 5.1 skeleton).

    Priorities are ``tl(t) + bl(t)``.  ``dynamic=True`` (the paper's
    behaviour) recomputes a task's top level from the actual best finish
    times of its scheduled predecessors before insertion; ``dynamic=False``
    keeps the purely static levels.  ``priority="bl"`` reproduces classic
    HEFT upward-rank ordering.
    """

    def __init__(
        self,
        instance: ProblemInstance,
        rng: np.random.Generator,
        priority: str = "tl+bl",
        dynamic: bool = True,
    ) -> None:
        if priority not in ("tl+bl", "bl"):
            raise SchedulingError(f"unknown priority rule {priority!r}")
        self.instance = instance
        self.priority = priority
        self.dynamic = dynamic
        self.bl = bottom_levels(instance)
        graph = instance.graph
        self.tl = np.zeros(graph.num_tasks)
        self._remaining = [graph.in_degree(t) for t in range(graph.num_tasks)]
        self.queue: StablePriorityQueue[int] = StablePriorityQueue(rng)
        self._best_finish: dict[int, float] = {}
        for t in graph.topological_order():
            if graph.in_degree(t) == 0:
                self.queue.push(t, self._priority_of(t))

    def _priority_of(self, task: int) -> float:
        if self.priority == "bl":
            return float(self.bl[task])
        return float(self.tl[task] + self.bl[task])

    def __bool__(self) -> bool:
        return bool(self.queue)

    def free_tasks(self) -> list[int]:
        """Current free tasks (used by FTBAR's global selection)."""
        return list(self.queue)

    def pop(self) -> int:
        return self.queue.pop()

    def pop_specific(self, task: int) -> None:
        """Remove ``task`` from the free list (it is about to be scheduled)."""
        if task not in self.queue:
            raise SchedulingError(f"t{task} is not free")
        self.queue.remove(task)

    def task_scheduled(self, task: int, best_finish: float) -> list[int]:
        """Record completion of ``task``; return newly freed tasks (queued)."""
        graph = self.instance.graph
        self._best_finish[task] = best_finish
        freed = []
        for s in graph.succs(task):
            if self.dynamic:
                cand = best_finish + self.instance.mean_edge_weight(task, s)
                if cand > self.tl[s]:
                    self.tl[s] = cand
            else:
                static = (
                    self.tl[task]
                    + self.instance.mean_exec[task]
                    + self.instance.mean_edge_weight(task, s)
                )
                if static > self.tl[s]:
                    self.tl[s] = static
            self._remaining[s] -= 1
            if self._remaining[s] == 0:
                self.queue.push(s, self._priority_of(s))
                freed.append(s)
        return freed


def argmin_trial(trials: Sequence[Trial], rng: np.random.Generator) -> Trial:
    """Pick the trial with minimum finish time, random among near-ties.

    The paper breaks ties randomly (§4.1, §5); the draw comes from the
    scheduler's seeded generator so results stay reproducible.
    """
    if not trials:
        raise SchedulingError("no candidate placement (processor exhaustion)")
    best = min(t.finish for t in trials)
    ties = [t for t in trials if t.finish <= best + TIE_EPS]
    if len(ties) == 1:
        return ties[0]
    return ties[int(rng.integers(len(ties)))]


def make_builder(
    instance: ProblemInstance,
    epsilon: int,
    model: ModelSpec,
    scheduler: str,
    strict_local_suppression: bool = False,
    fast: bool = False,
    **model_kwargs,
) -> ScheduleBuilder:
    """Construct a :class:`ScheduleBuilder` over a fresh network.

    ``fast=True`` activates the vectorized placement kernel when the
    network model declares its contended resources through the
    resource-frontier protocol (``kernel_caps()``/``frontier_view()`` on
    :class:`~repro.comm.base.NetworkModel`) — bit-identical results, no
    undo-log churn.  Models outside the protocol fall back to the exact
    path with a one-time warning.  ``model_kwargs`` reach the network
    factory (e.g. ``policy="insertion"`` for the one-port models, or
    ``topology=...`` for ``model="routed-oneport"``).
    """
    network, factory = resolve_network(model, instance, **model_kwargs)
    return ScheduleBuilder(
        instance,
        network,
        epsilon,
        scheduler,
        make_network=factory,
        strict_local_suppression=strict_local_suppression,
        fast=fast,
    )


def full_fanin_sources(builder: ScheduleBuilder, task: int) -> dict[int, list]:
    """Source map using *every* replica of each predecessor (FTSA/FTBAR)."""
    graph = builder.instance.graph
    return {p: builder.schedule.replicas[p] for p in graph.preds(task)}


def eligible_procs(builder: ScheduleBuilder, task: int) -> list[int]:
    """Processors not yet hosting a replica of ``task`` (space exclusion)."""
    used = {r.proc for r in builder.schedule.replicas[task]}
    return [p for p in range(builder.instance.num_procs) if p not in used]


def seeded(rng: RngLike) -> np.random.Generator:
    """Normalize any seed spec to a generator (alias of :func:`as_rng`)."""
    return as_rng(rng)
