"""FTBAR — Fault Tolerance Based Active Replication (Girault et al. [10]).

The second comparison algorithm (§4.1).  At every step, for every free
task ``ti`` and processor ``pj`` the *schedule pressure*

    ``σ(ti, pj) = S(ti, pj) + s̄(ti) − R``

is computed, where ``S(ti, pj)`` is the earliest start time of ``ti`` on
``pj`` (top-down), ``s̄(ti)`` the latest start time from the bottom (we
use the bottom level ``bl(ti)``, i.e. the remaining critical path through
``ti``), and ``R`` the schedule length before this step.  Each free task
keeps its ``Npf+1 = ε+1`` minimum-pressure processors; the task whose
retained pressure is **largest** (the most urgent) is scheduled on those
processors.  Ties are broken randomly.

Like FTSA, every replica of every predecessor communicates with every
replica of the task.  The recursive Ahmad–Kwok ``Minimize-Start-Time``
duplication pass of the original paper is omitted (documented substitution
in DESIGN.md): it adds copies *beyond* the ε+1 replication scheme and does
not affect the qualitative comparison the paper reports.

Time complexity is O(P·N³) in the original paper — noticeably slower than
FTSA/CAFT, which our complexity benchmark reproduces.
"""

from __future__ import annotations

from repro.dag.analysis import bottom_levels
from repro.platform.instance import ProblemInstance
from repro.schedule.schedule import Schedule, ScheduleBuilder, Trial
from repro.schedulers.base import (
    FreeTaskList,
    ModelSpec,
    TIE_EPS,
    full_fanin_sources,
    make_builder,
    seeded,
)
from repro.utils.errors import SchedulingError
from repro.utils.rng import RngLike


def _best_pressure_set(
    builder: ScheduleBuilder,
    task: int,
    bl: float,
    current_length: float,
    trials: list[Trial],
) -> tuple[list[tuple[float, Trial]], float]:
    """The ``ε+1`` minimum-pressure (σ, trial) pairs for ``task``.

    ``trials`` holds the candidate evaluation for processors ``0..m-1``
    (free tasks have no replicas, so every processor is eligible).
    Returns the retained pairs sorted by σ and the task's urgency (the
    largest retained pressure — the pressure it will actually suffer).
    """
    scored: list[tuple[float, int, Trial]] = []
    for trial in trials:
        sigma = trial.start + bl - current_length
        scored.append((sigma, trial.proc, trial))
    scored.sort(key=lambda item: (item[0], item[1]))
    keep = scored[: builder.epsilon + 1]
    if len(keep) < builder.epsilon + 1:
        raise SchedulingError(
            f"not enough processors for {builder.epsilon + 1} replicas of t{task}"
        )
    pairs = [(sigma, trial) for sigma, _p, trial in keep]
    urgency = pairs[-1][0]
    return pairs, urgency


def ftbar(
    instance: ProblemInstance,
    epsilon: int,
    model: ModelSpec = "oneport",
    rng: RngLike = 0,
    fast: bool = True,
) -> Schedule:
    """Schedule ``instance`` with FTBAR, tolerating ``epsilon`` failures."""
    gen = seeded(rng)
    builder = make_builder(
        instance, epsilon=epsilon, model=model, scheduler="ftbar", fast=fast
    )
    # The free list is used purely for free-task bookkeeping here; FTBAR
    # re-ranks all free tasks by schedule pressure at every step.
    free = FreeTaskList(instance, gen, priority="tl+bl", dynamic=False)
    bl = bottom_levels(instance)
    current_length = 0.0

    while free:
        candidates = free.free_tasks()
        # One batched sweep evaluates every (free task, processor) pair;
        # with the fast kernel, untouched rows come from the epoch cache
        # and the stale ones run as a single vectorized pass per
        # evaluator family (clique lockstep, routed hop-max lockstep, or
        # gap-array replay).
        sources_map = {t: full_fanin_sources(builder, t) for t in candidates}
        sweep = builder.sweep_trials_batch(candidates, sources_map)
        best_task = None
        best_urgency = -float("inf")
        best_pairs: list[tuple[float, Trial]] = []
        ties: list[tuple[int, list[tuple[float, Trial]]]] = []
        for task in candidates:
            pairs, urgency = _best_pressure_set(
                builder, task, float(bl[task]), current_length, sweep[task]
            )
            if urgency > best_urgency + TIE_EPS:
                best_urgency = urgency
                ties = [(task, pairs)]
            elif urgency >= best_urgency - TIE_EPS:
                ties.append((task, pairs))
        best_task, best_pairs = ties[int(gen.integers(len(ties)))] if len(ties) > 1 else ties[0]

        sources = full_fanin_sources(builder, best_task)
        best_finish = float("inf")
        # Commit on the selected processors in pressure order; actual times
        # are recomputed at commit since earlier replicas reserve ports.
        for _sigma, trial in best_pairs:
            replica = builder.commit(best_task, trial.proc, sources, kind="greedy")
            best_finish = min(best_finish, replica.finish)
            current_length = max(current_length, replica.finish)

        free.pop_specific(best_task)
        builder.mark_task_done(best_task)
        free.task_scheduled(best_task, best_finish=best_finish)

    return builder.finish()
