"""FTSA — Fault Tolerant Scheduling Algorithm (Benoit, Hakem, Robert [4]).

The fault-tolerant extension of HEFT the paper compares against (§4.2):
each task is replicated ``ε+1`` times on the processors that allow the
smallest finish times, and **every** replica of every predecessor sends
its result to every replica of the task (up to ``(ε+1)²`` messages per
edge).  A task replica may start as soon as one copy of each input has
arrived; if a predecessor replica shares the processor, intra-processor
communication is used and the other copies do not send to that processor
(§6 note).

Originally designed for the macro-dataflow model; passing
``model="oneport"`` gives the paper's §4.3 adaptation (serialized ports,
eq. (6) reception order).
"""

from __future__ import annotations

from repro.platform.instance import ProblemInstance
from repro.schedule.schedule import Schedule, ScheduleBuilder
from repro.schedulers.base import (
    FreeTaskList,
    ModelSpec,
    argmin_trial,
    eligible_procs,
    full_fanin_sources,
    make_builder,
    seeded,
)
from repro.utils.rng import RngLike


def place_task_ftsa(
    builder: ScheduleBuilder, task: int, gen, reselect: bool
) -> float:
    """Place the ``ε+1`` replicas of ``task``; return the best finish time.

    With ``reselect=False`` (the paper's §4.2: "the first ε+1 processors
    that allow the minimum finish time of t are kept") all processors are
    evaluated once and the ε+1 best are committed in finish-time order,
    each commit recomputing actual times as ports fill.  ``reselect=True``
    is an enhancement that re-evaluates the remaining processors after
    every commit — a stronger baseline studied in the ablation bench.
    """
    sources = full_fanin_sources(builder, task)
    best_finish = float("inf")
    if reselect:
        for _ in range(builder.epsilon + 1):
            # each re-evaluation is a batched kernel sweep; rows whose
            # resources the previous commit did not touch come straight
            # from the epoch cache
            trials = builder.trial_batch(task, eligible_procs(builder, task), sources)
            best = argmin_trial(trials, gen)
            replica = builder.commit(task, best.proc, sources, kind="greedy")
            best_finish = min(best_finish, replica.finish)
        return best_finish

    trials = builder.trial_batch(task, eligible_procs(builder, task), sources)
    trials.sort(key=lambda t: (t.finish, t.proc))
    for trial in trials[: builder.epsilon + 1]:
        replica = builder.commit(task, trial.proc, sources, kind="greedy")
        best_finish = min(best_finish, replica.finish)
    return best_finish


def ftsa(
    instance: ProblemInstance,
    epsilon: int,
    model: ModelSpec = "oneport",
    priority: str = "tl+bl",
    dynamic: bool = True,
    reselect: bool = False,
    rng: RngLike = 0,
    fast: bool = True,
) -> Schedule:
    """Schedule ``instance`` with FTSA, tolerating ``epsilon`` failures.

    ``reselect=False`` (default) follows the paper's single-evaluation
    replica selection; ``reselect=True`` re-picks the best processor after
    each replica commit (a stronger variant, see the ablation bench).
    ``fast`` routes candidate evaluation through the vectorized placement
    kernel (bit-identical schedules).
    """
    gen = seeded(rng)
    builder = make_builder(
        instance, epsilon=epsilon, model=model, scheduler="ftsa", fast=fast
    )
    free = FreeTaskList(instance, gen, priority=priority, dynamic=dynamic)

    while free:
        task = free.pop()
        best_finish = place_task_ftsa(builder, task, gen, reselect)
        builder.mark_task_done(task)
        free.task_scheduled(task, best_finish=best_finish)

    return builder.finish()
