"""A scheduling *problem instance*: task graph + platform + execution costs.

The paper's computational heterogeneity is the function ``E : V × P → R+``;
we store it as a dense ``(v, m)`` matrix.  Bundling the three objects keeps
scheduler signatures small and lets us attach derived quantities (average
costs, granularity) in one place with caching.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.dag.graph import TaskGraph
from repro.platform.platform import Platform
from repro.utils.errors import InvalidPlatformError


class ProblemInstance:
    """Immutable bundle of ``(graph, platform, exec_cost)``.

    Parameters
    ----------
    graph:
        The task DAG.
    platform:
        The target platform.
    exec_cost:
        ``(v, m)`` matrix; ``exec_cost[t, k]`` is the paper's ``E(t, Pk)``.
        All entries must be positive and finite (a task always takes some
        time to run).
    """

    __slots__ = (
        "graph",
        "platform",
        "_exec_cost",
        "_mean_exec",
        "_min_exec",
        "_mean_edge_weight",
    )

    def __init__(self, graph: TaskGraph, platform: Platform, exec_cost: np.ndarray) -> None:
        exec_cost = np.asarray(exec_cost, dtype=float)
        expected = (graph.num_tasks, platform.num_procs)
        if exec_cost.shape != expected:
            raise InvalidPlatformError(
                f"exec_cost shape {exec_cost.shape} != (v, m) = {expected}"
            )
        if not np.all(np.isfinite(exec_cost)) or np.any(exec_cost <= 0.0):
            raise InvalidPlatformError("execution costs must be finite and > 0")
        self.graph = graph
        self.platform = platform
        self._exec_cost = exec_cost.copy()
        self._exec_cost.setflags(write=False)
        self._mean_exec: Optional[np.ndarray] = None
        self._min_exec: Optional[np.ndarray] = None
        self._mean_edge_weight: Optional[dict[tuple[int, int], float]] = None

    # ------------------------------------------------------------------
    @property
    def num_tasks(self) -> int:
        return self.graph.num_tasks

    @property
    def num_procs(self) -> int:
        return self.platform.num_procs

    @property
    def exec_cost(self) -> np.ndarray:
        """Read-only ``(v, m)`` execution-cost matrix ``E``."""
        return self._exec_cost

    def cost(self, task: int, proc: int) -> float:
        """``E(task, Pproc)``."""
        return float(self._exec_cost[task, proc])

    # ------------------------------------------------------------------
    # Averages used by priority functions (HEFT-style mean costs)
    # ------------------------------------------------------------------
    @property
    def mean_exec(self) -> np.ndarray:
        """Per-task mean execution cost over all processors (cached)."""
        if self._mean_exec is None:
            self._mean_exec = self._exec_cost.mean(axis=1)
            self._mean_exec.setflags(write=False)
        return self._mean_exec

    @property
    def min_exec(self) -> np.ndarray:
        """Per-task minimum execution cost over all processors (cached)."""
        if self._min_exec is None:
            self._min_exec = self._exec_cost.min(axis=1)
            self._min_exec.setflags(write=False)
        return self._min_exec

    def mean_edge_weight(self, u: int, v: int) -> float:
        """Average communication cost of edge ``(u, v)``.

        ``V(u, v)`` times the mean unit delay over distinct processor pairs
        — the paper's "average sum of edge weights" used in path lengths.
        """
        if self._mean_edge_weight is None:
            d_mean = self.platform.mean_delay()
            self._mean_edge_weight = {
                (a, b): vol * d_mean for a, b, vol in self.graph.edges()
            }
        return self._mean_edge_weight[(u, v)]

    def comm_cost(self, u: int, v: int, src: int, dst: int) -> float:
        """Actual cost ``W(u, v) = V(u, v) · d(Psrc, Pdst)`` (0 if same proc)."""
        if src == dst:
            return 0.0
        return self.graph.volume(u, v) * self.platform.delay(src, dst)

    def __repr__(self) -> str:
        return (
            f"ProblemInstance(v={self.num_tasks}, e={self.graph.num_edges}, "
            f"m={self.num_procs})"
        )
