"""Heterogeneous platform substrate: processors, links, costs, topologies."""

from repro.platform.platform import Platform
from repro.platform.instance import ProblemInstance
from repro.platform.topology import Topology
from repro.platform.heterogeneity import (
    uniform_delay_platform,
    sender_dependent_platform,
    range_exec_matrix,
    related_exec_matrix,
    granularity,
    scale_to_granularity,
    slowest_comm_sum,
    slowest_exec_sum,
)

__all__ = [
    "Platform",
    "ProblemInstance",
    "Topology",
    "uniform_delay_platform",
    "sender_dependent_platform",
    "range_exec_matrix",
    "related_exec_matrix",
    "granularity",
    "scale_to_granularity",
    "slowest_comm_sum",
    "slowest_exec_sum",
]
