"""Heterogeneous target platforms (the paper's ``P = {P1..Pm}``).

A :class:`Platform` is a set of ``m`` fully connected processors plus the
unit-delay matrix ``d(Pk, Ph)``: the time to ship one unit of data from
``Pk`` to ``Ph``.  ``d(P, P) = 0`` (intra-processor communication is free,
paper §2).  Sparse interconnects (paper §7 extension) are layered on top in
:mod:`repro.platform.topology` by deriving an *effective* delay matrix from
per-link delays along shortest routes.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.utils.errors import InvalidPlatformError


class Platform:
    """``m`` fully connected heterogeneous processors.

    Parameters
    ----------
    delay:
        ``(m, m)`` matrix of unit communication delays; ``delay[k, h]`` is
        the paper's ``d(Pk, Ph)``.  The diagonal must be zero and all
        entries non-negative.  The matrix need not be symmetric.
    names:
        Optional processor names (default ``"P0", "P1", ...``).
    """

    __slots__ = ("_delay", "_names")

    def __init__(self, delay: np.ndarray, names: Optional[Sequence[str]] = None) -> None:
        delay = np.asarray(delay, dtype=float)
        if delay.ndim != 2 or delay.shape[0] != delay.shape[1]:
            raise InvalidPlatformError(f"delay matrix must be square, got {delay.shape}")
        if delay.shape[0] < 1:
            raise InvalidPlatformError("a platform needs at least one processor")
        if np.any(np.diag(delay) != 0.0):
            raise InvalidPlatformError("intra-processor delay d(P, P) must be 0")
        if np.any(delay < 0.0) or not np.all(np.isfinite(delay)):
            raise InvalidPlatformError("delays must be finite and non-negative")
        self._delay = delay.copy()
        self._delay.setflags(write=False)
        m = delay.shape[0]
        if names is None:
            self._names = tuple(f"P{i}" for i in range(m))
        else:
            if len(names) != m:
                raise InvalidPlatformError("names length must equal processor count")
            self._names = tuple(str(n) for n in names)

    # ------------------------------------------------------------------
    @property
    def num_procs(self) -> int:
        """``m``, the number of processors."""
        return self._delay.shape[0]

    @property
    def names(self) -> tuple[str, ...]:
        return self._names

    @property
    def delay_matrix(self) -> np.ndarray:
        """Read-only ``(m, m)`` unit-delay matrix."""
        return self._delay

    def delay(self, src: int, dst: int) -> float:
        """Unit delay ``d(Psrc, Pdst)``; zero when ``src == dst``."""
        return float(self._delay[src, dst])

    def mean_delay(self) -> float:
        """Average unit delay over *distinct* processor pairs.

        Used for the average edge weights in priority computations
        (top/bottom levels, paper §5).  For a single-processor platform the
        mean is 0 by convention.
        """
        m = self.num_procs
        if m == 1:
            return 0.0
        off_diag_sum = float(self._delay.sum())  # diagonal is zero
        return off_diag_sum / (m * (m - 1))

    def max_delay(self) -> float:
        """Largest unit delay over distinct pairs (slowest link).

        Feeds the granularity definition ``g(G, P)`` (paper §2), which uses
        the *slowest* communication time along each edge.
        """
        if self.num_procs == 1:
            return 0.0
        return float(self._delay.max())

    # ------------------------------------------------------------------
    @classmethod
    def homogeneous(cls, num_procs: int, unit_delay: float = 1.0) -> "Platform":
        """A clique of identical links (useful for tests and examples)."""
        if num_procs < 1:
            raise InvalidPlatformError("a platform needs at least one processor")
        if unit_delay < 0:
            raise InvalidPlatformError("unit delay must be non-negative")
        d = np.full((num_procs, num_procs), float(unit_delay))
        np.fill_diagonal(d, 0.0)
        return cls(d)

    def __repr__(self) -> str:
        return f"Platform(m={self.num_procs})"
