"""Sparse interconnection topologies with static routing (paper §7 extension).

The paper's core model assumes a clique.  Its conclusion sketches the
extension to sparse interconnects: each processor owns a routing table, and
contention awareness requires that at most one message crosses a given
physical link at a time.  :class:`Topology` captures the physical graph and
precomputes deterministic shortest-delay routes; the routed communication
model (:mod:`repro.comm.routed`) then reserves every link along a route.
"""

from __future__ import annotations

import heapq
from functools import lru_cache
from typing import Callable, Iterable, Optional

import numpy as np

from repro.platform.platform import Platform
from repro.utils.errors import InvalidPlatformError

Link = tuple[int, int]


class Topology:
    """A connected physical interconnect over ``m`` processors.

    Parameters
    ----------
    num_procs:
        Number of processors.
    links:
        Iterable of ``(a, b, delay)`` physical links; ``delay`` is the unit
        delay of the link.  Links are bidirectional (full-duplex), matching
        the paper's network-interface assumptions.
    """

    def __init__(self, num_procs: int, links: Iterable[tuple[int, int, float]]) -> None:
        if num_procs < 1:
            raise InvalidPlatformError("a topology needs at least one processor")
        self.num_procs = int(num_procs)
        self._adj: list[list[tuple[int, float]]] = [[] for _ in range(num_procs)]
        self._link_delay: dict[Link, float] = {}
        for a, b, delay in links:
            a, b = int(a), int(b)
            if not (0 <= a < num_procs and 0 <= b < num_procs) or a == b:
                raise InvalidPlatformError(f"bad link ({a}, {b})")
            delay = float(delay)
            if delay <= 0:
                raise InvalidPlatformError(f"link ({a}, {b}) needs positive delay")
            key = (min(a, b), max(a, b))
            if key in self._link_delay:
                raise InvalidPlatformError(f"duplicate link {key}")
            self._link_delay[key] = delay
            self._adj[a].append((b, delay))
            self._adj[b].append((a, delay))
        self._routes = self._compute_routes()
        self._platform: Optional[Platform] = None
        self._hop_tables: Optional[tuple] = None
        self._hop_csr: Optional[tuple] = None

    # ------------------------------------------------------------------
    def _compute_routes(self) -> list[list[tuple[int, ...]]]:
        """All-pairs shortest-delay routes (Dijkstra, smallest-id tie break)."""
        m = self.num_procs
        routes: list[list[tuple[int, ...]]] = [[() for _ in range(m)] for _ in range(m)]
        for src in range(m):
            dist = [float("inf")] * m
            parent: list[Optional[int]] = [None] * m
            dist[src] = 0.0
            heap: list[tuple[float, int]] = [(0.0, src)]
            visited = [False] * m
            while heap:
                d, node = heapq.heappop(heap)
                if visited[node]:
                    continue
                visited[node] = True
                for nxt, w in sorted(self._adj[node]):
                    nd = d + w
                    if nd < dist[nxt] - 1e-15:
                        dist[nxt] = nd
                        parent[nxt] = node
                        heapq.heappush(heap, (nd, nxt))
            for dst in range(m):
                if dst == src:
                    routes[src][dst] = (src,)
                    continue
                if not visited[dst]:
                    raise InvalidPlatformError(
                        f"topology is disconnected: no route {src} -> {dst}"
                    )
                path = [dst]
                while path[-1] != src:
                    prev = parent[path[-1]]
                    assert prev is not None
                    path.append(prev)
                routes[src][dst] = tuple(reversed(path))
        return routes

    # ------------------------------------------------------------------
    def link_delay(self, a: int, b: int) -> float:
        """Unit delay of the physical link between ``a`` and ``b``."""
        try:
            return self._link_delay[(min(a, b), max(a, b))]
        except KeyError:
            raise InvalidPlatformError(f"no physical link ({a}, {b})") from None

    def links(self) -> tuple[Link, ...]:
        """All physical links as ordered ``(min, max)`` pairs."""
        return tuple(self._link_delay)

    def route(self, src: int, dst: int) -> tuple[int, ...]:
        """Processor path from ``src`` to ``dst`` (inclusive)."""
        return self._routes[src][dst]

    def route_links(self, src: int, dst: int) -> tuple[Link, ...]:
        """Physical links crossed by the ``src -> dst`` route."""
        path = self._routes[src][dst]
        return tuple((min(a, b), max(a, b)) for a, b in zip(path, path[1:]))

    def effective_delay_matrix(self) -> np.ndarray:
        """End-to-end unit delays: sum of link delays along each route."""
        m = self.num_procs
        d = np.zeros((m, m))
        for src in range(m):
            for dst in range(m):
                if src != dst:
                    d[src, dst] = sum(
                        self.link_delay(a, b) for a, b in self.route_links(src, dst)
                    )
        return d

    def to_platform(self) -> Platform:
        """A :class:`Platform` whose delays are the end-to-end route delays.

        Cached: the topology is immutable and every clone of a routed
        network (one per crash-replay scenario) asks for it again.
        """
        if self._platform is None:
            self._platform = Platform(self.effective_delay_matrix())
        return self._platform

    def directed_hop_tables(self) -> tuple[dict[tuple[int, int], int], list]:
        """Directed-hop ids and per-pair hop routes (cached).

        Returns ``(hop_id, route_hops)`` where ``hop_id[(a, b)]`` numbers
        each directed physical link and ``route_hops[src][dst]`` is the
        tuple of hop ids the ``src -> dst`` route crosses.  Shared by
        every routed network over this topology — clones only need fresh
        frontier lists, not a rebuild of the routing tables.
        """
        if self._hop_tables is None:
            hop_id: dict[tuple[int, int], int] = {}
            for a, b in self.links():
                hop_id[(a, b)] = len(hop_id)
                hop_id[(b, a)] = len(hop_id)
            m = self.num_procs
            route_hops = [
                [
                    tuple(
                        hop_id[(a, b)]
                        for a, b in zip(self.route(s, d), self.route(s, d)[1:])
                    )
                    for d in range(m)
                ]
                for s in range(m)
            ]
            self._hop_tables = (hop_id, route_hops)
        return self._hop_tables

    def hop_csr(self) -> tuple[np.ndarray, np.ndarray]:
        """``route_hops`` flattened to CSR ``(indptr, hop_ids)`` (cached).

        Row ``src * m + dst`` spans the directed hop ids of the
        ``src -> dst`` route (empty on the diagonal).  The vectorized
        route-aware evaluator turns the per-pair hop maximum into one
        ``np.maximum.reduceat`` over this layout; caching it here (the
        topology is immutable) means routed-network clones share it.
        """
        if self._hop_csr is None:
            _hop_id, route_hops = self.directed_hop_tables()
            indptr = [0]
            ids: list[int] = []
            for row in route_hops:
                for hops in row:
                    ids.extend(hops)
                    indptr.append(len(ids))
            self._hop_csr = (
                np.asarray(indptr, dtype=np.int64),
                np.asarray(ids, dtype=np.int64),
            )
        return self._hop_csr

    # ------------------------------------------------------------------
    # Standard shapes
    # ------------------------------------------------------------------
    @classmethod
    def clique(cls, m: int, delay: float = 1.0) -> "Topology":
        return cls(m, [(a, b, delay) for a in range(m) for b in range(a + 1, m)])

    @classmethod
    def ring(cls, m: int, delay: float = 1.0) -> "Topology":
        if m < 3:
            raise InvalidPlatformError("a ring needs at least 3 processors")
        return cls(m, [(i, (i + 1) % m, delay) for i in range(m)])

    @classmethod
    def line(cls, m: int, delay: float = 1.0) -> "Topology":
        if m < 2:
            raise InvalidPlatformError("a line needs at least 2 processors")
        return cls(m, [(i, i + 1, delay) for i in range(m - 1)])

    @classmethod
    def star(cls, m: int, delay: float = 1.0) -> "Topology":
        if m < 2:
            raise InvalidPlatformError("a star needs at least 2 processors")
        return cls(m, [(0, i, delay) for i in range(1, m)])

    @classmethod
    def mesh2d(cls, rows: int, cols: int, delay: float = 1.0) -> "Topology":
        if rows < 1 or cols < 1 or rows * cols < 2:
            raise InvalidPlatformError("mesh needs at least 2 processors")
        links = []
        for r in range(rows):
            for c in range(cols):
                node = r * cols + c
                if c + 1 < cols:
                    links.append((node, node + 1, delay))
                if r + 1 < rows:
                    links.append((node, node + cols, delay))
        return cls(rows * cols, links)

    @classmethod
    def torus(cls, rows: int, cols: int, delay: float = 1.0) -> "Topology":
        """2D mesh with wraparound links in both dimensions.

        A dimension of size 2 already connects its endpoints (the wrap
        link would duplicate the mesh link) and a dimension of size 1
        has no links at all, so wraps are added only for sizes ≥ 3 —
        a ``1 × m`` torus degenerates to a ring, a ``2 × 2`` torus to
        the square mesh.
        """
        if rows < 1 or cols < 1 or rows * cols < 3:
            raise InvalidPlatformError("a torus needs at least 3 processors")
        links = []
        for r in range(rows):
            for c in range(cols):
                node = r * cols + c
                if c + 1 < cols:
                    links.append((node, node + 1, delay))
                if r + 1 < rows:
                    links.append((node, node + cols, delay))
            if cols >= 3:
                links.append((r * cols + cols - 1, r * cols, delay))
        if rows >= 3:
            for c in range(cols):
                links.append(((rows - 1) * cols + c, c, delay))
        return cls(rows * cols, links)

    @classmethod
    def fat_tree(cls, pods: int, pod_size: int, delay: float = 1.0) -> "Topology":
        """Processor-level fat-tree: pods of processors over a core fabric.

        Pod ``p`` holds processors ``[p * pod_size, (p + 1) * pod_size)``
        as a clique of intra-pod links (one ToR/leaf hop); the first
        processor of each pod doubles as the pod's uplink, and the
        uplinks form a clique modelling the aggregation/core fabric —
        switches are not modelled as nodes, their traversal is folded
        into link delays, matching the torus/star convention.  Routes
        are therefore 1 hop intra-pod and at most 3 hops (member →
        uplink → uplink → member) across pods, the rearrangeable
        full-bisection property fat-tree/Clos fabrics are built for.

        Closed-form metrics (validated in the tests against the
        Benes/Clos characterization): ``pods * pod_size`` nodes,
        ``pods * C(pod_size, 2) + C(pods, 2)`` links, hop-diameter
        ``min(3, ...)`` and route delay at most ``3 * delay``.
        """
        if pods < 1 or pod_size < 1 or pods * pod_size < 2:
            raise InvalidPlatformError(
                "a fat-tree needs at least 2 processors"
            )
        links = []
        for p in range(pods):
            base = p * pod_size
            links.extend(
                (base + a, base + b, delay)
                for a in range(pod_size)
                for b in range(a + 1, pod_size)
            )
        links.extend(
            (a * pod_size, b * pod_size, delay)
            for a in range(pods)
            for b in range(a + 1, pods)
        )
        return cls(pods * pod_size, links)

    def __repr__(self) -> str:
        return f"Topology(m={self.num_procs}, links={len(self._link_delay)})"


# ----------------------------------------------------------------------
# Topology registry (campaign/CLI sweeps over standard shapes)
# ----------------------------------------------------------------------
def _grid_dims(m: int) -> tuple[int, int]:
    """Most-square ``rows x cols`` factorization of ``m`` (rows <= cols)."""
    rows = int(m**0.5)
    while rows > 1 and m % rows:
        rows -= 1
    return rows, m // rows


TOPOLOGY_BUILDERS: dict[str, Callable[[int, float], Topology]] = {
    "clique": lambda m, delay: Topology.clique(m, delay),
    "ring": lambda m, delay: Topology.ring(m, delay),
    "line": lambda m, delay: Topology.line(m, delay),
    "star": lambda m, delay: Topology.star(m, delay),
    "mesh": lambda m, delay: Topology.mesh2d(*_grid_dims(m), delay),
    "torus": lambda m, delay: Topology.torus(*_grid_dims(m), delay),
}


def topology_names() -> tuple[str, ...]:
    """Registered topology shape names (CLI/campaign ``--topology``)."""
    return tuple(sorted(TOPOLOGY_BUILDERS))


def register_topology(
    name: str,
    builder: Callable[[int, float], Topology],
    *,
    overwrite: bool = False,
) -> Callable[[int, float], Topology]:
    """Register a topology shape builder under ``name``.

    ``builder(num_procs, delay)`` must return a :class:`Topology`;
    registered shapes become valid ``--topology`` / spec values for
    routed campaigns.  Returns ``builder`` so it can be a decorator.
    """
    from repro.utils.registry import check_registration

    check_registration("topology", name, name in TOPOLOGY_BUILDERS, overwrite)
    TOPOLOGY_BUILDERS[name] = builder
    make_topology.cache_clear()
    return builder


@lru_cache(maxsize=64)
def make_topology(name: str, num_procs: int, delay: float = 1.0) -> Topology:
    """Instantiate a standard topology shape by name over ``num_procs``.

    Grid shapes (``mesh``, ``torus``) use the most-square factorization
    of ``num_procs``; a prime count degenerates to a line / ring.
    Results are memoized — a :class:`Topology` is immutable after
    construction and campaign reps re-request the same shape thousands
    of times just to enumerate its links, so the all-pairs route
    computation runs once per shape instead of once per rep.
    """
    try:
        build = TOPOLOGY_BUILDERS[name]
    except KeyError:
        raise InvalidPlatformError(
            f"unknown topology {name!r}; choose from {topology_names()}"
        ) from None
    return build(num_procs, delay)


if "fat-tree" not in TOPOLOGY_BUILDERS:
    # Registered through the public hook (not the builtin dict) as the
    # reference for out-of-tree shapes; pods x pod_size comes from the
    # most-square factorization like the grid shapes.
    register_topology(
        "fat-tree", lambda m, delay: Topology.fat_tree(*_grid_dims(m), delay)
    )


def topology_groups(name: str, num_procs: int) -> Optional[list[tuple[int, ...]]]:
    """Natural failure domains of a topology shape (``None`` = no grouping).

    The processor groups a single rack/switch event takes down together:
    fat-tree pods share their uplink and torus/mesh rows share a
    dimension, so each is one correlated-failure domain
    (``failure_model.kind = "topology"`` builds on this).  Shapes
    without shared infrastructure (clique, ring, line, star) have no
    natural grouping.
    """
    if name == "fat-tree":
        pods, pod_size = _grid_dims(num_procs)
        return [
            tuple(range(p * pod_size, (p + 1) * pod_size))
            for p in range(pods)
        ]
    if name in ("mesh", "torus"):
        rows, cols = _grid_dims(num_procs)
        return [
            tuple(range(r * cols, (r + 1) * cols)) for r in range(rows)
        ]
    return None


def randomize_link_delays(
    topology: Topology,
    delay_range: tuple[float, float],
    rng: np.random.Generator,
) -> Topology:
    """A copy of ``topology`` with per-link delays drawn uniformly.

    Campaign instances draw their unit delays from ``delay_range`` (the
    paper's ``[0.5, 1]``); for routed platforms the draw happens per
    physical link, in the deterministic ``links()`` order, so the result
    is a pure function of the topology and the seeded generator.
    """
    lo, hi = delay_range
    return Topology(
        topology.num_procs,
        [(a, b, float(rng.uniform(lo, hi))) for a, b in topology.links()],
    )
