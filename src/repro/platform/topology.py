"""Sparse interconnection topologies with static routing (paper §7 extension).

The paper's core model assumes a clique.  Its conclusion sketches the
extension to sparse interconnects: each processor owns a routing table, and
contention awareness requires that at most one message crosses a given
physical link at a time.  :class:`Topology` captures the physical graph and
precomputes deterministic shortest-delay routes; the routed communication
model (:mod:`repro.comm.routed`) then reserves every link along a route.
"""

from __future__ import annotations

import heapq
from typing import Iterable, Optional

import numpy as np

from repro.platform.platform import Platform
from repro.utils.errors import InvalidPlatformError

Link = tuple[int, int]


class Topology:
    """A connected physical interconnect over ``m`` processors.

    Parameters
    ----------
    num_procs:
        Number of processors.
    links:
        Iterable of ``(a, b, delay)`` physical links; ``delay`` is the unit
        delay of the link.  Links are bidirectional (full-duplex), matching
        the paper's network-interface assumptions.
    """

    def __init__(self, num_procs: int, links: Iterable[tuple[int, int, float]]) -> None:
        if num_procs < 1:
            raise InvalidPlatformError("a topology needs at least one processor")
        self.num_procs = int(num_procs)
        self._adj: list[list[tuple[int, float]]] = [[] for _ in range(num_procs)]
        self._link_delay: dict[Link, float] = {}
        for a, b, delay in links:
            a, b = int(a), int(b)
            if not (0 <= a < num_procs and 0 <= b < num_procs) or a == b:
                raise InvalidPlatformError(f"bad link ({a}, {b})")
            delay = float(delay)
            if delay <= 0:
                raise InvalidPlatformError(f"link ({a}, {b}) needs positive delay")
            key = (min(a, b), max(a, b))
            if key in self._link_delay:
                raise InvalidPlatformError(f"duplicate link {key}")
            self._link_delay[key] = delay
            self._adj[a].append((b, delay))
            self._adj[b].append((a, delay))
        self._routes = self._compute_routes()

    # ------------------------------------------------------------------
    def _compute_routes(self) -> list[list[tuple[int, ...]]]:
        """All-pairs shortest-delay routes (Dijkstra, smallest-id tie break)."""
        m = self.num_procs
        routes: list[list[tuple[int, ...]]] = [[() for _ in range(m)] for _ in range(m)]
        for src in range(m):
            dist = [float("inf")] * m
            parent: list[Optional[int]] = [None] * m
            dist[src] = 0.0
            heap: list[tuple[float, int]] = [(0.0, src)]
            visited = [False] * m
            while heap:
                d, node = heapq.heappop(heap)
                if visited[node]:
                    continue
                visited[node] = True
                for nxt, w in sorted(self._adj[node]):
                    nd = d + w
                    if nd < dist[nxt] - 1e-15:
                        dist[nxt] = nd
                        parent[nxt] = node
                        heapq.heappush(heap, (nd, nxt))
            for dst in range(m):
                if dst == src:
                    routes[src][dst] = (src,)
                    continue
                if not visited[dst]:
                    raise InvalidPlatformError(
                        f"topology is disconnected: no route {src} -> {dst}"
                    )
                path = [dst]
                while path[-1] != src:
                    prev = parent[path[-1]]
                    assert prev is not None
                    path.append(prev)
                routes[src][dst] = tuple(reversed(path))
        return routes

    # ------------------------------------------------------------------
    def link_delay(self, a: int, b: int) -> float:
        """Unit delay of the physical link between ``a`` and ``b``."""
        try:
            return self._link_delay[(min(a, b), max(a, b))]
        except KeyError:
            raise InvalidPlatformError(f"no physical link ({a}, {b})") from None

    def links(self) -> tuple[Link, ...]:
        """All physical links as ordered ``(min, max)`` pairs."""
        return tuple(self._link_delay)

    def route(self, src: int, dst: int) -> tuple[int, ...]:
        """Processor path from ``src`` to ``dst`` (inclusive)."""
        return self._routes[src][dst]

    def route_links(self, src: int, dst: int) -> tuple[Link, ...]:
        """Physical links crossed by the ``src -> dst`` route."""
        path = self._routes[src][dst]
        return tuple((min(a, b), max(a, b)) for a, b in zip(path, path[1:]))

    def effective_delay_matrix(self) -> np.ndarray:
        """End-to-end unit delays: sum of link delays along each route."""
        m = self.num_procs
        d = np.zeros((m, m))
        for src in range(m):
            for dst in range(m):
                if src != dst:
                    d[src, dst] = sum(
                        self.link_delay(a, b) for a, b in self.route_links(src, dst)
                    )
        return d

    def to_platform(self) -> Platform:
        """A :class:`Platform` whose delays are the end-to-end route delays."""
        return Platform(self.effective_delay_matrix())

    # ------------------------------------------------------------------
    # Standard shapes
    # ------------------------------------------------------------------
    @classmethod
    def clique(cls, m: int, delay: float = 1.0) -> "Topology":
        return cls(m, [(a, b, delay) for a in range(m) for b in range(a + 1, m)])

    @classmethod
    def ring(cls, m: int, delay: float = 1.0) -> "Topology":
        if m < 3:
            raise InvalidPlatformError("a ring needs at least 3 processors")
        return cls(m, [(i, (i + 1) % m, delay) for i in range(m)])

    @classmethod
    def line(cls, m: int, delay: float = 1.0) -> "Topology":
        if m < 2:
            raise InvalidPlatformError("a line needs at least 2 processors")
        return cls(m, [(i, i + 1, delay) for i in range(m - 1)])

    @classmethod
    def star(cls, m: int, delay: float = 1.0) -> "Topology":
        if m < 2:
            raise InvalidPlatformError("a star needs at least 2 processors")
        return cls(m, [(0, i, delay) for i in range(1, m)])

    @classmethod
    def mesh2d(cls, rows: int, cols: int, delay: float = 1.0) -> "Topology":
        if rows < 1 or cols < 1 or rows * cols < 2:
            raise InvalidPlatformError("mesh needs at least 2 processors")
        links = []
        for r in range(rows):
            for c in range(cols):
                node = r * cols + c
                if c + 1 < cols:
                    links.append((node, node + 1, delay))
                if r + 1 < rows:
                    links.append((node, node + cols, delay))
        return cls(rows * cols, links)

    def __repr__(self) -> str:
        return f"Topology(m={self.num_procs}, links={len(self._link_delay)})"
