"""Generators for heterogeneous platforms and execution-cost matrices.

These implement the parameter conventions of the paper's §6: unit link
delays drawn uniformly (default ``[0.5, 1]``), per-task base costs spread
across processors by a range-based heterogeneity factor, and exact scaling
of the execution matrix so the instance hits a prescribed granularity
``g(G, P)``.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.dag.graph import TaskGraph
from repro.platform.platform import Platform
from repro.utils.errors import InvalidPlatformError
from repro.utils.rng import RngLike, as_rng


def uniform_delay_platform(
    num_procs: int,
    delay_range: tuple[float, float] = (0.5, 1.0),
    rng: RngLike = None,
    symmetric: bool = True,
) -> Platform:
    """A clique whose unit delays are i.i.d. uniform in ``delay_range``.

    ``symmetric=True`` (default) makes ``d(Pk, Ph) = d(Ph, Pk)``, matching
    the paper's undirected links; set it to ``False`` for direction-dependent
    bandwidth experiments.
    """
    lo, hi = delay_range
    if not (0 <= lo <= hi):
        raise InvalidPlatformError(f"bad delay range {delay_range}")
    gen = as_rng(rng)
    d = gen.uniform(lo, hi, size=(num_procs, num_procs))
    if symmetric:
        d = np.triu(d, k=1)
        d = d + d.T
    np.fill_diagonal(d, 0.0)
    return Platform(d)


def sender_dependent_platform(
    num_procs: int,
    rate_range: tuple[float, float] = (0.5, 1.0),
    rng: RngLike = None,
) -> Platform:
    """The simpler model of Banikazemi / Liu / Khuller-Kim (paper §3).

    "In this simpler model, the communication time only depends on the
    sender, not on the receiver: the communication speed from a processor
    to all its neighbors is the same."  Each processor ``Pk`` gets one
    outgoing unit delay applied to every destination.
    """
    lo, hi = rate_range
    if not (0 <= lo <= hi):
        raise InvalidPlatformError(f"bad rate range {rate_range}")
    gen = as_rng(rng)
    rates = gen.uniform(lo, hi, size=num_procs)
    d = np.repeat(rates[:, None], num_procs, axis=1)
    np.fill_diagonal(d, 0.0)
    return Platform(d)


def range_exec_matrix(
    base_costs: np.ndarray,
    num_procs: int,
    heterogeneity: float = 0.5,
    rng: RngLike = None,
) -> np.ndarray:
    """Range-based unrelated-machine cost matrix (Topcuoglu et al. style).

    ``E[t, k] = w_t · u`` with ``u ~ U[1 - h/2, 1 + h/2]``; ``h = 0`` gives
    identical processors, ``h`` close to 2 gives wildly unrelated ones.
    """
    if not (0.0 <= heterogeneity < 2.0):
        raise InvalidPlatformError("heterogeneity must be in [0, 2)")
    base = np.asarray(base_costs, dtype=float)
    if base.ndim != 1 or np.any(base <= 0):
        raise InvalidPlatformError("base costs must be a 1-D positive vector")
    gen = as_rng(rng)
    factors = gen.uniform(1.0 - heterogeneity / 2.0, 1.0 + heterogeneity / 2.0,
                          size=(base.size, num_procs))
    return base[:, None] * factors


def related_exec_matrix(base_costs: np.ndarray, speeds: np.ndarray) -> np.ndarray:
    """Uniformly related machines: ``E[t, k] = w_t / speed_k``."""
    base = np.asarray(base_costs, dtype=float)
    spd = np.asarray(speeds, dtype=float)
    if np.any(spd <= 0):
        raise InvalidPlatformError("speeds must be positive")
    if np.any(base <= 0):
        raise InvalidPlatformError("base costs must be positive")
    return base[:, None] / spd[None, :]


def slowest_comm_sum(graph: TaskGraph, platform: Platform) -> float:
    """Denominator of ``g(G, P)``: sum over edges of slowest comm time."""
    d_max = platform.max_delay()
    return d_max * sum(vol for _u, _v, vol in graph.edges())


def slowest_exec_sum(exec_cost: np.ndarray) -> float:
    """Numerator of ``g(G, P)``: sum over tasks of slowest execution time."""
    return float(np.asarray(exec_cost).max(axis=1).sum())


def granularity(graph: TaskGraph, platform: Platform, exec_cost: np.ndarray) -> float:
    """The paper's granularity ``g(G, P)`` (§2).

    Ratio of the sum of *slowest* computation times of each task to the sum
    of *slowest* communication times along each edge.  ``g >= 1`` means a
    coarse-grain application.  Raises for graphs without edges (undefined).
    """
    denom = slowest_comm_sum(graph, platform)
    if denom <= 0.0:
        raise InvalidPlatformError(
            "granularity is undefined: the graph has no (positive-volume) edges"
        )
    return slowest_exec_sum(exec_cost) / denom


def scale_to_granularity(
    graph: TaskGraph,
    platform: Platform,
    exec_cost: np.ndarray,
    target: float,
) -> np.ndarray:
    """Rescale ``exec_cost`` multiplicatively so ``g(G, P) == target``.

    Because ``g`` is linear in the execution matrix, a single scalar factor
    achieves the target exactly; communication volumes and delays are left
    untouched.
    """
    if target <= 0:
        raise InvalidPlatformError("target granularity must be positive")
    current = granularity(graph, platform, exec_cost)
    return np.asarray(exec_cost, dtype=float) * (target / current)
