"""Command-line front end: a thin shell over campaign specs.

The campaign-shaped commands (``figure``, ``campaign run/resume``) all
work the same way: load a :class:`~repro.experiments.api.CampaignSpec`
(a shipped figure spec, or any ``.json``/``.toml`` file), overlay the
explicit flags and ``--override KEY=VALUE`` pairs onto it, and hand the
result to :class:`~repro.experiments.api.Campaign`.  Invalid
configurations raise the same
:class:`~repro.utils.errors.CampaignConfigError` the API raises; the
CLI prints it and exits 2.

Examples
--------
Regenerate a figure's data (CSV + paper-style panels)::

    repro-ftsched figure 1 --graphs 10 --out results/fig1.csv

Run a campaign from a spec file, overriding one key::

    repro-ftsched campaign run spec.json --override graphs=60

Schedule a demo workload and show the Gantt chart::

    repro-ftsched demo --workload gaussian_elimination --epsilon 1

Check Proposition 5.1 message bounds on random out-forests::

    repro-ftsched prop51 --epsilon 2 --trials 20
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import Callable, Optional

import numpy as np

from repro.core.caft import caft
from repro.dag.generators import random_out_forest
from repro.dag.workloads import ALL_WORKLOADS
from repro.experiments.api import (
    Campaign,
    CampaignSpec,
    apply_overrides,
    figure_spec,
    parse_override,
)
from repro.experiments.config import FIGURES, PORT_POLICIES
from repro.experiments.figures import check_shape
from repro.experiments.registry import executor_names, network_names, topology_names
from repro.experiments.report import render_figure, write_csv
from repro.fault.model import FailureScenario
from repro.fault.scenarios import random_crash_scenario
from repro.fault.simulator import replay
from repro.platform.heterogeneity import (
    range_exec_matrix,
    scale_to_granularity,
    uniform_delay_platform,
)
from repro.platform.instance import ProblemInstance
from repro.schedule.gantt import render_gantt
from repro.schedule.metrics import summarize
from repro.schedulers.ftbar import ftbar
from repro.schedulers.ftsa import ftsa
from repro.schedulers.heft import heft
from repro.utils.errors import CampaignConfigError


def _progress_fn(args: argparse.Namespace) -> Optional[Callable]:
    if not args.verbose:
        return None
    return lambda event: print(str(event), file=sys.stderr)


def _scenario_overrides(args: argparse.Namespace) -> dict:
    """Spec overrides from the scenario flags the user actually gave."""
    overrides: dict = {}
    if getattr(args, "graphs", None) is not None:
        overrides["graphs"] = args.graphs
    if getattr(args, "slow", False):
        overrides["fast"] = False
    for flag in ("network", "topology", "policy"):
        value = getattr(args, flag, None)
        if value is not None:
            overrides[flag] = value
    return overrides


def _executor_overrides(args: argparse.Namespace) -> dict:
    """Spec overrides from the executor/store flags the user gave."""
    overrides: dict = {}
    if getattr(args, "executor", None):
        overrides["executor.kind"] = args.executor
    if getattr(args, "workers", None) is not None:
        overrides["executor.workers"] = args.workers
    if getattr(args, "bind", None) is not None:
        overrides["executor.bind"] = f"{args.bind[0]}:{args.bind[1]}"
    if getattr(args, "spawn_workers", 0):
        overrides["executor.spawn_workers"] = args.spawn_workers
    if getattr(args, "timeout", None) is not None:
        overrides["executor.timeout"] = args.timeout
    if getattr(args, "speculate", None) is not None:
        overrides["executor.speculate"] = args.speculate
    if getattr(args, "steal", None) is not None:
        overrides["executor.steal"] = args.steal
    if getattr(args, "lease", None) is not None:
        overrides["lease"] = args.lease
    if getattr(args, "store", None):
        overrides["store.directory"] = args.store
    if getattr(args, "store_backend", None):
        overrides["store.backend"] = args.store_backend
    return overrides


def _default_to_process(overrides: dict, base_kind: str) -> dict:
    """The historical default: --workers N without --executor means a
    local process pool, not N ignored workers on the serial path."""
    if (
        "executor.kind" not in overrides
        and base_kind == "serial"
        and (overrides.get("executor.workers") or 0) > 1
    ):
        overrides["executor.kind"] = "process"
    return overrides


def _spec_from_args(args: argparse.Namespace, spec: CampaignSpec) -> CampaignSpec:
    """Overlay flags, defaults, and ``--override`` pairs onto ``spec``.

    Precedence (lowest to highest): the spec file, explicit flags,
    ``--override KEY=VALUE`` pairs — overriding a spec file and editing
    it are equivalent, with identical validation.
    """
    overrides = _default_to_process(
        {**_scenario_overrides(args), **_executor_overrides(args)},
        spec.executor.kind,
    )
    spec = apply_overrides(spec, overrides)
    pairs = [parse_override(text) for text in getattr(args, "override", None) or []]
    return apply_overrides(spec, dict(pairs))


def _load_target_spec(target: str) -> CampaignSpec:
    """Resolve a campaign target: a paper figure number or a spec file."""
    if target.isdigit():
        return figure_spec(int(target))
    path = Path(target)
    if path.suffix in (".json", ".toml"):
        return CampaignSpec.load(path)
    raise CampaignConfigError(
        f"campaign target {target!r} is neither a figure number "
        f"({min(FIGURES)}-{max(FIGURES)}) nor a spec file (.json/.toml)",
        key="target",
    )


def _cmd_figure(args: argparse.Namespace) -> int:
    t0 = time.perf_counter()
    spec = _spec_from_args(args, figure_spec(args.number))
    handle = Campaign(spec).run(progress=_progress_fn(args))
    if args.html:
        from repro.experiments.svg import write_html_report

        # one report per scenario, tagged like the CSV files, so a
        # multi-scenario --override campaign never loses scenarios
        multi = len(handle.results) > 1
        for result in handle.results:
            path = write_html_report(
                result, _scenario_out_path(args.html, result, multi)
            )
            print(f"wrote {path}")
    return _report_results(handle.results, args, t0)


def _parse_address(spec: str) -> tuple[str, int]:
    from repro.experiments.executors import parse_bind

    try:
        return parse_bind(spec)
    except CampaignConfigError:
        raise argparse.ArgumentTypeError(
            f"expected HOST:PORT, got {spec!r}"
        ) from None


def _report_campaign(result, args: argparse.Namespace, out=None) -> int:
    if result.config.arrival is not None:
        from repro.experiments.online import check_online_shape
        from repro.experiments.report import render_online

        print(render_online(result))
        shape = check_online_shape(result)
    else:
        print(render_figure(result))
        shape = check_shape(result)
    print(f"shape checks: {'OK' if shape.ok else 'FAILED ' + str(shape.failed())}")
    if out is None:
        out = args.out
    if out:
        path = write_csv(result, out)
        print(f"wrote {path}")
    return 0 if shape.ok else 1


def _scenario_out_path(base: str, result, multi: bool) -> str:
    """Per-scenario output path (CSV/HTML): one scenario keeps ``base``
    untouched, a multi-scenario campaign gets a scenario-tagged file
    each so no scenario's output overwrites another's."""
    if not multi:
        return base
    from pathlib import Path

    _, model, topology, policy = result.config.scenario_key()
    tag = "-".join((model, topology, policy))
    path = Path(base)
    return str(path.with_name(f"{path.stem}.{tag}{path.suffix}"))


def _report_results(results, args: argparse.Namespace, t0: float) -> int:
    rc = 0
    multi = len(results) > 1
    for result in results:
        out = _scenario_out_path(args.out, result, multi) if args.out else None
        rc = max(rc, _report_campaign(result, args, out=out))
    print(f"elapsed: {time.perf_counter() - t0:.1f}s")
    return rc


def _announce_master(address: tuple[str, int]) -> None:
    host, port = address
    print(
        f"master listening on {host}:{port} — connect workers "
        f"with: repro-ftsched campaign worker {host}:{port}",
        file=sys.stderr,
        flush=True,
    )


def _cli_executor(spec: CampaignSpec):
    """Pre-build the spec's executor when the CLI needs its hooks.

    The socket master announces its address only once it is bound, via
    ``on_listen`` — so ``--bind host:0`` prints the ephemeral port the
    OS actually picked, which is the address workers must be pointed
    at (the requested ``:0`` is unconnectable).  Every other kind
    returns ``None`` and lets :class:`Campaign` build as usual.
    """
    if spec.executor.kind != "socket":
        return None
    executor = spec.executor.build(spec.lease)
    executor.on_listen = _announce_master
    return executor


def _cmd_campaign_run(args: argparse.Namespace) -> int:
    t0 = time.perf_counter()
    spec = _spec_from_args(args, _load_target_spec(args.target))
    handle = Campaign(spec).run(
        progress=_progress_fn(args),
        resume=args.resume,
        executor=_cli_executor(spec),
    )
    return _report_results(handle.results, args, t0)


def _cmd_campaign_resume(args: argparse.Namespace) -> int:
    t0 = time.perf_counter()
    target = Path(args.target)
    if target.suffix in (".json", ".toml"):
        # Resume straight from the spec that created the campaign: the
        # store directory is part of the spec, nothing else is needed.
        spec = _spec_from_args(args, CampaignSpec.load(target))
        handle = Campaign(spec).resume(
            progress=_progress_fn(args), executor=_cli_executor(spec)
        )
        return _report_results(handle.results, args, t0)

    # A bare store directory: the manifest records the grid; executor
    # and lease come from the flags alone, through the same flag->spec
    # mapping the spec-file path uses.
    if args.override:
        raise CampaignConfigError(
            "--override needs a spec-file target (a bare store directory "
            "has no spec to override); resume from the campaign's "
            ".json/.toml file instead",
            key="override",
        )
    from repro.experiments.api import ExecutorSpec
    from repro.experiments.campaign import resume_campaign
    from repro.experiments.executors import LeasePolicy

    flags = _default_to_process(_executor_overrides(args), "serial")
    lease = flags.get("lease")
    try:
        LeasePolicy.from_spec(lease)
    except ValueError as exc:
        raise CampaignConfigError(
            f"bad 'lease' (--lease): {exc}", key="lease"
        ) from None
    executor_spec = ExecutorSpec.from_dict(
        {
            key.split(".", 1)[1]: value
            for key, value in flags.items()
            if key.startswith("executor.")
        }
    )
    executor = executor_spec.build(lease)
    if executor_spec.kind == "socket":
        executor.on_listen = _announce_master
    results = resume_campaign(
        args.target,
        executor=executor,
        progress=_progress_fn(args),
    )
    return _report_results(results, args, t0)


def _cmd_campaign_worker(args: argparse.Namespace) -> int:
    from repro.experiments.executors import run_worker

    host, port = args.master
    return run_worker(
        host,
        port,
        max_units=args.max_units,
        heartbeat=args.heartbeat,
        verbose=args.verbose,
        wedge_after=args.wedge_after,
        slow_factor=args.slow_factor,
        die_after=args.die_after,
        ignore_revoke=args.ignore_revoke,
    )


def _cmd_service_start(args: argparse.Namespace) -> int:
    import signal

    from repro.experiments.service import CampaignService

    host, port = args.bind if args.bind else ("127.0.0.1", 0)
    service = CampaignService(
        args.root,
        host=host,
        port=port,
        spawn_workers=args.workers,
        heartbeat=args.heartbeat,
        lease=args.lease,
        speculate=args.speculate,
        steal=args.steal,
        job_ttl=args.job_ttl,
    )
    bound_host, bound_port = service.start()
    # The *bound* address, never the requested one: --bind host:0 asks
    # the OS for an ephemeral port, and that port is what clients and
    # external workers must be given.
    print(
        f"service listening on {bound_host}:{bound_port} "
        f"(root {args.root}) — submit with: repro-ftsched service "
        f"submit SPEC --address {bound_host}:{bound_port}",
        flush=True,
    )
    signal.signal(signal.SIGTERM, lambda *_: service.request_stop())
    try:
        service.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        service.stop()
    return 0


def _cmd_service_gc(args: argparse.Namespace) -> int:
    from repro.experiments.service import gc_job_dirs

    removed = gc_job_dirs(args.root, args.job_ttl)
    for job_id in removed:
        print(f"removed {job_id}")
    print(f"pruned {len(removed)} terminal job dir(s) older than "
          f"{args.job_ttl:g}s under {args.root}/jobs")
    return 0


def _service_client(args: argparse.Namespace):
    from repro.experiments.service import ServiceClient

    host, port = args.address
    return ServiceClient((host, port))


def _print_job(snap: dict) -> None:
    line = (
        f"{snap['job_id']}  {snap['state']:<9}  "
        f"{snap['done']}/{snap['total']}  tenant={snap['tenant']} "
        f"priority={snap['priority']}"
    )
    if snap.get("error"):
        line += f"  error: {snap['error']}"
    print(line)


def _cmd_service_submit(args: argparse.Namespace) -> int:
    spec = _load_target_spec(args.target)
    pairs = [parse_override(text) for text in args.override or []]
    spec = apply_overrides(spec, dict(pairs))
    client = _service_client(args)
    snap = client.submit(spec, tenant=args.tenant, priority=args.priority)
    _print_job(snap)
    if args.wait:
        snap = client.wait(snap["job_id"])
        _print_job(snap)
        return 0 if snap["state"] == "done" else 1
    return 0


def _cmd_service_status(args: argparse.Namespace) -> int:
    snap = _service_client(args).status(args.job)
    _print_job(snap)
    return 0 if snap["state"] in ("running", "done") else 1


def _cmd_service_jobs(args: argparse.Namespace) -> int:
    for snap in _service_client(args).jobs():
        _print_job(snap)
    return 0


def _cmd_service_cancel(args: argparse.Namespace) -> int:
    _print_job(_service_client(args).cancel(args.job))
    return 0


def _cmd_demo(args: argparse.Namespace) -> int:
    workload = ALL_WORKLOADS[args.workload](args.size)
    graph = workload.graph
    platform = uniform_delay_platform(args.procs, rng=args.seed)
    exec_cost = range_exec_matrix(
        workload.base_costs, args.procs, heterogeneity=0.5, rng=args.seed + 1
    )
    exec_cost = scale_to_granularity(graph, platform, exec_cost, args.granularity)
    inst = ProblemInstance(graph, platform, exec_cost)

    schedulers = {
        "heft": lambda: heft(inst, rng=args.seed),
        "ftsa": lambda: ftsa(inst, args.epsilon, rng=args.seed),
        "ftbar": lambda: ftbar(inst, args.epsilon, rng=args.seed),
        "caft": lambda: caft(inst, args.epsilon, rng=args.seed),
    }
    run = schedulers[args.scheduler]
    sched = run()
    print(render_gantt(sched, width=args.width, show_comms=args.comms))
    report = summarize(sched)
    print(
        f"latency={report.latency:.1f} upper={report.upper_bound:.1f} "
        f"messages={report.messages} SLR={report.normalized_latency:.2f}"
    )
    if args.crash and args.scheduler != "heft":
        scenario = random_crash_scenario(args.procs, args.crash, rng=args.seed + 2)
        result = replay(sched, scenario)
        print(f"replay under {scenario}: ", end="")
        if result.success:
            print(f"latency={result.latency():.1f} ({result.counts()})")
        else:
            print(f"FAILED — dead tasks {result.dead_tasks}")
    return 0


def _cmd_prop51(args: argparse.Namespace) -> int:
    """Empirical check of Proposition 5.1 on random out-forests."""
    rng = np.random.default_rng(args.seed)
    worst_ratio = 0.0
    for trial in range(args.trials):
        graph = random_out_forest(args.tasks, rng=rng)
        platform = uniform_delay_platform(args.procs, rng=rng)
        base = rng.uniform(1.0, 2.0, size=graph.num_tasks)
        exec_cost = range_exec_matrix(base, args.procs, rng=rng)
        exec_cost = scale_to_granularity(graph, platform, exec_cost, 1.0)
        inst = ProblemInstance(graph, platform, exec_cost)
        sched = caft(inst, args.epsilon, locking="paper", rng=trial)
        bound = graph.num_edges * (args.epsilon + 1)
        ratio = sched.message_count() / bound if bound else 0.0
        worst_ratio = max(worst_ratio, ratio)
        status = "ok" if sched.message_count() <= bound else "VIOLATED"
        print(
            f"trial {trial}: e={graph.num_edges} messages={sched.message_count()} "
            f"bound e(eps+1)={bound} [{status}]"
        )
        if sched.message_count() > bound:
            return 1
    print(f"Proposition 5.1 holds on all trials (worst ratio {worst_ratio:.2f})")
    return 0


def _make_demo_instance(args: argparse.Namespace):
    workload = ALL_WORKLOADS[args.workload](args.size)
    platform = uniform_delay_platform(args.procs, rng=args.seed)
    exec_cost = range_exec_matrix(
        workload.base_costs, args.procs, heterogeneity=0.5, rng=args.seed + 1
    )
    exec_cost = scale_to_granularity(workload.graph, platform, exec_cost,
                                     args.granularity)
    return ProblemInstance(workload.graph, platform, exec_cost)


def _cmd_robustness(args: argparse.Namespace) -> int:
    """Monte-Carlo survival analysis of a workload's schedule."""
    from repro.fault.montecarlo import survival_curve
    from repro.fault.scenarios import check_robustness

    inst = _make_demo_instance(args)
    sched = caft(inst, args.epsilon, locking=args.locking, rng=args.seed)
    print(f"schedule: {sched}")
    if args.exhaustive:
        report = check_robustness(sched)
        status = "ROBUST" if report.robust else "NOT ROBUST"
        print(
            f"exhaustive check over {report.scenarios_checked} scenarios: {status}"
        )
        for scenario, dead in report.violations[:5]:
            print(f"  {scenario} kills tasks {dead[:8]}")
    curve = survival_curve(sched, args.max_failures, samples=args.samples,
                           rng=args.seed + 7)
    print("survival curve (crashes -> estimated survival):")
    for k, report in curve.items():
        rate = report.survival_rate
        bar = "#" * int(rate * 40)
        print(f"  {k:>2}: {rate:6.1%} ({report.samples} samples) {bar}")
    guaranteed = all(
        curve[k].survival_rate == 1.0
        for k in range(min(args.epsilon, args.max_failures) + 1)
    )
    return 0 if guaranteed else 1


def _cmd_trace(args: argparse.Namespace) -> int:
    """Export a schedule (and optionally a crash replay) as a Chrome trace."""
    from repro.fault.scenarios import random_crash_scenario
    from repro.schedule.trace import write_trace

    inst = _make_demo_instance(args)
    sched = caft(inst, args.epsilon, rng=args.seed)
    path = write_trace(sched, args.out)
    print(f"wrote {path} (load in chrome://tracing or ui.perfetto.dev)")
    if args.crash:
        scenario = random_crash_scenario(args.procs, args.crash, rng=args.seed + 2)
        result = replay(sched, scenario)
        crash_path = str(args.out).replace(".json", f".crash.json")
        write_trace(result, crash_path)
        print(f"wrote {crash_path} (replay under {scenario})")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    """Side-by-side algorithm comparison on one workload."""
    from repro.experiments.compare import compare_algorithms, comparison_table

    inst = _make_demo_instance(args)
    rows = compare_algorithms(
        inst, args.epsilon, crashes=args.crash, samples=args.samples,
        rng=args.seed,
    )
    print(
        f"workload={args.workload}({args.size}) m={args.procs} "
        f"eps={args.epsilon} g={args.granularity}"
    )
    print(comparison_table(rows))
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    """Heterogeneity / platform-size sweeps (beyond the paper's figures)."""
    from repro.experiments.extra import (
        heterogeneity_sweep,
        platform_size_sweep,
        sweep_table,
    )

    if args.kind == "heterogeneity":
        results = heterogeneity_sweep(num_graphs=args.graphs, epsilon=args.epsilon)
        label = "h"
    else:
        results = platform_size_sweep(num_graphs=args.graphs, epsilon=args.epsilon)
        label = "m"
    for metric in ("norm_latency", "messages"):
        print(f"\n{metric} vs {label}:")
        print(sweep_table(results, metric=metric, label=label))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-ftsched",
        description="Fault-tolerant contention-aware scheduling (ICPP 2008 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_fig = sub.add_parser("figure", help="regenerate one of the paper's figures")
    p_fig.add_argument("number", type=int, choices=sorted(FIGURES))
    p_fig.add_argument("--graphs", type=int, default=None,
                       help="random graphs per data point (default: paper's 60)")
    p_fig.add_argument("--out", type=str, default=None, help="CSV output path")
    p_fig.add_argument("--html", type=str, default=None,
                       help="write an HTML report with SVG charts")
    p_fig.add_argument("--workers", type=int, default=None,
                       help="worker processes for the campaign (default: serial)")
    p_fig.add_argument("--network", choices=list(network_names()), default=None,
                       help="communication model (default: the figure's, oneport)")
    p_fig.add_argument("--topology", choices=list(topology_names()), default=None,
                       help="sparse interconnect shape for routed-oneport "
                            "(implies --network routed-oneport)")
    p_fig.add_argument("--policy", choices=list(PORT_POLICIES), default=None,
                       help="one-port reservation policy (insertion = gap reuse)")
    p_fig.add_argument("--slow", action="store_true",
                       help="disable the vectorized placement kernel (baseline timing)")
    p_fig.add_argument("--override", action="append", default=None,
                       metavar="KEY=VALUE",
                       help="override any campaign-spec key (dotted paths, "
                            "JSON values: graphs=3, config.epsilon=2)")
    p_fig.add_argument("--verbose", action="store_true")
    p_fig.set_defaults(func=_cmd_figure)

    p_camp = sub.add_parser(
        "campaign",
        help="distributed / resumable campaigns (grid -> executor -> store)",
    )
    camp_sub = p_camp.add_subparsers(dest="campaign_command", required=True)

    def add_executor_args(p):
        p.add_argument("--executor", choices=list(executor_names()),
                       default=None,
                       help="where work units run (default: serial, or a "
                            "process pool when --workers > 1)")
        p.add_argument("--workers", type=int, default=None,
                       help="process-pool size, or sockets to auto-spawn for "
                            "--executor socket")
        p.add_argument("--bind", type=_parse_address, default=None,
                       metavar="HOST:PORT",
                       help="socket master bind address (default: an "
                            "ephemeral localhost port)")
        p.add_argument("--spawn-workers", type=int, default=0,
                       help="local worker processes the socket master "
                            "launches itself")
        p.add_argument("--timeout", type=float, default=None,
                       help="socket campaign no-activity timeout in seconds "
                            "(resets on any worker heartbeat or result; "
                            "default 300)")
        p.add_argument("--speculate", choices=["off", "auto"], default=None,
                       help="duplicate the slowest outstanding units onto "
                            "idle workers near the campaign tail (first ack "
                            "wins; socket executor only; default off)")
        p.add_argument("--steal", choices=["off", "auto"], default=None,
                       help="let an idle worker take the unstarted remainder "
                            "of a straggler's lease (socket executor only; "
                            "default auto)")
        p.add_argument("--lease", "--lease-size", dest="lease",
                       default=None, metavar="{auto,N}",
                       help="units per worker lease / pool chunk: an integer "
                            "pins the size, 'auto' (default) adapts to "
                            "observed unit latency (~2x heartbeat of work "
                            "per lease) and prefers same-scenario units")
        p.add_argument("--override", action="append", default=None,
                       metavar="KEY=VALUE",
                       help="override any campaign-spec key (dotted paths, "
                            "JSON values: graphs=3, executor.kind=process, "
                            "config.granularities=[0.2,0.4]); applied after "
                            "the explicit flags")
        p.add_argument("--out", type=str, default=None, help="CSV output path")
        p.add_argument("--verbose", action="store_true")

    p_crun = camp_sub.add_parser(
        "run", help="run a campaign: a paper figure number or a spec file")
    p_crun.add_argument("target", metavar="FIGURE|SPEC",
                        help="paper figure number (1-6, runs its shipped "
                             "spec) or a campaign spec file (.json/.toml)")
    p_crun.add_argument("--graphs", type=int, default=None,
                        help="random graphs per data point (default: paper's 60)")
    p_crun.add_argument("--network", choices=list(network_names()), default=None,
                        help="communication model (default: the figure's)")
    p_crun.add_argument("--topology", choices=list(topology_names()), default=None,
                        help="sparse interconnect shape (implies routed-oneport)")
    p_crun.add_argument("--policy", choices=list(PORT_POLICIES), default=None,
                        help="one-port reservation policy")
    p_crun.add_argument("--slow", action="store_true",
                        help="disable the vectorized placement kernel")
    p_crun.add_argument("--store", type=str, default=None,
                        help="directory for the append-only results store "
                             "(enables --resume)")
    p_crun.add_argument("--store-backend", type=str, default=None,
                        help="results store backend for --store: 'jsonl' "
                             "(the default) or 'columnar' (chunked NumPy "
                             "columns for million-row campaigns); any "
                             "register_store name is accepted")
    p_crun.add_argument("--resume", action="store_true",
                        help="skip units already completed in the store")
    add_executor_args(p_crun)
    p_crun.set_defaults(func=_cmd_campaign_run)

    p_cres = camp_sub.add_parser(
        "resume",
        help="finish a killed campaign from its store directory or spec file")
    p_cres.add_argument("target", metavar="DIR|SPEC",
                        help="store directory of the interrupted campaign, or "
                             "the spec file that created it (.json/.toml with "
                             "store.directory set)")
    add_executor_args(p_cres)
    p_cres.set_defaults(func=_cmd_campaign_resume)

    p_cwork = camp_sub.add_parser(
        "worker", help="compute units for a campaign master over TCP")
    p_cwork.add_argument("master", type=_parse_address, metavar="HOST:PORT",
                         help="address of the campaign master")
    p_cwork.add_argument("--heartbeat", type=float, default=0.5,
                         help="seconds between liveness heartbeats")
    p_cwork.add_argument("--max-units", type=int, default=None,
                         help="drop the connection after N units — fault "
                              "injection for requeue tests; the worker exits "
                              "with code 3 (distinct from a crash's 1) so "
                              "harnesses can assert why it died")
    p_cwork.add_argument("--wedge-after", type=int, default=None,
                         metavar="N",
                         help="fault injection: stall mid-unit after N "
                              "results without dying — heartbeats continue, "
                              "so only speculation/stealing can rescue the "
                              "campaign; exits 3 once the master is gone")
    p_cwork.add_argument("--slow-factor", type=float, default=None,
                         metavar="F",
                         help="fault injection: throttle every unit to F x "
                              "its real compute time (a reproducible "
                              "straggler)")
    p_cwork.add_argument("--die-after", type=int, default=None,
                         metavar="N",
                         help="fault injection: exit with the genuine-crash "
                              "code 1 after N results (exercises the "
                              "master's bounded worker respawn)")
    p_cwork.add_argument("--ignore-revoke", action="store_true",
                         help="fault injection: keep computing revoked "
                              "units, forcing the revoke-vs-ack race")
    p_cwork.add_argument("--verbose", action="store_true")
    p_cwork.set_defaults(func=_cmd_campaign_worker)

    p_svc = sub.add_parser(
        "service",
        help="persistent multi-tenant campaign service (one master, "
             "many submitted campaigns)",
    )
    svc_sub = p_svc.add_subparsers(dest="service_command", required=True)

    p_sstart = svc_sub.add_parser(
        "start",
        help="run a campaign service in the foreground (SIGTERM/Ctrl-C "
             "stops it; restarting on the same --root resumes "
             "incomplete jobs)",
    )
    p_sstart.add_argument("--root", type=str, required=True,
                          help="durable service directory (job specs and "
                               "stores live under ROOT/jobs)")
    p_sstart.add_argument("--bind", type=_parse_address, default=None,
                          metavar="HOST:PORT",
                          help="bind address (default: an ephemeral "
                               "localhost port; the actually-bound port "
                               "is printed and written to ROOT/"
                               "service.json)")
    p_sstart.add_argument("--workers", type=int, default=2,
                          help="local worker processes the service "
                               "spawns and shares across jobs "
                               "(default 2; external workers can "
                               "connect at any time)")
    p_sstart.add_argument("--heartbeat", type=float, default=0.5,
                          help="seconds between worker liveness "
                               "heartbeats")
    p_sstart.add_argument("--lease", "--lease-size", dest="lease",
                          default=None, metavar="{auto,N}",
                          help="default units per worker lease (a "
                               "submitted spec's own lease field "
                               "overrides this per job)")
    p_sstart.add_argument("--speculate", choices=["off", "auto"],
                          default=None,
                          help="duplicate slow tail units onto idle "
                               "workers (per job; default off)")
    p_sstart.add_argument("--steal", choices=["off", "auto"], default=None,
                          help="idle workers take the unstarted "
                               "remainder of stragglers' leases "
                               "(per job; default auto)")
    p_sstart.add_argument("--job-ttl", type=float, default=None,
                          metavar="SECONDS",
                          help="prune terminal job directories "
                               "(done/cancelled/failed) older than this "
                               "many seconds, at start and periodically "
                               "while serving (default: keep forever); "
                               "running jobs are never touched")
    p_sstart.set_defaults(func=_cmd_service_start)

    p_sgc = svc_sub.add_parser(
        "gc",
        help="one-shot prune of terminal job directories under a "
             "service root (safe alongside a running service: only "
             "done/cancelled/failed jobs older than the TTL go)")
    p_sgc.add_argument("--root", type=str, required=True,
                       help="service directory to sweep (ROOT/jobs)")
    p_sgc.add_argument("--job-ttl", type=float, default=0.0,
                       metavar="SECONDS",
                       help="minimum age of a terminal job.json before "
                            "its directory is removed (default 0: every "
                            "terminal job dir)")
    p_sgc.set_defaults(func=_cmd_service_gc)

    def add_service_client_args(p):
        p.add_argument("--address", type=_parse_address, required=True,
                       metavar="HOST:PORT",
                       help="address of the running campaign service")

    p_ssub = svc_sub.add_parser(
        "submit", help="submit a campaign to a running service")
    p_ssub.add_argument("target", metavar="FIGURE|SPEC",
                        help="paper figure number or a campaign spec "
                             "file (.json/.toml); the service stores "
                             "results under its own root")
    add_service_client_args(p_ssub)
    p_ssub.add_argument("--tenant", type=str, default="default",
                        help="fair-share tenant the job is accounted to")
    p_ssub.add_argument("--priority", type=int, default=0,
                        help="scheduling priority within the tenant "
                             "(higher first; >= 0)")
    p_ssub.add_argument("--wait", action="store_true",
                        help="block until the job reaches a terminal "
                             "state (exit 1 unless it is 'done')")
    p_ssub.add_argument("--override", action="append", default=None,
                        metavar="KEY=VALUE",
                        help="override any campaign-spec key before "
                             "submitting")
    p_ssub.set_defaults(func=_cmd_service_submit)

    p_sstat = svc_sub.add_parser("status", help="one job's progress")
    p_sstat.add_argument("job", metavar="JOB_ID")
    add_service_client_args(p_sstat)
    p_sstat.set_defaults(func=_cmd_service_status)

    p_sjobs = svc_sub.add_parser("jobs", help="list every job the "
                                              "service knows about")
    add_service_client_args(p_sjobs)
    p_sjobs.set_defaults(func=_cmd_service_jobs)

    p_scan = svc_sub.add_parser(
        "cancel", help="cancel a running job (completed units stay in "
                       "its store)")
    p_scan.add_argument("job", metavar="JOB_ID")
    add_service_client_args(p_scan)
    p_scan.set_defaults(func=_cmd_service_cancel)

    p_demo = sub.add_parser("demo", help="schedule a workload and show a Gantt chart")
    p_demo.add_argument("--workload", choices=sorted(ALL_WORKLOADS), default="gaussian_elimination")
    p_demo.add_argument("--size", type=int, default=6)
    p_demo.add_argument("--procs", type=int, default=6)
    p_demo.add_argument("--epsilon", type=int, default=1)
    p_demo.add_argument("--granularity", type=float, default=1.0)
    p_demo.add_argument("--scheduler", choices=["heft", "ftsa", "ftbar", "caft"], default="caft")
    p_demo.add_argument("--crash", type=int, default=0, help="replay with this many crashes")
    p_demo.add_argument("--comms", action="store_true", help="show link rows in the Gantt")
    p_demo.add_argument("--width", type=int, default=100)
    p_demo.add_argument("--seed", type=int, default=42)
    p_demo.set_defaults(func=_cmd_demo)

    p_51 = sub.add_parser("prop51", help="check Proposition 5.1 message bounds")
    p_51.add_argument("--epsilon", type=int, default=1)
    p_51.add_argument("--tasks", type=int, default=60)
    p_51.add_argument("--procs", type=int, default=10)
    p_51.add_argument("--trials", type=int, default=10)
    p_51.add_argument("--seed", type=int, default=0)
    p_51.set_defaults(func=_cmd_prop51)

    def add_workload_args(p):
        p.add_argument("--workload", choices=sorted(ALL_WORKLOADS),
                       default="gaussian_elimination")
        p.add_argument("--size", type=int, default=6)
        p.add_argument("--procs", type=int, default=6)
        p.add_argument("--epsilon", type=int, default=1)
        p.add_argument("--granularity", type=float, default=1.0)
        p.add_argument("--seed", type=int, default=42)

    p_rob = sub.add_parser("robustness", help="survival analysis of a schedule")
    add_workload_args(p_rob)
    p_rob.add_argument("--locking", choices=["support", "paper"], default="support")
    p_rob.add_argument("--max-failures", type=int, default=4)
    p_rob.add_argument("--samples", type=int, default=50)
    p_rob.add_argument("--exhaustive", action="store_true")
    p_rob.set_defaults(func=_cmd_robustness)

    p_tr = sub.add_parser("trace", help="export a Chrome/Perfetto trace")
    add_workload_args(p_tr)
    p_tr.add_argument("--out", type=str, default="results/trace.json")
    p_tr.add_argument("--crash", type=int, default=0)
    p_tr.set_defaults(func=_cmd_trace)

    p_cmp = sub.add_parser("compare", help="side-by-side algorithm comparison")
    add_workload_args(p_cmp)
    p_cmp.add_argument("--crash", type=int, default=1)
    p_cmp.add_argument("--samples", type=int, default=25)
    p_cmp.set_defaults(func=_cmd_compare)

    p_sw = sub.add_parser("sweep", help="heterogeneity / platform-size sweeps")
    p_sw.add_argument("kind", choices=["heterogeneity", "platform"])
    p_sw.add_argument("--graphs", type=int, default=3)
    p_sw.add_argument("--epsilon", type=int, default=1)
    p_sw.set_defaults(func=_cmd_sweep)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except CampaignConfigError as exc:
        # The one way every invalid configuration leaves the CLI — same
        # error object the API raises, printed with its offending key.
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
