"""The paper's contribution: CAFT and the one-to-one mapping procedure."""

from repro.core.caft import caft, place_task_caft, LOCKING_MODES
from repro.core.caft_batch import caft_batch
from repro.core.one_to_one import (
    PlacementState,
    singleton_analysis,
    support_pools,
    one_to_one_round,
    support_round,
    greedy_round,
)

__all__ = [
    "caft",
    "caft_batch",
    "place_task_caft",
    "LOCKING_MODES",
    "PlacementState",
    "singleton_analysis",
    "support_pools",
    "one_to_one_round",
    "support_round",
    "greedy_round",
]
