"""CAFT — Contention-Aware Fault Tolerant scheduling (paper Algorithm 5.1).

The paper's contribution: a list scheduler for the bi-directional one-port
model that replicates every task ``ε+1`` times while keeping the number of
replication-induced messages close to one per (edge, replica) — the
one-to-one mapping procedure — instead of the ``(ε+1)²`` fan-out of
FTSA/FTBAR.  Tasks are processed by decreasing ``tl + bl`` priority; each
task's replicas are placed by as many one-to-one rounds as the supplier
analysis allows (``θ``), then completed with full-fan-in ("greedy")
rounds that restore the FTSA robustness argument.

``locking`` selects the eligibility discipline (see
:mod:`repro.core.one_to_one`): ``"support"`` (default) provably resists
``ε`` failures on every DAG; ``"paper"`` is the literal Algorithm 5.2.
"""

from __future__ import annotations

from repro.core.one_to_one import (
    PlacementState,
    greedy_round,
    one_to_one_round,
    singleton_analysis,
    support_pools,
    support_round,
)
from repro.platform.instance import ProblemInstance
from repro.schedule.schedule import Schedule, ScheduleBuilder
from repro.schedulers.base import FreeTaskList, ModelSpec, make_builder, seeded
from repro.utils.errors import SchedulingError
from repro.utils.rng import RngLike

LOCKING_MODES = ("support", "paper")


def place_task_caft(
    builder: ScheduleBuilder, task: int, gen, locking: str
) -> tuple[float, int]:
    """Place the ``ε+1`` replicas of ``task``.

    Returns ``(best finish time, θ)`` where ``θ`` counts the replicas
    placed by the one-to-one procedure (Algorithm 5.1, lines 10–15).
    """
    eps = builder.epsilon
    graph = builder.instance.graph
    has_preds = bool(graph.preds(task))

    if locking == "paper":
        state = singleton_analysis(builder, task)
    else:
        state = PlacementState(locked=set(), pools={}, theta=eps + 1)

    best_finish = float("inf")
    theta_achieved = 0
    for k in range(eps + 1):
        remaining_after = eps - k
        if locking == "support":
            state.pools = support_pools(builder, task, state.locked) if has_preds else {}
            replica = support_round(builder, task, state, gen, remaining_after)
            if replica.kind == "channel":
                theta_achieved += 1
        else:
            replica = None
            if k < state.theta:
                replica = one_to_one_round(builder, task, state, gen)
            if replica is None:
                replica = greedy_round(builder, task, state, gen)
            else:
                theta_achieved += 1
        if replica.finish < best_finish:
            best_finish = replica.finish
    builder.schedule.degraded_replicas += state.degraded
    return best_finish, theta_achieved


def caft(
    instance: ProblemInstance,
    epsilon: int,
    model: ModelSpec = "oneport",
    locking: str = "support",
    priority: str = "tl+bl",
    dynamic: bool = True,
    rng: RngLike = 0,
    fast: bool = True,
) -> Schedule:
    """Schedule ``instance`` with CAFT, tolerating ``epsilon`` failures.

    Parameters
    ----------
    instance:
        The problem to schedule.
    epsilon:
        Number of fail-silent processor failures the schedule must survive.
    model:
        Communication model (default: the paper's bi-directional one-port).
    locking:
        ``"support"`` (robust, default) or ``"paper"`` (literal Alg. 5.2).
    priority:
        ``"tl+bl"`` (paper §5) or ``"bl"`` (HEFT-style upward rank).
    dynamic:
        Refresh successor top levels from actual finish times (paper §5
        "update priority values of t's successors").
    rng:
        Seed or generator for the random tie-breaking.
    fast:
        Evaluate candidate placements through the vectorized placement
        kernel (bit-identical schedules).
    """
    if locking not in LOCKING_MODES:
        raise SchedulingError(
            f"unknown locking mode {locking!r}; choose from {LOCKING_MODES}"
        )
    gen = seeded(rng)
    name = "caft" if locking == "support" else "caft-paper"
    builder = make_builder(
        instance,
        epsilon=epsilon,
        model=model,
        scheduler=name,
        strict_local_suppression=(locking == "paper"),
        fast=fast,
    )
    free = FreeTaskList(instance, gen, priority=priority, dynamic=dynamic)

    thetas: list[int] = []
    while free:
        task = free.pop()
        best_finish, theta = place_task_caft(builder, task, gen, locking)
        thetas.append(theta)
        builder.mark_task_done(task)
        free.task_scheduled(task, best_finish=best_finish)

    schedule = builder.finish()
    total = sum(len(reps) for reps in schedule.replicas)
    channels = sum(
        1 for reps in schedule.replicas for r in reps if r.kind == "channel"
    )
    schedule.metadata["theta_per_task"] = thetas
    schedule.metadata["channel_replicas"] = channels
    schedule.metadata["greedy_replicas"] = total - channels
    schedule.metadata["locking"] = locking
    return schedule
