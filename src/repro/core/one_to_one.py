"""The one-to-one mapping procedure (paper Algorithm 5.2) and its
robust, support-tracking refinement.

A *channel* replica of task ``t`` receives each predecessor's data from
exactly **one** designated replica, so an edge of the task graph costs one
message instead of ``(ε+1)²``.  Two locking disciplines are provided:

* ``"paper"`` — the literal Algorithm 5.2: predecessor replicas hosted on
  *singleton* processors are eligible, ``θ = min_j λ_j`` one-to-one rounds
  are executed, and the locked set ``P̄`` contains the processors that host
  or feed already-placed replicas of the **current** task.

* ``"support"`` (default) — each replica carries its *support*: the set of
  processors whose collective survival guarantees the replica completes
  (its own processor plus, recursively, the supports of its designated
  suppliers).  A replica is eligible as a supplier only if its support is
  disjoint from the supports already consumed by the current task's
  replicas, and a candidate placement is considered only while enough
  unlocked processors remain for the outstanding replicas.  This preserves
  Proposition 5.2 on *every* graph: the literal rule can be defeated by
  starvation cascades on chains of length ≥ 3 (see
  ``tests/fault/test_robustness.py`` for a concrete counterexample), which
  the support discipline provably rules out — each task ends up with
  ``ε+1`` replicas whose supports are pairwise disjoint, so ``ε`` failures
  can strike at most ``ε`` of them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.schedule.schedule import Replica, ScheduleBuilder, Trial
from repro.schedulers.base import TIE_EPS, argmin_trial, eligible_procs, full_fanin_sources
from repro.utils.errors import SchedulingError


@dataclass
class PlacementState:
    """Book-keeping for the ε+1 replica placements of one task."""

    locked: set[int]
    pools: dict[int, list[Replica]]  # per-pred eligible suppliers
    theta: int  # planned (paper) or achieved (support) one-to-one rounds
    degraded: int = 0


def singleton_analysis(builder: ScheduleBuilder, task: int) -> PlacementState:
    """Paper §5 singleton-processor analysis: pools ``B̄(tj)``, ``θ = min λj``."""
    graph = builder.instance.graph
    preds = graph.preds(task)
    if not preds:
        return PlacementState(locked=set(), pools={}, theta=builder.epsilon + 1)
    count: dict[int, int] = {}
    for p in preds:
        for r in builder.schedule.replicas[p]:
            count[r.proc] = count.get(r.proc, 0) + 1
    singletons = {proc for proc, c in count.items() if c == 1}
    pools = {
        p: [r for r in builder.schedule.replicas[p] if r.proc in singletons]
        for p in preds
    }
    theta = min(len(pool) for pool in pools.values())
    return PlacementState(locked=set(), pools=pools, theta=theta)


def support_pools(
    builder: ScheduleBuilder, task: int, locked: set[int]
) -> dict[int, list[Replica]]:
    """Support-disjoint supplier pools per predecessor.

    A replica is eligible as a designated (one-to-one) supplier only if its
    support does not intersect the supports already consumed by this task's
    placed replicas.  Predecessors with no eligible supplier are omitted —
    :func:`support_round` falls back to full fan-in for them.
    """
    graph = builder.instance.graph
    pools: dict[int, list[Replica]] = {}
    for p in graph.preds(task):
        pool = [
            r
            for r in builder.schedule.replicas[p]
            if not (r.support & locked)
        ]
        if pool:
            pools[p] = pool
    return pools


def _pick_heads(
    builder: ScheduleBuilder,
    task: int,
    proc: int,
    pools: dict[int, list[Replica]],
) -> dict[int, Replica]:
    """Head ``H(B̄(tj))`` per predecessor for candidate processor ``proc``.

    Pools are ordered by the eq. (6) sort key — the sender-side earliest
    communication finish toward ``proc`` — and the head is the front
    element (Algorithm 5.2, lines 3–4).  Ties break on replica index.
    """
    graph = builder.instance.graph
    network = builder.network
    heads: dict[int, Replica] = {}
    for pred, pool in pools.items():
        vol = graph.volume(pred, task)
        heads[pred] = min(
            pool,
            key=lambda r: (network.sender_bound(r.proc, proc, r.finish, vol), r.index),
        )
    return heads


def one_to_one_round(
    builder: ScheduleBuilder,
    task: int,
    state: PlacementState,
    gen: np.random.Generator,
) -> Optional[Replica]:
    """One literal Algorithm 5.2 round; return the replica or ``None``.

    For each unlocked candidate processor the per-predecessor heads are
    selected from the singleton pools, the mapping of ``task`` is simulated
    with exactly those suppliers, and the (task, processor) pair with the
    earliest finish is committed.  Locking follows eq. (7).
    """
    m = builder.instance.num_procs
    full = full_fanin_sources(builder, task)
    candidates: list[tuple[Trial, dict[int, Replica]]] = []
    for proc in range(m):
        if proc in state.locked:
            continue
        heads = _pick_heads(builder, task, proc, state.pools)
        # every predecessor has a designated head here, so the full pools
        # only serve as the shared (cached) kernel entry state
        trial = builder.trial_with_heads(task, proc, full, heads)
        candidates.append((trial, heads))

    if not candidates:
        return None

    best_finish = min(t.finish for t, _h in candidates)
    ties = [c for c in candidates if c[0].finish <= best_finish + TIE_EPS]
    trial, heads = ties[int(gen.integers(len(ties)))] if len(ties) > 1 else ties[0]

    support = frozenset({trial.proc}).union(*(h.support for h in heads.values())) \
        if heads else frozenset({trial.proc})
    replica = builder.commit(
        task,
        trial.proc,
        {p: [h] for p, h in heads.items()},
        kind="channel",
        support=support,  # true recursive support, kept for diagnostics
    )

    # Paper eq. (7): lock the chosen processor and every processor
    # "involved in a communication with a replica of ti".
    state.locked.add(trial.proc)
    state.locked.update(h.proc for h in heads.values())
    for pred, head in heads.items():
        state.pools[pred].remove(head)
    return replica


def support_round(
    builder: ScheduleBuilder,
    task: int,
    state: PlacementState,
    gen: np.random.Generator,
    remaining_after: int,
) -> Replica:
    """One robust placement round with per-predecessor one-to-one decisions.

    For every predecessor whose support-disjoint pool is non-empty a single
    designated supplier is used; the remaining predecessors fall back to
    full fan-in ("greedily add extra communications", Algorithm 5.1 lines
    16–20, applied per predecessor rather than per replica).  The unlocked
    processors are budgeted evenly over the outstanding replicas, and a
    candidate's largest-support heads are demoted to fan-in until its
    support fits the budget — so the round always succeeds, later replicas
    keep real placement freedom, and the task's replicas end up with
    pairwise disjoint supports (the invariant behind Proposition 5.2; see
    module docstring).
    """
    m = builder.instance.num_procs
    graph = builder.instance.graph
    preds = graph.preds(task)
    all_replicas = {p: builder.schedule.replicas[p] for p in preds}
    # Spread the unlocked processors evenly over this and the outstanding
    # replicas; anything the budget does not cover is served by fan-in.
    unlocked = m - len(state.locked)
    budget = max(1, unlocked // (remaining_after + 1))

    candidates: list[tuple[Trial, dict[int, Replica], frozenset[int]]] = []
    for proc in range(m):
        if proc in state.locked:
            continue
        heads = _pick_heads(builder, task, proc, state.pools)
        # Demote the widest-support heads to fan-in until within budget.
        while True:
            support = frozenset({proc}).union(*(h.support for h in heads.values())) \
                if heads else frozenset({proc})
            if len(support - state.locked) <= budget or not heads:
                break
            widest = max(heads, key=lambda p: (len(heads[p].support), p))
            del heads[widest]
        if m - len(state.locked | support) < remaining_after:
            continue  # cannot even place the bare replica here
        trial = builder.trial_with_heads(task, proc, all_replicas, heads)
        candidates.append((trial, heads, support))

    if not candidates:
        raise SchedulingError(
            f"no feasible processor for a replica of t{task} "
            f"(m={m}, eps={builder.epsilon}) — platform too small"
        )

    best_finish = min(t.finish for t, _h, _s in candidates)
    ties = [c for c in candidates if c[0].finish <= best_finish + TIE_EPS]
    trial, heads, support = ties[int(gen.integers(len(ties)))] if len(ties) > 1 else ties[0]

    sources = {p: ([heads[p]] if p in heads else all_replicas[p]) for p in preds}
    if preds and len(heads) == len(preds):
        kind = "channel"
    elif heads:
        kind = "mixed"
    else:
        kind = "channel" if not preds else "greedy"
    replica = builder.commit(task, trial.proc, sources, kind=kind, support=support)
    state.locked |= support
    return replica


def greedy_round(
    builder: ScheduleBuilder,
    task: int,
    state: PlacementState,
    gen: np.random.Generator,
) -> Replica:
    """One full-fan-in placement (Algorithm 5.1, lines 16–20).

    The replica receives from **every** replica of each predecessor — the
    paper's "greedily add extra communications to guarantee failure
    tolerance".  Candidate processors exclude the locked set; if locking
    exhausted the platform (tiny ``m``), fall back to space exclusion only
    and count the replica as degraded.
    """
    sources = full_fanin_sources(builder, task)
    candidates = [p for p in eligible_procs(builder, task) if p not in state.locked]
    if not candidates:
        candidates = eligible_procs(builder, task)
        if not candidates:
            raise SchedulingError(
                f"no processor left for a replica of t{task} "
                f"(m={builder.instance.num_procs}, eps={builder.epsilon})"
            )
        state.degraded += 1
    trials = builder.trial_batch(task, candidates, sources)
    best = argmin_trial(trials, gen)
    replica = builder.commit(task, best.proc, sources, kind="greedy")
    state.locked.add(best.proc)
    return replica
