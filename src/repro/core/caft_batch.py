"""Batched CAFT — the paper's §7 "further work" heuristic.

    "Instead of considering a single task (the one with highest priority)
    and assigning all its replicas to the currently best available
    resources, why not consider say, 10 ready tasks, and assign all their
    replicas in the same decision making procedure?  The idea would be to
    design an extension of the one-to-one mapping procedure to a set of
    independent tasks, in order to better load balance processor and link
    usage."

This module implements that extension: a window of up to ``window`` free
tasks (mutually independent by definition of freeness) is drained from the
priority queue, and their replicas are placed **unit-interleaved** — first
the primary unit of every window task, then the second unit of every
task, and so on.  Early units of all tasks therefore compete for the best
processors *before* any task grabs resources for its backup replicas,
which balances processor and port usage across the window.  Each task
keeps its own support-locking state, so the Proposition 5.2 guarantee of
the robust CAFT is preserved verbatim.

``window=1`` reduces exactly to :func:`repro.core.caft.caft` with
``locking="support"``.
"""

from __future__ import annotations

from repro.core.one_to_one import PlacementState, support_pools, support_round
from repro.platform.instance import ProblemInstance
from repro.schedule.schedule import Schedule
from repro.schedulers.base import FreeTaskList, ModelSpec, make_builder, seeded
from repro.utils.errors import SchedulingError
from repro.utils.rng import RngLike


def caft_batch(
    instance: ProblemInstance,
    epsilon: int,
    window: int = 10,
    model: ModelSpec = "oneport",
    priority: str = "tl+bl",
    dynamic: bool = True,
    rng: RngLike = 0,
    fast: bool = True,
) -> Schedule:
    """Schedule with the batched (window-based) CAFT extension.

    Parameters match :func:`repro.core.caft.caft`; ``window`` is the
    maximum number of ready tasks mapped per decision round (the paper
    suggests 10).
    """
    if window < 1:
        raise SchedulingError("window must be >= 1")
    gen = seeded(rng)
    builder = make_builder(
        instance, epsilon=epsilon, model=model, scheduler=f"caft-batch{window}",
        fast=fast,
    )
    free = FreeTaskList(instance, gen, priority=priority, dynamic=dynamic)
    graph = instance.graph
    eps = epsilon

    thetas: dict[int, int] = {}
    while free:
        batch: list[int] = []
        while free and len(batch) < window:
            batch.append(free.pop())

        states = {t: PlacementState(locked=set(), pools={}, theta=eps + 1) for t in batch}
        best_finish = {t: float("inf") for t in batch}
        theta = {t: 0 for t in batch}

        # Unit-interleaved placement: round k places replica k of every
        # window task before any task places replica k+1.
        for k in range(eps + 1):
            remaining_after = eps - k
            for t in batch:
                state = states[t]
                state.pools = (
                    support_pools(builder, t, state.locked) if graph.preds(t) else {}
                )
                replica = support_round(builder, t, state, gen, remaining_after)
                if replica.kind == "channel":
                    theta[t] += 1
                if replica.finish < best_finish[t]:
                    best_finish[t] = replica.finish

        for t in batch:
            thetas[t] = theta[t]
            builder.schedule.degraded_replicas += states[t].degraded
            builder.mark_task_done(t)
            free.task_scheduled(t, best_finish=best_finish[t])

    schedule = builder.finish()
    total = sum(len(reps) for reps in schedule.replicas)
    channels = sum(1 for reps in schedule.replicas for r in reps if r.kind == "channel")
    schedule.metadata["theta_per_task"] = [thetas[t] for t in sorted(thetas)]
    schedule.metadata["channel_replicas"] = channels
    schedule.metadata["greedy_replicas"] = total - channels
    schedule.metadata["window"] = window
    return schedule
