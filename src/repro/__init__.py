"""repro — contention-aware fault-tolerant scheduling on heterogeneous platforms.

A full reproduction of *"Realistic Models and Efficient Algorithms for
Fault Tolerant Scheduling on Heterogeneous Platforms"* (Benoit, Hakem,
Robert — ICPP 2008 / INRIA RR-6606): the CAFT scheduler, the FTSA/FTBAR
competitors, the bi-directional one-port communication model, active
replication, crash replay, and the complete experimental campaign.

Quickstart
----------
>>> from repro import random_dag, uniform_delay_platform, range_exec_matrix
>>> from repro import ProblemInstance, caft, validate_schedule
>>> graph = random_dag(40, rng=1)
>>> platform = uniform_delay_platform(8, rng=2)
>>> E = range_exec_matrix([10.0] * 40, 8, rng=3)
>>> inst = ProblemInstance(graph, platform, E)
>>> sched = caft(inst, epsilon=1)
>>> validate_schedule(sched)
>>> sched.latency() > 0
True
"""

from repro.dag import (
    TaskGraph,
    random_dag,
    layered_dag,
    random_out_forest,
    chain,
    fork,
    join,
    fork_join,
    out_tree,
    in_tree,
    gaussian_elimination,
    fft_butterfly,
    stencil_1d,
    tiled_cholesky,
    Workload,
)
from repro.platform import (
    Platform,
    ProblemInstance,
    Topology,
    uniform_delay_platform,
    range_exec_matrix,
    related_exec_matrix,
    granularity,
    scale_to_granularity,
)
from repro.comm import (
    NetworkModel,
    OnePortNetwork,
    UniPortNetwork,
    NoOverlapOnePortNetwork,
    MacroDataflowNetwork,
    RoutedOnePortNetwork,
    make_network,
)
from repro.schedule import (
    Schedule,
    ScheduleBuilder,
    Replica,
    CommEvent,
    validate_schedule,
    is_valid,
    latency_upper_bound,
    normalized_latency,
    overhead_percent,
    summarize,
    render_gantt,
)
from repro.schedulers import heft, ftsa, ftbar
from repro.core import caft, caft_batch
from repro.fault import (
    FailureScenario,
    replay,
    crash_latency,
    random_crash_scenario,
    check_robustness,
    ReplicaStatus,
)
from repro.utils.errors import (
    ReproError,
    InvalidGraphError,
    InvalidPlatformError,
    SchedulingError,
    ScheduleValidationError,
    ExecutionFailedError,
)

__version__ = "1.0.0"

#: registry of scheduling algorithms, keyed by the names used in figures
SCHEDULERS = {
    "heft": heft,
    "ftsa": ftsa,
    "ftbar": ftbar,
    "caft": caft,
    "caft-batch": caft_batch,
}

__all__ = [
    "TaskGraph",
    "random_dag",
    "layered_dag",
    "random_out_forest",
    "chain",
    "fork",
    "join",
    "fork_join",
    "out_tree",
    "in_tree",
    "gaussian_elimination",
    "fft_butterfly",
    "stencil_1d",
    "tiled_cholesky",
    "Workload",
    "Platform",
    "ProblemInstance",
    "Topology",
    "uniform_delay_platform",
    "range_exec_matrix",
    "related_exec_matrix",
    "granularity",
    "scale_to_granularity",
    "NetworkModel",
    "OnePortNetwork",
    "UniPortNetwork",
    "NoOverlapOnePortNetwork",
    "MacroDataflowNetwork",
    "RoutedOnePortNetwork",
    "make_network",
    "Schedule",
    "ScheduleBuilder",
    "Replica",
    "CommEvent",
    "validate_schedule",
    "is_valid",
    "latency_upper_bound",
    "normalized_latency",
    "overhead_percent",
    "summarize",
    "render_gantt",
    "heft",
    "ftsa",
    "ftbar",
    "caft",
    "caft_batch",
    "FailureScenario",
    "replay",
    "crash_latency",
    "random_crash_scenario",
    "check_robustness",
    "ReplicaStatus",
    "ReproError",
    "InvalidGraphError",
    "InvalidPlatformError",
    "SchedulingError",
    "ScheduleValidationError",
    "ExecutionFailedError",
    "SCHEDULERS",
]
