"""Task-graph serialization: edge-list text, JSON and Graphviz DOT.

The text format is the classic scheduling-benchmark layout — one header
line ``v e`` followed by ``e`` lines of ``src dst volume`` — so instances
can be exchanged with other schedulers.  DOT export is for visualization
(``dot -Tpdf``); node labels carry task names.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.dag.graph import TaskGraph
from repro.utils.errors import InvalidGraphError


def graph_to_text(graph: TaskGraph) -> str:
    """Edge-list text: ``v e`` header then ``src dst volume`` lines."""
    lines = [f"{graph.num_tasks} {graph.num_edges}"]
    for u, v, vol in graph.edges():
        lines.append(f"{u} {v} {vol!r}")
    return "\n".join(lines) + "\n"


def graph_from_text(text: str) -> TaskGraph:
    """Inverse of :func:`graph_to_text`."""
    lines = [ln for ln in text.splitlines() if ln.strip() and not ln.startswith("#")]
    if not lines:
        raise InvalidGraphError("empty graph text")
    try:
        v, e = (int(x) for x in lines[0].split())
    except ValueError as exc:
        raise InvalidGraphError(f"bad header line {lines[0]!r}") from exc
    if len(lines) - 1 != e:
        raise InvalidGraphError(f"header says {e} edges, found {len(lines) - 1}")
    edges = []
    for ln in lines[1:]:
        parts = ln.split()
        if len(parts) != 3:
            raise InvalidGraphError(f"bad edge line {ln!r}")
        edges.append((int(parts[0]), int(parts[1]), float(parts[2])))
    return TaskGraph(v, edges)


def save_graph(graph: TaskGraph, path: str | Path) -> Path:
    """Write the edge-list text format to ``path``."""
    path = Path(path)
    path.write_text(graph_to_text(graph))
    return path


def load_graph(path: str | Path) -> TaskGraph:
    """Read a graph written by :func:`save_graph`."""
    return graph_from_text(Path(path).read_text())


def graph_to_json(graph: TaskGraph) -> str:
    """JSON with names: ``{"num_tasks": v, "names": [...], "edges": [...]}``."""
    return json.dumps(
        {
            "num_tasks": graph.num_tasks,
            "names": list(graph.names),
            "edges": [[u, v, vol] for u, v, vol in graph.edges()],
        }
    )


def graph_from_json(text: str) -> TaskGraph:
    """Inverse of :func:`graph_to_json`."""
    data = json.loads(text)
    return TaskGraph(
        int(data["num_tasks"]),
        [(int(u), int(v), float(vol)) for u, v, vol in data["edges"]],
        names=data.get("names"),
    )


def graph_to_dot(graph: TaskGraph, name: str = "taskgraph") -> str:
    """Graphviz DOT text with volumes as edge labels."""
    lines = [f"digraph {name} {{", "  rankdir=TB;"]
    for t in range(graph.num_tasks):
        lines.append(f'  t{t} [label="{graph.names[t]}"];')
    for u, v, vol in graph.edges():
        lines.append(f'  t{u} -> t{v} [label="{vol:g}"];')
    lines.append("}")
    return "\n".join(lines) + "\n"
