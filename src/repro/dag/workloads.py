"""Structured application DAGs from the scheduling literature.

The paper's introduction motivates scheduling of real scientific
applications on heterogeneous platforms; these are the canonical kernels
used throughout that literature (HEFT et al.): Gaussian elimination, FFT
butterflies, stencil sweeps and tiled Cholesky.  Each workload carries task
names and a vector of *base* execution costs proportional to the
operation's flop count, ready to be spread over processors with
:func:`repro.platform.heterogeneity.range_exec_matrix`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dag.graph import TaskGraph
from repro.utils.errors import InvalidGraphError


@dataclass(frozen=True)
class Workload:
    """A named DAG plus per-task base execution costs."""

    name: str
    graph: TaskGraph
    base_costs: np.ndarray

    @property
    def num_tasks(self) -> int:
        return self.graph.num_tasks


def gaussian_elimination(n: int, volume: float = 100.0) -> Workload:
    """LU-style Gaussian elimination on an ``n x n`` matrix (column tasks).

    Step ``k`` (``0 <= k <= n-2``) has one pivot task ``Pk`` feeding update
    tasks ``U(k, j)`` for ``j > k``; each update feeds the corresponding
    task of step ``k+1``.  Pivot cost ~ remaining column height, update
    cost ~ remaining submatrix row.
    """
    if n < 2:
        raise InvalidGraphError("gaussian_elimination needs n >= 2")
    ids: dict[tuple[str, int, int], int] = {}
    names: list[str] = []
    costs: list[float] = []

    def new_task(kind: str, k: int, j: int, cost: float) -> int:
        tid = len(names)
        ids[(kind, k, j)] = tid
        names.append(f"{kind}({k},{j})" if kind == "U" else f"{kind}({k})")
        costs.append(cost)
        return tid

    for k in range(n - 1):
        new_task("P", k, k, float(n - k))
        for j in range(k + 1, n):
            new_task("U", k, j, 2.0 * (n - k))

    edges: list[tuple[int, int, float]] = []
    for k in range(n - 1):
        pivot = ids[("P", k, k)]
        for j in range(k + 1, n):
            edges.append((pivot, ids[("U", k, j)], volume))
        if k + 1 < n - 1:
            edges.append((ids[("U", k, k + 1)], ids[("P", k + 1, k + 1)], volume))
            for j in range(k + 2, n):
                edges.append((ids[("U", k, j)], ids[("U", k + 1, j)], volume))
    graph = TaskGraph(len(names), edges, names=names)
    return Workload("gaussian_elimination", graph, np.asarray(costs))


def fft_butterfly(num_points: int, volume: float = 100.0) -> Workload:
    """The butterfly dataflow of an FFT over ``num_points`` (a power of 2).

    ``log2(n) + 1`` layers of ``n`` tasks; the task ``(l+1, i)`` consumes
    ``(l, i)`` and its butterfly partner ``(l, i xor 2^l)``.
    """
    n = int(num_points)
    if n < 2 or n & (n - 1):
        raise InvalidGraphError("num_points must be a power of two >= 2")
    p = n.bit_length() - 1
    names = [f"fft({l},{i})" for l in range(p + 1) for i in range(n)]

    def tid(l: int, i: int) -> int:
        return l * n + i

    edges = []
    for l in range(p):
        for i in range(n):
            edges.append((tid(l, i), tid(l + 1, i), volume))
            edges.append((tid(l, i), tid(l + 1, i ^ (1 << l)), volume))
    graph = TaskGraph((p + 1) * n, edges, names=names)
    return Workload("fft_butterfly", graph, np.full(graph.num_tasks, 10.0))


def stencil_1d(cells: int, steps: int = 4, volume: float = 100.0) -> Workload:
    """``steps`` Jacobi sweeps over a 1-D domain of ``cells`` points.

    Task ``(s, c)`` reads ``(s-1, c-1..c+1)``; the resulting DAG is the
    classic wavefront/stencil pipeline (the paper's "Laplace"-style
    workload family).
    """
    if cells < 1 or steps < 1:
        raise InvalidGraphError("need cells >= 1 and steps >= 1")
    names = [f"st({s},{c})" for s in range(steps) for c in range(cells)]

    def tid(s: int, c: int) -> int:
        return s * cells + c

    edges = []
    for s in range(1, steps):
        for c in range(cells):
            for dc in (-1, 0, 1):
                cc = c + dc
                if 0 <= cc < cells:
                    edges.append((tid(s - 1, cc), tid(s, c), volume))
    graph = TaskGraph(steps * cells, edges, names=names)
    return Workload("stencil_1d", graph, np.full(graph.num_tasks, 10.0))


def tiled_cholesky(num_tiles: int, volume: float = 100.0) -> Workload:
    """Right-looking tiled Cholesky factorization over ``num_tiles`` tiles.

    Tasks POTRF(k), TRSM(k, i), SYRK(k, i) and GEMM(k, j, i) with the
    standard dependency pattern; base costs follow the kernels' flop ratios
    (GEMM:SYRK:TRSM:POTRF ~ 2:1:1:1/3 per tile).
    """
    nt = int(num_tiles)
    if nt < 1:
        raise InvalidGraphError("tiled_cholesky needs num_tiles >= 1")
    ids: dict[tuple, int] = {}
    names: list[str] = []
    costs: list[float] = []

    def new_task(key: tuple, name: str, cost: float) -> int:
        tid = len(names)
        ids[key] = tid
        names.append(name)
        costs.append(cost)
        return tid

    edges: list[tuple[int, int, float]] = []

    def add_edge(src_key: tuple, dst: int) -> None:
        edges.append((ids[src_key], dst, volume))

    for k in range(nt):
        potrf = new_task(("POTRF", k), f"POTRF({k})", 1.0)
        if k > 0:
            add_edge(("SYRK", k - 1, k), potrf)
        for i in range(k + 1, nt):
            trsm = new_task(("TRSM", k, i), f"TRSM({k},{i})", 3.0)
            add_edge(("POTRF", k), trsm)
            if k > 0:
                add_edge(("GEMM", k - 1, k, i), trsm)
        for i in range(k + 1, nt):
            syrk = new_task(("SYRK", k, i), f"SYRK({k},{i})", 3.0)
            add_edge(("TRSM", k, i), syrk)
            if k > 0:
                add_edge(("SYRK", k - 1, i), syrk)
            for j in range(k + 1, i):
                gemm = new_task(("GEMM", k, j, i), f"GEMM({k},{j},{i})", 6.0)
                add_edge(("TRSM", k, i), gemm)
                add_edge(("TRSM", k, j), gemm)
                if k > 0:
                    add_edge(("GEMM", k - 1, j, i), gemm)
    graph = TaskGraph(len(names), edges, names=names)
    return Workload("tiled_cholesky", graph, np.asarray(costs))


ALL_WORKLOADS = {
    "gaussian_elimination": gaussian_elimination,
    "fft_butterfly": fft_butterfly,
    "stencil_1d": stencil_1d,
    "tiled_cholesky": tiled_cholesky,
}
