"""Structural feature extraction for task graphs.

Scheduling-research utilities: quantify the shape of a DAG (depth, width,
degree profile, communication-to-computation ratio, parallelism profile)
so experimental results can be conditioned on workload structure.  Used by
the examples and handy when debugging why an instance behaves unusually.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dag.analysis import asap_levels, layer_width, min_critical_path, width
from repro.dag.graph import TaskGraph
from repro.platform.instance import ProblemInstance


@dataclass(frozen=True)
class GraphFeatures:
    """Structural summary of one task graph."""

    num_tasks: int
    num_edges: int
    depth: int  # longest chain (hops)
    width: int  # maximum antichain ω
    layer_width: int
    num_entries: int
    num_exits: int
    mean_in_degree: float
    max_in_degree: int
    mean_out_degree: float
    max_out_degree: int
    edge_density: float  # e / (v(v-1)/2)
    mean_volume: float

    @property
    def parallelism(self) -> float:
        """Average parallelism ``v / (depth+1)`` — tasks per level."""
        return self.num_tasks / (self.depth + 1)


def graph_features(graph: TaskGraph) -> GraphFeatures:
    """Compute every structural feature of ``graph``."""
    v = graph.num_tasks
    indeg = [graph.in_degree(t) for t in range(v)]
    outdeg = [graph.out_degree(t) for t in range(v)]
    depth = int(asap_levels(graph).max()) if v else 0
    volumes = [vol for _u, _v, vol in graph.edges()]
    return GraphFeatures(
        num_tasks=v,
        num_edges=graph.num_edges,
        depth=depth,
        width=width(graph),
        layer_width=layer_width(graph),
        num_entries=len(graph.entry_tasks),
        num_exits=len(graph.exit_tasks),
        mean_in_degree=float(np.mean(indeg)),
        max_in_degree=int(np.max(indeg)),
        mean_out_degree=float(np.mean(outdeg)),
        max_out_degree=int(np.max(outdeg)),
        edge_density=(
            graph.num_edges / (v * (v - 1) / 2) if v > 1 else 0.0
        ),
        mean_volume=float(np.mean(volumes)) if volumes else 0.0,
    )


def communication_to_computation_ratio(instance: ProblemInstance) -> float:
    """CCR: mean communication cost over mean computation cost.

    Related to (roughly the inverse of) the paper's granularity, but using
    *mean* rather than slowest costs — the convention of the HEFT
    literature, provided for cross-paper comparability.
    """
    graph = instance.graph
    if graph.num_edges == 0:
        return 0.0
    mean_comm = float(
        np.mean([instance.mean_edge_weight(u, v) for u, v, _vol in graph.edges()])
    )
    mean_comp = float(np.mean(instance.mean_exec))
    return mean_comm / mean_comp


def parallelism_profile(graph: TaskGraph) -> list[int]:
    """Tasks per ASAP level, entry level first — the graph's 'waistline'."""
    depth = asap_levels(graph)
    counts = np.bincount(depth, minlength=int(depth.max()) + 1 if len(depth) else 1)
    return [int(c) for c in counts]


def ideal_speedup(instance: ProblemInstance) -> float:
    """Total minimal work divided by the minimal critical path.

    The classic upper bound on achievable speedup for this DAG; a schedule
    cannot use more parallelism than the graph offers.
    """
    total_work = float(instance.min_exec.sum())
    return total_work / min_critical_path(instance)
