"""Random task-graph generators.

:func:`random_dag` reproduces the paper's experimental workload (§6):
a DAG whose task count is drawn from ``[80, 120]``, whose per-task degree
target lies in ``[1, 3]`` and whose edge volumes are uniform in
``[50, 150]``.  The remaining generators build the structured families used
by the theory (fork/out-forest graphs of Proposition 5.1) and by tests.

All generators are deterministic given a seed.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.dag.graph import TaskGraph
from repro.utils.errors import InvalidGraphError
from repro.utils.rng import RngLike, as_rng


def _draw_volume(rng: np.random.Generator, volume_range: tuple[float, float]) -> float:
    lo, hi = volume_range
    if not (0 <= lo <= hi):
        raise InvalidGraphError(f"bad volume range {volume_range}")
    return float(rng.uniform(lo, hi))


def random_dag(
    num_tasks: int,
    degree_range: tuple[int, int] = (1, 3),
    volume_range: tuple[float, float] = (50.0, 150.0),
    window: Optional[int] = None,
    rng: RngLike = None,
) -> TaskGraph:
    """The paper's random DAG: per-task in-degree drawn from ``degree_range``.

    Tasks are created in topological order; task ``i > 0`` receives
    ``min(i, U[degree_range])`` distinct predecessors sampled uniformly from
    the ``window`` most recent earlier tasks (all earlier tasks when
    ``window`` is ``None``).  Average out-degree therefore matches average
    in-degree, landing both in the paper's ``[1, 3]`` band.
    """
    lo, hi = degree_range
    if not (0 <= lo <= hi):
        raise InvalidGraphError(f"bad degree range {degree_range}")
    if num_tasks < 1:
        raise InvalidGraphError("num_tasks must be >= 1")
    gen = as_rng(rng)
    edges: list[tuple[int, int, float]] = []
    for i in range(1, num_tasks):
        d = int(gen.integers(lo, hi + 1))
        d = min(d, i)
        if d == 0:
            continue
        first = 0 if window is None else max(0, i - window)
        candidates = np.arange(first, i)
        preds = gen.choice(candidates, size=d, replace=False)
        for p in sorted(int(x) for x in preds):
            edges.append((p, i, _draw_volume(gen, volume_range)))
    return TaskGraph(num_tasks, edges)


def layered_dag(
    num_layers: int,
    width_range: tuple[int, int] = (2, 6),
    degree_range: tuple[int, int] = (1, 3),
    volume_range: tuple[float, float] = (50.0, 150.0),
    rng: RngLike = None,
) -> TaskGraph:
    """A layer-by-layer DAG: each task draws predecessors from the previous layer.

    Produces wide graphs with many entry tasks — a good stress test for the
    free-task priority queue and the replica placement logic.
    """
    if num_layers < 1:
        raise InvalidGraphError("need at least one layer")
    gen = as_rng(rng)
    w_lo, w_hi = width_range
    if not (1 <= w_lo <= w_hi):
        raise InvalidGraphError(f"bad width range {width_range}")
    d_lo, d_hi = degree_range
    if not (1 <= d_lo <= d_hi):
        raise InvalidGraphError(f"bad degree range {degree_range}")

    layers: list[list[int]] = []
    next_id = 0
    for _ in range(num_layers):
        w = int(gen.integers(w_lo, w_hi + 1))
        layers.append(list(range(next_id, next_id + w)))
        next_id += w

    edges: list[tuple[int, int, float]] = []
    for prev, cur in zip(layers, layers[1:]):
        fed: set[int] = set()
        for t in cur:
            d = min(int(gen.integers(d_lo, d_hi + 1)), len(prev))
            preds = gen.choice(np.asarray(prev), size=d, replace=False)
            for p in sorted(int(x) for x in preds):
                edges.append((p, t, _draw_volume(gen, volume_range)))
                fed.add(p)
        # Guarantee every task in the previous layer has a successor so the
        # graph has a single "wavefront" shape rather than dangling exits.
        for p in prev:
            if p not in fed:
                t = int(gen.choice(np.asarray(cur)))
                edges.append((p, t, _draw_volume(gen, volume_range)))
    return TaskGraph(next_id, edges)


def random_out_forest(
    num_tasks: int,
    root_probability: float = 0.1,
    volume_range: tuple[float, float] = (50.0, 150.0),
    rng: RngLike = None,
) -> TaskGraph:
    """A random out-forest: every task has in-degree at most one.

    This is the graph family of Proposition 5.1 (CAFT sends at most
    ``e(ε+1)`` messages).  Task ``i > 0`` becomes a new root with
    probability ``root_probability``, otherwise it attaches to a uniformly
    chosen earlier task.
    """
    if not (0.0 <= root_probability <= 1.0):
        raise InvalidGraphError("root_probability must be in [0, 1]")
    gen = as_rng(rng)
    edges = []
    for i in range(1, num_tasks):
        if gen.random() < root_probability:
            continue
        parent = int(gen.integers(0, i))
        edges.append((parent, i, _draw_volume(gen, volume_range)))
    graph = TaskGraph(num_tasks, edges)
    assert graph.is_out_forest()
    return graph


# ----------------------------------------------------------------------
# Deterministic structured families
# ----------------------------------------------------------------------
def chain(num_tasks: int, volume: float = 100.0) -> TaskGraph:
    """A linear chain ``t0 -> t1 -> ... -> t(n-1)``."""
    return TaskGraph(num_tasks, [(i, i + 1, volume) for i in range(num_tasks - 1)])


def fork(num_children: int, volume: float = 100.0) -> TaskGraph:
    """One root feeding ``num_children`` leaves (an out-tree of depth 1)."""
    if num_children < 1:
        raise InvalidGraphError("fork needs at least one child")
    return TaskGraph(
        num_children + 1, [(0, i, volume) for i in range(1, num_children + 1)]
    )


def join(num_parents: int, volume: float = 100.0) -> TaskGraph:
    """``num_parents`` sources feeding one sink (max fan-in stress test)."""
    if num_parents < 1:
        raise InvalidGraphError("join needs at least one parent")
    return TaskGraph(
        num_parents + 1,
        [(i, num_parents, volume) for i in range(num_parents)],
    )


def fork_join(num_middle: int, volume: float = 100.0) -> TaskGraph:
    """Source -> ``num_middle`` parallel tasks -> sink (a diamond)."""
    if num_middle < 1:
        raise InvalidGraphError("fork_join needs at least one middle task")
    edges = [(0, i, volume) for i in range(1, num_middle + 1)]
    sink = num_middle + 1
    edges += [(i, sink, volume) for i in range(1, num_middle + 1)]
    return TaskGraph(num_middle + 2, edges)


def out_tree(depth: int, branching: int = 2, volume: float = 100.0) -> TaskGraph:
    """A complete out-tree: in-degree one everywhere (Prop. 5.1 family)."""
    if depth < 0 or branching < 1:
        raise InvalidGraphError("need depth >= 0 and branching >= 1")
    edges: list[tuple[int, int, float]] = []
    frontier = [0]
    next_id = 1
    for _ in range(depth):
        new_frontier = []
        for parent in frontier:
            for _ in range(branching):
                edges.append((parent, next_id, volume))
                new_frontier.append(next_id)
                next_id += 1
        frontier = new_frontier
    return TaskGraph(next_id, edges)


def in_tree(depth: int, branching: int = 2, volume: float = 100.0) -> TaskGraph:
    """A complete in-tree (reduction): the mirror image of :func:`out_tree`."""
    tree = out_tree(depth, branching, volume)
    v = tree.num_tasks
    edges = [(v - 1 - b, v - 1 - a, vol) for a, b, vol in tree.edges()]
    return TaskGraph(v, edges)
