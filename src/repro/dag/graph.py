"""Weighted directed acyclic task graphs (the paper's ``G = (V, E)``).

Tasks are integers ``0 .. num_tasks-1``.  Every edge ``(u, v)`` carries the
data volume ``V(u, v)`` the paper uses to derive communication costs
``W(u, v) = V(u, v) * d(Pk, Ph)``.

The class is deliberately plain: adjacency tuples plus a volume table.
Schedulers traverse predecessor/successor lists in tight loops, so lookups
are O(1) and allocation-free.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional, Sequence

import numpy as np

from repro.utils.errors import InvalidGraphError

Edge = tuple[int, int]

#: CSR adjacency view: ``(indptr, indices, volumes)`` ndarrays.
CsrView = tuple["np.ndarray", "np.ndarray", "np.ndarray"]


class TaskGraph:
    """An immutable weighted DAG of tasks.

    Parameters
    ----------
    num_tasks:
        Number of vertices ``v``; tasks are ``0 .. v-1``.
    edges:
        Iterable of ``(u, v, volume)`` triples.  ``volume`` is the amount of
        data task ``u`` sends to task ``v`` (``>= 0``; zero volume models a
        pure precedence constraint).
    names:
        Optional human-readable task names (used by Gantt rendering and
        examples); defaults to ``"t0", "t1", ...``.
    """

    __slots__ = (
        "_num_tasks",
        "_preds",
        "_succs",
        "_volume",
        "_names",
        "_topo",
        "_succ_csr",
        "_pred_csr",
        "_generations",
        "_analysis_cache",
    )

    def __init__(
        self,
        num_tasks: int,
        edges: Iterable[tuple[int, int, float]],
        names: Optional[Sequence[str]] = None,
    ) -> None:
        if num_tasks <= 0:
            raise InvalidGraphError("a task graph needs at least one task")
        self._num_tasks = int(num_tasks)

        preds: list[list[int]] = [[] for _ in range(num_tasks)]
        succs: list[list[int]] = [[] for _ in range(num_tasks)]
        volume: dict[Edge, float] = {}
        for u, v, vol in edges:
            u, v = int(u), int(v)
            if not (0 <= u < num_tasks and 0 <= v < num_tasks):
                raise InvalidGraphError(f"edge ({u}, {v}) out of range for v={num_tasks}")
            if u == v:
                raise InvalidGraphError(f"self-loop on task {u}")
            if (u, v) in volume:
                raise InvalidGraphError(f"duplicate edge ({u}, {v})")
            vol = float(vol)
            if vol < 0:
                raise InvalidGraphError(f"negative volume on edge ({u}, {v})")
            volume[(u, v)] = vol
            succs[u].append(v)
            preds[v].append(u)

        self._preds = tuple(tuple(p) for p in preds)
        self._succs = tuple(tuple(s) for s in succs)
        self._volume = volume

        if names is None:
            self._names = tuple(f"t{i}" for i in range(num_tasks))
        else:
            if len(names) != num_tasks:
                raise InvalidGraphError("names length must equal num_tasks")
            self._names = tuple(str(n) for n in names)

        self._topo = self._toposort()
        # Lazily-built NumPy views (CSR adjacency, topological generations)
        # shared by the vectorized analysis and the placement fast path.
        self._succ_csr: Optional[CsrView] = None
        self._pred_csr: Optional[CsrView] = None
        self._generations: Optional[tuple] = None
        self._analysis_cache: dict = {}

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def num_tasks(self) -> int:
        """``v``, the number of tasks."""
        return self._num_tasks

    @property
    def num_edges(self) -> int:
        """``e``, the number of precedence edges."""
        return len(self._volume)

    @property
    def names(self) -> tuple[str, ...]:
        return self._names

    def preds(self, task: int) -> tuple[int, ...]:
        """Immediate predecessors ``Γ⁻(task)``."""
        return self._preds[task]

    def succs(self, task: int) -> tuple[int, ...]:
        """Immediate successors ``Γ⁺(task)``."""
        return self._succs[task]

    def in_degree(self, task: int) -> int:
        return len(self._preds[task])

    def out_degree(self, task: int) -> int:
        return len(self._succs[task])

    def volume(self, u: int, v: int) -> float:
        """Data volume ``V(u, v)`` carried by edge ``(u, v)``."""
        try:
            return self._volume[(u, v)]
        except KeyError:
            raise InvalidGraphError(f"no edge ({u}, {v})") from None

    def has_edge(self, u: int, v: int) -> bool:
        return (u, v) in self._volume

    def edges(self) -> Iterator[tuple[int, int, float]]:
        """Iterate ``(u, v, volume)`` triples in insertion order."""
        for (u, v), vol in self._volume.items():
            yield u, v, vol

    @property
    def entry_tasks(self) -> tuple[int, ...]:
        """Tasks with no predecessor, in index order."""
        return tuple(t for t in range(self._num_tasks) if not self._preds[t])

    @property
    def exit_tasks(self) -> tuple[int, ...]:
        """Tasks with no successor, in index order."""
        return tuple(t for t in range(self._num_tasks) if not self._succs[t])

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    def _toposort(self) -> tuple[int, ...]:
        indeg = [len(p) for p in self._preds]
        stack = [t for t in range(self._num_tasks) if indeg[t] == 0]
        # Reverse so pops yield ascending task ids (deterministic order).
        stack.sort(reverse=True)
        order: list[int] = []
        while stack:
            t = stack.pop()
            order.append(t)
            ready: list[int] = []
            for s in self._succs[t]:
                indeg[s] -= 1
                if indeg[s] == 0:
                    ready.append(s)
            for s in sorted(ready, reverse=True):
                stack.append(s)
        if len(order) != self._num_tasks:
            raise InvalidGraphError("the task graph contains a cycle")
        return tuple(order)

    def topological_order(self) -> tuple[int, ...]:
        """A deterministic topological order (smallest-id-first Kahn)."""
        return self._topo

    # ------------------------------------------------------------------
    # NumPy views (fast-path substrate)
    # ------------------------------------------------------------------
    def _build_csr(self, adjacency, volume_key) -> CsrView:
        v = self._num_tasks
        counts = np.fromiter((len(a) for a in adjacency), dtype=np.int64, count=v)
        indptr = np.zeros(v + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        total = int(indptr[-1])
        indices = np.empty(total, dtype=np.int64)
        volumes = np.empty(total, dtype=np.float64)
        pos = 0
        vol = self._volume
        for t in range(v):
            for other in adjacency[t]:
                indices[pos] = other
                volumes[pos] = vol[volume_key(t, other)]
                pos += 1
        indices.setflags(write=False)
        volumes.setflags(write=False)
        indptr.setflags(write=False)
        return indptr, indices, volumes

    @property
    def succ_csr(self) -> CsrView:
        """CSR view of successors: ``(indptr, indices, volumes)``.

        ``indices[indptr[t]:indptr[t+1]]`` are the successors of ``t`` in
        edge-insertion order; ``volumes`` aligns with ``indices`` and holds
        ``V(t, s)``.  Built once and cached (the graph is immutable).
        """
        if self._succ_csr is None:
            self._succ_csr = self._build_csr(self._succs, lambda t, s: (t, s))
        return self._succ_csr

    @property
    def pred_csr(self) -> CsrView:
        """CSR view of predecessors: ``(indptr, indices, volumes)``.

        ``indices[indptr[t]:indptr[t+1]]`` are the predecessors of ``t``;
        ``volumes`` holds ``V(p, t)``.
        """
        if self._pred_csr is None:
            self._pred_csr = self._build_csr(self._preds, lambda t, p: (p, t))
        return self._pred_csr

    def generations(self) -> tuple[np.ndarray, ...]:
        """Tasks grouped by unit-cost ASAP depth (topological generations).

        ``generations()[d]`` is the ascending array of tasks whose longest
        incoming path has ``d`` edges.  Every task's predecessors live in
        strictly earlier generations, which is what lets level propagation
        run as one vectorized pass per generation instead of per task.
        """
        if self._generations is None:
            depth = [0] * self._num_tasks
            for t in self._topo:
                preds = self._preds[t]
                if preds:
                    depth[t] = 1 + max(depth[p] for p in preds)
            buckets: dict[int, list[int]] = {}
            for t, d in enumerate(depth):
                buckets.setdefault(d, []).append(t)
            self._generations = tuple(
                np.asarray(buckets[d], dtype=np.int64) for d in range(len(buckets))
            )
        return self._generations

    def is_out_forest(self) -> bool:
        """True iff every task has in-degree at most one (paper Prop. 5.1)."""
        return all(len(p) <= 1 for p in self._preds)

    def is_in_forest(self) -> bool:
        """True iff every task has out-degree at most one."""
        return all(len(s) <= 1 for s in self._succs)

    # ------------------------------------------------------------------
    # Interop / dunder
    # ------------------------------------------------------------------
    def to_networkx(self):
        """Export to a :class:`networkx.DiGraph` with ``volume`` edge attrs."""
        import networkx as nx

        g = nx.DiGraph()
        g.add_nodes_from(range(self._num_tasks))
        for u, v, vol in self.edges():
            g.add_edge(u, v, volume=vol)
        return g

    @classmethod
    def from_networkx(cls, g, volume_attr: str = "volume") -> "TaskGraph":
        """Build from a :class:`networkx.DiGraph` whose nodes are 0..v-1."""
        nodes = sorted(g.nodes())
        if nodes != list(range(len(nodes))):
            raise InvalidGraphError("networkx nodes must be 0..v-1 integers")
        edges = [(u, v, float(d.get(volume_attr, 0.0))) for u, v, d in g.edges(data=True)]
        return cls(len(nodes), edges)

    def __repr__(self) -> str:
        return f"TaskGraph(v={self._num_tasks}, e={self.num_edges})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TaskGraph):
            return NotImplemented
        return (
            self._num_tasks == other._num_tasks
            and self._volume == other._volume
            and self._names == other._names
        )

    def __hash__(self) -> int:  # pragma: no cover - identity hashing is enough
        return object.__hash__(self)
