"""Static DAG analysis: levels, critical paths, width, degree statistics.

These implement the quantities the paper's schedulers are built on:

* **bottom level** ``bl(t)`` — longest path from ``t`` to an exit node,
  *including* ``t``'s execution time (paper §5: "the bottom level of an exit
  node is equal to its execution time");
* **top level** ``tl(t)`` — longest path from an entry node to ``t``,
  *excluding* ``t``'s execution time (entry nodes have ``tl = 0``);
* path lengths use the **average** execution cost over processors and the
  **average** communication cost over distinct processor pairs (paper §5,
  following HEFT);
* ``width(G)`` — the maximum number of pairwise independent tasks ``ω``,
  which appears in the complexity bounds (Theorem 5.1);
* the minimal critical path used as the SLR normalizer in the experiments.
"""

from __future__ import annotations

import numpy as np

from repro.dag.graph import TaskGraph
from repro.platform.instance import ProblemInstance


def bottom_levels(instance: ProblemInstance) -> np.ndarray:
    """``bl(t)`` for every task, with mean execution/communication costs."""
    graph = instance.graph
    mean_exec = instance.mean_exec
    bl = np.zeros(graph.num_tasks)
    for t in reversed(graph.topological_order()):
        succs = graph.succs(t)
        if not succs:
            bl[t] = mean_exec[t]
        else:
            bl[t] = mean_exec[t] + max(
                instance.mean_edge_weight(t, s) + bl[s] for s in succs
            )
    return bl


def top_levels(instance: ProblemInstance) -> np.ndarray:
    """``tl(t)`` for every task, with mean execution/communication costs."""
    graph = instance.graph
    mean_exec = instance.mean_exec
    tl = np.zeros(graph.num_tasks)
    for t in graph.topological_order():
        preds = graph.preds(t)
        if preds:
            tl[t] = max(
                tl[p] + mean_exec[p] + instance.mean_edge_weight(p, t) for p in preds
            )
    return tl


def priorities(instance: ProblemInstance) -> np.ndarray:
    """Static task priorities ``tl(t) + bl(t)`` (paper §5)."""
    return top_levels(instance) + bottom_levels(instance)


def critical_path_length(instance: ProblemInstance) -> float:
    """Length of the critical path with mean costs: ``max_t tl(t)+bl(t)``."""
    return float(priorities(instance).max())


def min_critical_path(instance: ProblemInstance) -> float:
    """Critical path with per-task *minimum* execution cost, zero comms.

    This is the classic SLR denominator (Topcuoglu et al.): no schedule can
    beat it, so ``latency / min_critical_path >= 1``.  We use it as the
    "normalized latency" scale for the figures (the paper plots normalized
    latency without defining the normalizer; see DESIGN.md).
    """
    graph = instance.graph
    min_exec = instance.min_exec
    cp = np.zeros(graph.num_tasks)
    for t in reversed(graph.topological_order()):
        succs = graph.succs(t)
        tail = max((cp[s] for s in succs), default=0.0)
        cp[t] = min_exec[t] + tail
    return float(cp.max())


def alap_levels(instance: ProblemInstance) -> np.ndarray:
    """As-late-as-possible start levels with mean costs.

    ``alap(t) = CP − bl(t)``: the latest a task may start (with average
    costs and unlimited processors) without stretching the critical path.
    This is the "latest start-time (bottom-up)" quantity FTBAR's schedule
    pressure builds on (paper §4.1).
    """
    bl = bottom_levels(instance)
    # the critical path through t is tl(t)+bl(t); the global CP is their max
    cp = float((top_levels(instance) + bl).max())
    return cp - bl


def slack(instance: ProblemInstance) -> np.ndarray:
    """Scheduling slack per task: ``alap(t) − tl(t)`` (0 on critical paths).

    Tasks with zero slack form the critical path(s); large slack means the
    task can be delayed freely — useful for diagnosing which tasks a
    scheduler may safely push aside.
    """
    return alap_levels(instance) - top_levels(instance)


def width(graph: TaskGraph) -> int:
    """``ω``: the maximum number of pairwise independent tasks.

    Computed exactly via Dilworth's theorem: the maximum antichain of the
    precedence *poset* equals ``v`` minus the size of a maximum matching in
    the bipartite graph of the transitive closure (minimum chain cover).
    Cost is polynomial and perfectly fine at the paper's graph sizes.
    """
    import networkx as nx

    v = graph.num_tasks
    closure: list[set[int]] = [set() for _ in range(v)]
    for t in reversed(graph.topological_order()):
        for s in graph.succs(t):
            closure[t].add(s)
            closure[t] |= closure[s]

    bip = nx.Graph()
    left = [("L", t) for t in range(v)]
    right = [("R", t) for t in range(v)]
    bip.add_nodes_from(left, bipartite=0)
    bip.add_nodes_from(right, bipartite=1)
    for t in range(v):
        for s in closure[t]:
            bip.add_edge(("L", t), ("R", s))
    matching = nx.bipartite.maximum_matching(bip, top_nodes=left)
    matched_pairs = sum(1 for node in matching if node[0] == "L")
    return v - matched_pairs


def asap_levels(graph: TaskGraph) -> np.ndarray:
    """Unit-cost as-soon-as-possible depth of each task (0 for entries)."""
    depth = np.zeros(graph.num_tasks, dtype=int)
    for t in graph.topological_order():
        preds = graph.preds(t)
        if preds:
            depth[t] = 1 + max(depth[p] for p in preds)
    return depth


def layer_width(graph: TaskGraph) -> int:
    """Maximum number of tasks sharing an ASAP level (cheap lower bound on ω)."""
    depth = asap_levels(graph)
    _levels, counts = np.unique(depth, return_counts=True)
    return int(counts.max())


def degree_stats(graph: TaskGraph) -> dict[str, float]:
    """Mean/max in- and out-degree; handy for generator sanity checks."""
    indeg = [graph.in_degree(t) for t in range(graph.num_tasks)]
    outdeg = [graph.out_degree(t) for t in range(graph.num_tasks)]
    return {
        "mean_in": float(np.mean(indeg)),
        "max_in": float(np.max(indeg)),
        "mean_out": float(np.mean(outdeg)),
        "max_out": float(np.max(outdeg)),
    }
