"""Static DAG analysis: levels, critical paths, width, degree statistics.

These implement the quantities the paper's schedulers are built on:

* **bottom level** ``bl(t)`` — longest path from ``t`` to an exit node,
  *including* ``t``'s execution time (paper §5: "the bottom level of an exit
  node is equal to its execution time");
* **top level** ``tl(t)`` — longest path from an entry node to ``t``,
  *excluding* ``t``'s execution time (entry nodes have ``tl = 0``);
* path lengths use the **average** execution cost over processors and the
  **average** communication cost over distinct processor pairs (paper §5,
  following HEFT);
* ``width(G)`` — the maximum number of pairwise independent tasks ``ω``,
  which appears in the complexity bounds (Theorem 5.1);
* the minimal critical path used as the SLR normalizer in the experiments.
"""

from __future__ import annotations

import numpy as np

from repro.dag.graph import TaskGraph
from repro.platform.instance import ProblemInstance


def _level_segments(graph: TaskGraph, direction: str):
    """Per-generation CSR gather plan for vectorized level propagation.

    For each topological generation, returns ``(tasks, edge_idx, offsets)``
    where ``tasks`` are the generation's tasks that have at least one
    neighbour in ``direction`` (``"succ"`` or ``"pred"``), ``edge_idx``
    gathers their CSR edge rows contiguously, and ``offsets`` marks each
    task's segment start (ready for ``np.maximum.reduceat``).  Cached on
    the graph — the plan only depends on the immutable structure.
    """
    key = ("levels", direction)
    plan = graph._analysis_cache.get(key)
    if plan is not None:
        return plan
    indptr, _indices, _volumes = (
        graph.succ_csr if direction == "succ" else graph.pred_csr
    )
    plan = []
    for tasks in graph.generations():
        counts = indptr[tasks + 1] - indptr[tasks]
        has = tasks[counts > 0]
        if has.size == 0:
            plan.append(None)
            continue
        cnt = counts[counts > 0]
        offsets = np.zeros(cnt.size, dtype=np.int64)
        np.cumsum(cnt[:-1], out=offsets[1:])
        total = int(cnt.sum())
        edge_idx = (
            np.arange(total, dtype=np.int64)
            - np.repeat(offsets, cnt)
            + np.repeat(indptr[has], cnt)
        )
        plan.append((has, edge_idx, offsets))
    graph._analysis_cache[key] = plan
    return plan


def bottom_levels(instance: ProblemInstance) -> np.ndarray:
    """``bl(t)`` for every task, with mean execution/communication costs.

    Vectorized over topological generations: each reverse pass reduces the
    per-edge contributions ``w(t, s) + bl(s)`` with ``np.maximum.reduceat``
    over the CSR successor segments, producing the exact same values as the
    per-task recurrence.
    """
    graph = instance.graph
    mean_exec = instance.mean_exec
    _indptr, indices, volumes = graph.succ_csr
    w = volumes * instance.platform.mean_delay()
    bl = mean_exec.astype(np.float64, copy=True)
    for plan in reversed(_level_segments(graph, "succ")):
        if plan is None:
            continue
        has, edge_idx, offsets = plan
        contrib = w[edge_idx] + bl[indices[edge_idx]]
        bl[has] = mean_exec[has] + np.maximum.reduceat(contrib, offsets)
    return bl


def top_levels(instance: ProblemInstance) -> np.ndarray:
    """``tl(t)`` for every task, with mean execution/communication costs.

    Forward counterpart of :func:`bottom_levels`, propagated one topological
    generation at a time (entry tasks keep ``tl = 0``).
    """
    graph = instance.graph
    mean_exec = instance.mean_exec
    _indptr, indices, volumes = graph.pred_csr
    w = volumes * instance.platform.mean_delay()
    tl = np.zeros(graph.num_tasks)
    for plan in _level_segments(graph, "pred"):
        if plan is None:
            continue
        has, edge_idx, offsets = plan
        pidx = indices[edge_idx]
        contrib = tl[pidx] + mean_exec[pidx] + w[edge_idx]
        tl[has] = np.maximum.reduceat(contrib, offsets)
    return tl


def priorities(instance: ProblemInstance) -> np.ndarray:
    """Static task priorities ``tl(t) + bl(t)`` (paper §5)."""
    return top_levels(instance) + bottom_levels(instance)


def critical_path_length(instance: ProblemInstance) -> float:
    """Length of the critical path with mean costs: ``max_t tl(t)+bl(t)``."""
    return float(priorities(instance).max())


def min_critical_path(instance: ProblemInstance) -> float:
    """Critical path with per-task *minimum* execution cost, zero comms.

    This is the classic SLR denominator (Topcuoglu et al.): no schedule can
    beat it, so ``latency / min_critical_path >= 1``.  We use it as the
    "normalized latency" scale for the figures (the paper plots normalized
    latency without defining the normalizer; see DESIGN.md).
    """
    graph = instance.graph
    min_exec = instance.min_exec
    _indptr, indices, _volumes = graph.succ_csr
    cp = min_exec.astype(np.float64, copy=True)
    for plan in reversed(_level_segments(graph, "succ")):
        if plan is None:
            continue
        has, edge_idx, offsets = plan
        tails = np.maximum.reduceat(cp[indices[edge_idx]], offsets)
        cp[has] = min_exec[has] + tails
    return float(cp.max())


def alap_levels(instance: ProblemInstance) -> np.ndarray:
    """As-late-as-possible start levels with mean costs.

    ``alap(t) = CP − bl(t)``: the latest a task may start (with average
    costs and unlimited processors) without stretching the critical path.
    This is the "latest start-time (bottom-up)" quantity FTBAR's schedule
    pressure builds on (paper §4.1).
    """
    bl = bottom_levels(instance)
    # the critical path through t is tl(t)+bl(t); the global CP is their max
    cp = float((top_levels(instance) + bl).max())
    return cp - bl


def slack(instance: ProblemInstance) -> np.ndarray:
    """Scheduling slack per task: ``alap(t) − tl(t)`` (0 on critical paths).

    Tasks with zero slack form the critical path(s); large slack means the
    task can be delayed freely — useful for diagnosing which tasks a
    scheduler may safely push aside.
    """
    return alap_levels(instance) - top_levels(instance)


def width(graph: TaskGraph) -> int:
    """``ω``: the maximum number of pairwise independent tasks.

    Computed exactly via Dilworth's theorem: the maximum antichain of the
    precedence *poset* equals ``v`` minus the size of a maximum matching in
    the bipartite graph of the transitive closure (minimum chain cover).
    Cost is polynomial and perfectly fine at the paper's graph sizes.
    """
    import networkx as nx

    v = graph.num_tasks
    closure: list[set[int]] = [set() for _ in range(v)]
    for t in reversed(graph.topological_order()):
        for s in graph.succs(t):
            closure[t].add(s)
            closure[t] |= closure[s]

    bip = nx.Graph()
    left = [("L", t) for t in range(v)]
    right = [("R", t) for t in range(v)]
    bip.add_nodes_from(left, bipartite=0)
    bip.add_nodes_from(right, bipartite=1)
    for t in range(v):
        for s in closure[t]:
            bip.add_edge(("L", t), ("R", s))
    matching = nx.bipartite.maximum_matching(bip, top_nodes=left)
    matched_pairs = sum(1 for node in matching if node[0] == "L")
    return v - matched_pairs


def asap_levels(graph: TaskGraph) -> np.ndarray:
    """Unit-cost as-soon-as-possible depth of each task (0 for entries)."""
    depth = np.zeros(graph.num_tasks, dtype=int)
    for level, tasks in enumerate(graph.generations()):
        depth[tasks] = level
    return depth


def layer_width(graph: TaskGraph) -> int:
    """Maximum number of tasks sharing an ASAP level (cheap lower bound on ω)."""
    depth = asap_levels(graph)
    _levels, counts = np.unique(depth, return_counts=True)
    return int(counts.max())


def degree_stats(graph: TaskGraph) -> dict[str, float]:
    """Mean/max in- and out-degree; handy for generator sanity checks."""
    indeg = [graph.in_degree(t) for t in range(graph.num_tasks)]
    outdeg = [graph.out_degree(t) for t in range(graph.num_tasks)]
    return {
        "mean_in": float(np.mean(indeg)),
        "max_in": float(np.max(indeg)),
        "mean_out": float(np.mean(outdeg)),
        "max_out": float(np.max(outdeg)),
    }
