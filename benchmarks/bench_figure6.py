"""Regenerates paper Figure 6: sweep B (1..10), m=20, eps=5, 3 crashes.

Panels (a) normalized latency + upper bounds + fault-free references,
(b) latency with 0 vs c crashes, (c) average overhead (%), plus message
counts.  Series are printed in the paper's layout and written to
results/figure6.csv.
"""

from benchmarks.conftest import run_figure_bench


def test_figure6(benchmark):
    run_figure_bench(benchmark, 6)
