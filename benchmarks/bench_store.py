"""Store-scaling guard: million-row load + streaming aggregation.

Builds the same synthetic campaign — ``REPRO_STORE_BENCH_ROWS`` flattened
rows (default 10^6), two algorithms per unit — into a JSONL store and a
columnar store, then measures, each in a fresh subprocess (so peak RSS
is the measurement, not this process's leftovers):

* **load**: open the store and count units — the resume/report entry
  cost.  JSONL parses every row; columnar reads the footer index plus
  the unsealed tail.
* **load + aggregate**: open the store and summarize ``norm_latency``
  per algorithm through ``stats.rep_series`` — the JSONL path streams
  rows, the columnar path runs the vectorized ``series_values`` fast
  path over sealed chunks.

Two guard series land in ``BENCH_fastpath.json`` (same append-only,
ratchet-proof median scheme as ``bench_guard``): ``guard-store-load-1e6``
and ``guard-store-agg-1e6``, comparable on (rows, cpus).  On top of the
self-thresholds the aggregate cell asserts the acceptance floor: the
columnar load+aggregate must run at least ``STORE_SPEEDUP_FLOOR`` x
faster than JSONL and in a fraction of its memory, and both backends
must report bit-identical aggregates.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_store.py -m guard -s
"""

from __future__ import annotations

import json
import os
import statistics
import subprocess
import sys
import time
from datetime import datetime, timezone

import pytest

from benchmarks.bench_fastpath import BENCH_LOG, append_bench_record
from benchmarks.bench_guard import GUARD_SLACK, GUARD_WINDOW
from repro.experiments.grid import unit_id_for
from repro.experiments.harness import RepResult

#: flattened rows per store (units x 2 algorithms); env-tunable for
#: quick local runs — records are only comparable at the same size
STORE_BENCH_ROWS = max(2, int(os.environ.get("REPRO_STORE_BENCH_ROWS", "1000000")))
#: acceptance floor: columnar load+aggregate vs JSONL at 10^6 rows
STORE_SPEEDUP_FLOOR = 5.0
#: columnar peak RSS must stay under this fraction of the JSONL peak
#: (chunk-bounded streaming vs whole-campaign materialization)
STORE_RSS_FRACTION = 1 / 3

_ALGOS = ("caft", "ftbar")
_GRANULARITIES = tuple(round(0.2 * i, 1) for i in range(1, 11))
_TAGS = {
    "config": "bench-store",
    "network": "oneport",
    "topology": "clique",
    "policy": "append",
}


class _SyntheticUnit:
    """The minimal unit surface ``RunStore.append`` consumes."""

    __slots__ = ("granularity", "rep")
    scenario = _TAGS

    def __init__(self, granularity: float, rep: int) -> None:
        self.granularity = granularity
        self.rep = rep

    @property
    def unit_id(self) -> str:
        return unit_id_for(
            _TAGS["config"], _TAGS["network"], _TAGS["topology"],
            _TAGS["policy"], self.granularity, self.rep,
        )


def _synthetic_result(granularity: float, rep: int) -> RepResult:
    base = 1.0 + (rep % 97) * 0.013 + granularity * 0.11
    failed = rep % 7 == 0

    def metrics(offset: float) -> dict:
        return {
            "norm_latency": base + offset,
            "norm_upper": base + offset + 0.5,
            "overhead_0crash": 0.1 * offset + 0.01,
            "messages": float(100 + rep % 13),
            "norm_crash": None if failed else base + offset + 0.2,
            "overhead_crash": None if failed else 0.3,
        }

    return RepResult(
        granularity=granularity,
        rep=rep,
        faultfree_norm={a: base * (1.0 + 0.1 * i) for i, a in enumerate(_ALGOS)},
        metrics={a: metrics(0.4 * i) for i, a in enumerate(_ALGOS)},
    )


def _fill(store, n_units: int) -> None:
    for i in range(n_units):
        g, rep = _GRANULARITIES[i % 10], i // 10
        store.append(_SyntheticUnit(g, rep), _synthetic_result(g, rep))
    store.close()


#: setup also runs in subprocesses: a fat parent heap would be inherited
#: as the forked children's ru_maxrss high-water mark and drown the signal
_FILL_SCRIPT = """\
import sys
from benchmarks.bench_store import _fill
from repro.experiments import ColumnarStore, RunStore

cls = ColumnarStore if sys.argv[2] == "columnar" else RunStore
_fill(cls(sys.argv[1]), int(sys.argv[3]))
"""

#: measured in a subprocess so ru_maxrss is this store's peak, nothing else's
_MEASURE_SCRIPT = """\
import json, resource, sys, time
from repro.experiments import open_store, rep_series
from repro.experiments.stats import summarize_series

t0 = time.perf_counter()
store = open_store(sys.argv[1])
n = len(store)
load_s = time.perf_counter() - t0
means = {}
if sys.argv[2] == "aggregate":
    for algo in ("caft", "ftbar"):
        series = [v for v in rep_series(store, algo, "norm_latency") if v == v]
        means[algo] = summarize_series(series).mean
elapsed = time.perf_counter() - t0
store.close()
rss_mb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0
print(json.dumps(
    {"n": n, "load_s": load_s, "elapsed": elapsed, "rss_mb": rss_mb,
     "means": means}
))
"""


def _run_child(script: str, *argv: str) -> str:
    env = os.environ.copy()
    env["PYTHONPATH"] = os.pathsep.join(p for p in sys.path if p)
    out = subprocess.run(
        [sys.executable, "-c", script, *argv],
        env=env,
        check=True,
        capture_output=True,
        text=True,
    )
    return out.stdout


def _measure(directory, mode: str) -> dict:
    return json.loads(_run_child(_MEASURE_SCRIPT, str(directory), mode))


def store_guard_threshold(bench: str, rows: int) -> float | None:
    """Regression ceiling for one store-guard series (same ratchet-proof
    median scheme as ``bench_guard.guard_threshold``, but comparable on
    the row count instead of graphs-per-point)."""
    if not os.path.exists(BENCH_LOG):
        return None
    try:
        with open(BENCH_LOG) as fh:
            series = json.load(fh)
    except json.JSONDecodeError:
        return None
    comparable = [
        rec["fast_s"]
        for rec in series
        if rec.get("bench") == bench
        and rec.get("rows") == rows
        and rec.get("cpus") == os.cpu_count()
        and isinstance(rec.get("fast_s"), (int, float))
        and not rec.get("regression")
    ]
    if not comparable:
        return None
    return statistics.median(comparable[-GUARD_WINDOW:]) * GUARD_SLACK


def _record(bench: str, fast_s: float, jsonl_s: float, extra: dict) -> bool:
    """Append one guard record; returns whether the self-gate tripped."""
    threshold = store_guard_threshold(bench, STORE_BENCH_ROWS)
    regressed = threshold is not None and fast_s > threshold
    record = {
        "bench": bench,
        "timestamp": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "rows": STORE_BENCH_ROWS,
        "cpus": os.cpu_count(),
        "fast_s": round(fast_s, 3),
        "jsonl_s": round(jsonl_s, 3),
        **extra,
    }
    if regressed:
        record["regression"] = True
    append_bench_record(record)
    if regressed:
        raise AssertionError(
            f"store regression: {bench} took {fast_s:.2f}s, threshold "
            f"{threshold:.2f}s ({GUARD_SLACK}x median of the last "
            f"{GUARD_WINDOW} comparable runs in {os.path.basename(BENCH_LOG)})"
        )
    return regressed


@pytest.mark.guard
def test_store_scaling_guard(tmp_path_factory):
    base = tmp_path_factory.mktemp("store-bench")
    n_units = STORE_BENCH_ROWS // len(_ALGOS)

    t0 = time.perf_counter()
    _run_child(_FILL_SCRIPT, str(base / "jsonl"), "jsonl", str(n_units))
    _run_child(_FILL_SCRIPT, str(base / "columnar"), "columnar", str(n_units))
    setup_s = time.perf_counter() - t0

    load_jsonl = _measure(base / "jsonl", "load")
    load_col = _measure(base / "columnar", "load")
    agg_jsonl = _measure(base / "jsonl", "aggregate")
    agg_col = _measure(base / "columnar", "aggregate")

    assert load_jsonl["n"] == load_col["n"] == n_units
    # The streaming fast path must agree with the JSONL rows exactly.
    assert agg_col["means"] == agg_jsonl["means"]

    rows = n_units * len(_ALGOS)
    speedup = agg_jsonl["elapsed"] / agg_col["elapsed"]
    print(
        f"\nstore bench ({rows} rows, setup {setup_s:.1f}s):\n"
        f"  load      jsonl {load_jsonl['elapsed']:7.2f}s "
        f"{load_jsonl['rss_mb']:7.0f}MB | columnar "
        f"{load_col['elapsed']:7.2f}s {load_col['rss_mb']:7.0f}MB\n"
        f"  load+agg  jsonl {agg_jsonl['elapsed']:7.2f}s "
        f"{agg_jsonl['rss_mb']:7.0f}MB | columnar "
        f"{agg_col['elapsed']:7.2f}s {agg_col['rss_mb']:7.0f}MB "
        f"({speedup:.1f}x)"
    )

    _record(
        "guard-store-load-1e6",
        load_col["elapsed"],
        load_jsonl["elapsed"],
        {
            "rss_mb": round(load_col["rss_mb"], 1),
            "jsonl_rss_mb": round(load_jsonl["rss_mb"], 1),
        },
    )
    _record(
        "guard-store-agg-1e6",
        agg_col["elapsed"],
        agg_jsonl["elapsed"],
        {
            "rss_mb": round(agg_col["rss_mb"], 1),
            "jsonl_rss_mb": round(agg_jsonl["rss_mb"], 1),
            "speedup_vs_jsonl": round(speedup, 1),
        },
    )

    assert speedup >= STORE_SPEEDUP_FLOOR, (
        f"columnar load+aggregate only {speedup:.1f}x faster than JSONL at "
        f"{rows} rows (floor {STORE_SPEEDUP_FLOOR}x)"
    )
    assert agg_col["rss_mb"] <= agg_jsonl["rss_mb"] * STORE_RSS_FRACTION, (
        f"columnar aggregation peaked at {agg_col['rss_mb']:.0f}MB vs JSONL "
        f"{agg_jsonl['rss_mb']:.0f}MB — chunk-bounded streaming lost its "
        f"memory edge"
    )
