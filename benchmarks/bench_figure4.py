"""Regenerates paper Figure 4: sweep B (1..10), m=10, eps=1, 1 crash.

Panels (a) normalized latency + upper bounds + fault-free references,
(b) latency with 0 vs c crashes, (c) average overhead (%), plus message
counts.  Series are printed in the paper's layout and written to
results/figure4.csv.
"""

from benchmarks.conftest import run_figure_bench


def test_figure4(benchmark):
    run_figure_bench(benchmark, 4)
