"""Message-count benchmarks: Proposition 5.1 and the §6 replication-traffic claim.

The paper's analytical claims:

* FTSA / FTBAR commit up to ``e(ε+1)²`` messages (§4.2);
* CAFT stays at ``e(ε+1)`` on fork / out-forest graphs (Proposition 5.1)
  and "drastically reduces the total number of messages" on general DAGs.

This bench measures committed message counts for every algorithm on both
graph families and prints them next to the analytical bounds.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import bench_graphs
from repro.core.caft import caft
from repro.dag.generators import random_dag, random_out_forest
from repro.platform.heterogeneity import (
    range_exec_matrix,
    scale_to_granularity,
    uniform_delay_platform,
)
from repro.platform.instance import ProblemInstance
from repro.schedulers.ftbar import ftbar
from repro.schedulers.ftsa import ftsa

EPSILONS = (1, 3)
M = 10


def _instance(graph, seed):
    platform = uniform_delay_platform(M, rng=seed + 1)
    rng = np.random.default_rng(seed + 2)
    E = range_exec_matrix(rng.uniform(1, 2, graph.num_tasks), M, rng=rng)
    E = scale_to_granularity(graph, platform, E, 1.0)
    return ProblemInstance(graph, platform, E)


def _campaign(graph_factory, trials):
    rows = []
    for eps in EPSILONS:
        acc = {"caft": [], "caft-paper": [], "ftsa": [], "ftbar": [], "e": []}
        for t in range(trials):
            graph = graph_factory(t)
            inst = _instance(graph, t)
            acc["e"].append(graph.num_edges)
            acc["caft"].append(caft(inst, eps, rng=t).message_count())
            acc["caft-paper"].append(
                caft(inst, eps, locking="paper", rng=t).message_count()
            )
            acc["ftsa"].append(ftsa(inst, eps, rng=t).message_count())
            acc["ftbar"].append(ftbar(inst, eps, rng=t).message_count())
        e = float(np.mean(acc["e"]))
        rows.append(
            dict(
                eps=eps,
                e=e,
                bound_one=e * (eps + 1),
                bound_sq=e * (eps + 1) ** 2,
                **{k: float(np.mean(v)) for k, v in acc.items() if k != "e"},
            )
        )
    return rows


def _print(rows, title):
    print(f"\n{title}")
    header = f"{'eps':>4} {'e':>7} {'e(ε+1)':>8} {'e(ε+1)²':>8} {'caft':>8} {'caft-pap':>8} {'ftsa':>8} {'ftbar':>8}"
    print(header)
    print("-" * len(header))
    for r in rows:
        print(
            f"{r['eps']:>4} {r['e']:>7.1f} {r['bound_one']:>8.1f} {r['bound_sq']:>8.1f} "
            f"{r['caft']:>8.1f} {r['caft-paper']:>8.1f} {r['ftsa']:>8.1f} {r['ftbar']:>8.1f}"
        )


def test_outforest_messages(benchmark):
    """Proposition 5.1: CAFT message count ≤ e(ε+1) on out-forests."""
    trials = bench_graphs(4)

    def run():
        return _campaign(lambda t: random_out_forest(60, rng=t), trials)

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    _print(rows, "out-forest graphs (Prop. 5.1 family)")
    for r in rows:
        # the literal algorithm carries the analytic guarantee
        assert r["caft-paper"] <= r["bound_one"] + 1e-9
        # the robust variant stays near it and far below the FTSA bound
        assert r["caft"] <= r["bound_one"] * 1.6
        assert r["ftsa"] <= r["bound_sq"] + 1e-9
        assert r["caft"] < r["ftsa"]


def test_random_dag_messages(benchmark):
    """§6: CAFT drastically reduces messages on general random DAGs."""
    trials = bench_graphs(4)

    def run():
        return _campaign(lambda t: random_dag(100, rng=t), trials)

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    _print(rows, "random DAGs (paper §6 family)")
    for r in rows:
        # the paper's claim, carried by the literal algorithm at any eps
        assert r["caft-paper"] < r["ftsa"]
        assert r["ftsa"] <= r["bound_sq"] + 1e-9
        if r["eps"] == 1:
            assert r["caft"] < r["ftsa"]
        else:
            # saturated regime (eps+1 ~ m/3): the robust variant's extra
            # correctness messages may slightly exceed FTSA's count
            # (EXPERIMENTS.md discusses this trade-off)
            assert r["caft"] <= r["ftsa"] * 1.25
