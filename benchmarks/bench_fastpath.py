"""Fast-path speedup benchmark: kernel + parallel engine vs the seed path.

Times the figure-1 campaign twice — once with the vectorized placement
kernel disabled and the campaign serial (``fast=False, workers=1``: the
seed code path), once with the kernel on and ``REPRO_WORKERS`` (default
4) worker processes — verifies the two runs produce **identical** rows,
and appends the timing pair to ``BENCH_fastpath.json`` at the repo root
so the perf trajectory is tracked across PRs.  A second pair does the
same for a routed-topology FTBAR campaign (ring, m = 20): the §7
scenario the route-aware kernel evaluator exists for.

Run it directly::

    PYTHONPATH=src REPRO_GRAPHS=2 python -m pytest benchmarks/bench_fastpath.py -s

The acceptance target for the fast-path PR is a ≥5× end-to-end speedup
at default figure sizes, and ≥2× for the routed FTBAR campaign (see
PERFORMANCE.md for recorded numbers; on single-core CI boxes the
workers contribute nothing and the kernel must carry the target alone).
"""

from __future__ import annotations

import json
import os
import time
from datetime import datetime, timezone

from benchmarks.conftest import bench_graphs, bench_workers
from repro.experiments.config import ExperimentConfig
from repro.experiments.figures import run_figure
from repro.experiments.harness import run_campaign

BENCH_LOG = os.path.abspath(
    os.path.join(os.path.dirname(__file__), "..", "BENCH_fastpath.json")
)


def append_bench_record(record: dict, path: str = BENCH_LOG) -> list[dict]:
    """Append ``record`` to the JSON timing series at ``path``."""
    series: list[dict] = []
    if os.path.exists(path):
        with open(path) as fh:
            try:
                series = json.load(fh)
            except json.JSONDecodeError:
                series = []
    series.append(record)
    with open(path, "w") as fh:
        json.dump(series, fh, indent=2)
        fh.write("\n")
    return series


def _timed_figure(number: int, graphs: int, fast: bool, workers: int):
    t0 = time.perf_counter()
    result = run_figure(number, num_graphs=graphs, fast=fast, workers=workers)
    return time.perf_counter() - t0, result


def test_fastpath_speedup():
    from repro.experiments.executors.process import effective_workers as _clamp

    graphs = bench_graphs(default=1)
    workers = bench_workers(default=4)
    effective_workers = max(1, _clamp(workers))

    baseline_s, baseline = _timed_figure(1, graphs, fast=False, workers=1)
    fast_s, fast = _timed_figure(1, graphs, fast=True, workers=workers)

    # The whole point of the fast path: identical science, less time.
    assert baseline.rows() == fast.rows(), "fast path changed campaign results"

    speedup = baseline_s / fast_s
    record = {
        "bench": "figure1",
        "timestamp": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "graphs_per_point": graphs,
        "workers_requested": workers,
        "workers_effective": effective_workers,
        "cpus": os.cpu_count(),
        "baseline_s": round(baseline_s, 3),
        "fast_s": round(fast_s, 3),
        "speedup": round(speedup, 2),
    }
    append_bench_record(record)
    print(
        f"\nfastpath: baseline {baseline_s:.2f}s -> fast {fast_s:.2f}s "
        f"({speedup:.1f}x, workers={workers}, graphs={graphs})"
    )
    # Hard floor: the fast path must never be slower.  The ≥5x target is
    # tracked in BENCH_fastpath.json / PERFORMANCE.md rather than asserted
    # here so shared CI boxes can't flake the suite.
    assert speedup > 1.5, f"fast path too slow: {speedup:.2f}x"


def test_routed_ftbar_speedup():
    """Routed-topology FTBAR campaign (ring, m = 20): kernel vs slow path.

    FTBAR's all-free-tasks re-scoring sweep is the heaviest consumer of
    trials, and sparse topologies were the slowest model before the
    route-aware evaluator (every trial rolled back per-hop link
    reservations).  The acceptance floor for the kernel extension is a
    2x end-to-end campaign speedup at m >= 20.
    """
    graphs = bench_graphs(default=1)
    config = ExperimentConfig(
        name="routed-ftbar-ring-m20",
        granularities=(1.0, 2.0),
        num_procs=20,
        epsilon=2,
        crashes=1,
        num_graphs=graphs,
        algorithms=("ftbar",),
        model="routed-oneport",
        topology="ring",
        description="FTBAR over a 20-processor ring (bench_fastpath)",
    )

    t0 = time.perf_counter()
    baseline = run_campaign(config.with_fast(False))
    baseline_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    fast = run_campaign(config)
    fast_s = time.perf_counter() - t0

    assert baseline.rows() == fast.rows(), "fast path changed routed results"

    speedup = baseline_s / fast_s
    record = {
        "bench": "ftbar-routed",
        "timestamp": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "topology": "ring",
        "num_procs": config.num_procs,
        "graphs_per_point": graphs,
        "cpus": os.cpu_count(),
        "baseline_s": round(baseline_s, 3),
        "fast_s": round(fast_s, 3),
        "speedup": round(speedup, 2),
    }
    append_bench_record(record)
    print(
        f"\nrouted ftbar: baseline {baseline_s:.2f}s -> fast {fast_s:.2f}s "
        f"({speedup:.1f}x, ring m={config.num_procs}, graphs={graphs})"
    )
    # Hard floor only (same anti-flake policy as test_fastpath_speedup):
    # the ≥2x acceptance target is tracked in the recorded series and
    # PERFORMANCE.md (measured 3.0x on the 1-CPU container).
    assert speedup > 1.5, f"routed fast path too slow: {speedup:.2f}x"
