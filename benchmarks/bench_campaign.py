"""Executor-comparison benchmark: serial vs process pool vs TCP workers.

Times the same small figure-1 campaign through all three executors,
verifies the rows are bit-identical (the executor stack's core
contract), and appends the timing triple to ``BENCH_fastpath.json`` so
the overhead of each execution path is tracked across PRs.

On a 1-CPU container the pool and socket paths pay pure overhead
(process spawn, worker interpreter start-up, JSON framing) — the numbers
quantify the fixed cost that multi-core boxes amortize into near-linear
scaling.  Run directly::

    PYTHONPATH=src REPRO_GRAPHS=2 python -m pytest benchmarks/bench_campaign.py -s
"""

from __future__ import annotations

import os
import socket
import time
from datetime import datetime, timezone

import pytest

from benchmarks.bench_fastpath import append_bench_record
from benchmarks.conftest import bench_graphs, bench_workers
from repro.experiments import SocketExecutor, run_figure


def _sockets_available() -> bool:
    try:
        probe = socket.create_server(("127.0.0.1", 0))
        probe.close()
        return True
    except OSError:
        return False


def _timed(executor) -> tuple[float, object]:
    graphs = bench_graphs(default=1)
    t0 = time.perf_counter()
    result = run_figure(1, num_graphs=graphs, executor=executor)
    return time.perf_counter() - t0, result


def test_campaign_executors():
    graphs = bench_graphs(default=1)
    workers = bench_workers(default=2)

    serial_s, serial = _timed("serial")
    process_s, process = _timed(f"process:{workers}")
    assert process.rows() == serial.rows(), "process executor changed rows"

    socket_s = None
    if _sockets_available():
        socket_s, socketed = _timed(
            SocketExecutor(spawn_workers=workers, timeout=600.0)
        )
        assert socketed.rows() == serial.rows(), "socket executor changed rows"

    record = {
        "bench": "campaign-executors",
        "timestamp": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "graphs_per_point": graphs,
        "workers": workers,
        "cpus": os.cpu_count(),
        "serial_s": round(serial_s, 3),
        "process_s": round(process_s, 3),
        "socket_s": round(socket_s, 3) if socket_s is not None else None,
    }
    append_bench_record(record)

    print(f"\ncampaign executors: figure1 x{graphs} graphs, {workers} workers")
    print(f"  serial   {serial_s:7.2f}s")
    print(f"  process  {process_s:7.2f}s ({serial_s / process_s:.2f}x vs serial)")
    if socket_s is not None:
        print(f"  socket   {socket_s:7.2f}s ({serial_s / socket_s:.2f}x vs serial)")
    else:
        print("  socket   skipped (sockets unavailable)")
