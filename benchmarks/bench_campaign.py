"""Executor-comparison benchmark: serial vs process pool vs TCP workers.

Times the same small figure-1 campaign through all three executors,
verifies the rows are bit-identical (the executor stack's core
contract), and appends the timing triple to ``BENCH_fastpath.json`` so
the overhead of each execution path is tracked across PRs.

On a 1-CPU container the pool and socket paths pay pure overhead
(process spawn, worker interpreter start-up, JSON framing) — the numbers
quantify the fixed cost that multi-core boxes amortize into near-linear
scaling.  Run directly::

    PYTHONPATH=src REPRO_GRAPHS=2 python -m pytest benchmarks/bench_campaign.py -s
"""

from __future__ import annotations

import os
import time
from datetime import datetime, timezone

import pytest

from benchmarks.bench_fastpath import append_bench_record
from benchmarks.conftest import bench_graphs, bench_workers
from repro.experiments import SocketExecutor, run_figure
from repro.experiments.executors import sockets_available


def _timed(executor) -> tuple[float, object]:
    graphs = bench_graphs(default=1)
    t0 = time.perf_counter()
    result = run_figure(1, num_graphs=graphs, executor=executor)
    return time.perf_counter() - t0, result


def test_campaign_lease_scaling():
    """Socket-executor wall clock at lease sizes {1, auto}.

    Lease 1 is the PR-3 protocol (one unit per round-trip); ``auto``
    adapts to observed unit latency and batches.  On a 1-CPU container
    the units dominate and auto must at least not regress; on many-
    worker masters the saved round-trips are the point.  The pair lands
    in BENCH_fastpath.json so lease scaling is tracked across PRs.
    """
    if not sockets_available():
        pytest.skip("localhost sockets unavailable")
    graphs = bench_graphs(default=1)
    workers = bench_workers(default=2)

    serial_s, serial = _timed("serial")
    lease1_s, leased1 = _timed(
        SocketExecutor(spawn_workers=workers, timeout=600.0, lease=1)
    )
    assert leased1.rows() == serial.rows(), "lease=1 changed rows"
    auto_s, auto = _timed(
        SocketExecutor(spawn_workers=workers, timeout=600.0, lease="auto")
    )
    assert auto.rows() == serial.rows(), "lease=auto changed rows"

    record = {
        "bench": "campaign-lease-scaling",
        "timestamp": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "graphs_per_point": graphs,
        "workers": workers,
        "cpus": os.cpu_count(),
        "serial_s": round(serial_s, 3),
        "socket_lease1_s": round(lease1_s, 3),
        "socket_auto_s": round(auto_s, 3),
    }
    append_bench_record(record)

    print(f"\ncampaign lease scaling: figure1 x{graphs} graphs, "
          f"{workers} socket workers")
    print(f"  serial        {serial_s:7.2f}s")
    print(f"  socket lease1 {lease1_s:7.2f}s")
    print(f"  socket auto   {auto_s:7.2f}s "
          f"({lease1_s / auto_s:.2f}x vs lease1)")


@pytest.mark.guard
def test_campaign_straggler_tail():
    """Tail latency with one 10x-slow worker: mitigation on vs off.

    Two spawned workers, one throttled to 10x its real unit time
    (``--slow-factor``), pinned 4-unit leases so the slow worker strands
    a meaty lease tail.  With stealing and speculation off the campaign
    ends when the straggler finishes its whole lease; with them on the
    master revokes the unstarted tail for the fast worker and the wall
    clock collapses to roughly one slow unit.  Guard-tier: the speedup
    is asserted against a floor, so a regression that quietly disables
    the mitigation (or breaks revocation) fails ``pytest benchmarks -m
    guard`` instead of only drifting in BENCH_fastpath.json.
    """
    if not sockets_available():
        pytest.skip("localhost sockets unavailable")
    graphs = bench_graphs(default=1)
    spawn = [["--slow-factor", "10"], []]

    def timed_straggler(speculate, steal):
        executor = SocketExecutor(
            spawn_workers=spawn, timeout=600.0, lease=4,
            speculate=speculate, steal=steal,
        )
        t0 = time.perf_counter()
        result = run_figure(1, num_graphs=graphs, executor=executor)
        return time.perf_counter() - t0, result, executor

    off_s, off, _ = timed_straggler("off", "off")
    on_s, on, mitigated = timed_straggler("auto", "auto")
    assert on.rows() == off.rows(), "straggler mitigation changed rows"
    speedup = off_s / on_s

    record = {
        "bench": "campaign-straggler-tail",
        "timestamp": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "graphs_per_point": graphs,
        "workers": 2,
        "cpus": os.cpu_count(),
        "straggler_off_s": round(off_s, 3),
        "straggler_on_s": round(on_s, 3),
        "speedup": round(speedup, 2),
        "stolen_units": mitigated.stolen_units,
        "speculative_attempts": mitigated.speculative_attempts,
    }
    append_bench_record(record)

    print(f"\ncampaign straggler tail: figure1 x{graphs} graphs, "
          f"2 socket workers (one 10x slow), lease=4")
    print(f"  mitigation off {off_s:7.2f}s")
    print(f"  mitigation on  {on_s:7.2f}s ({speedup:.2f}x, "
          f"{mitigated.stolen_units} stolen, "
          f"{mitigated.speculative_attempts} speculative)")

    # The slow worker's lease tail is ~3 slow units; stealing should
    # recover nearly all of it (~3x here).  The floor is deliberately
    # loose for shared-box noise — a broken mitigation lands at ~1.0x,
    # far below it.
    assert speedup >= 1.3, (
        f"straggler mitigation speedup {speedup:.2f}x below the 1.3x "
        f"floor (off {off_s:.2f}s, on {on_s:.2f}s) — lease revocation / "
        "speculation is no longer rescuing a slow worker's lease tail"
    )


@pytest.mark.guard
def test_campaign_service_submit_latency():
    """Submit-to-first-result latency against a *warm* campaign service.

    The persistent service's pitch over the one-shot socket master is
    amortized start-up: workers are already spawned, connected, and
    idle when a job arrives, so a submission should start producing
    rows in well under the cost of spawning a fresh master + workers.
    A first job warms the pool (paying interpreter start-up), then the
    measured job's submit->first-row latency is guarded against a loose
    ceiling — a regression that serializes submission behind worker
    respawn (or breaks idle-worker wakeup) lands far above it.
    """
    if not sockets_available():
        pytest.skip("localhost sockets unavailable")
    import tempfile

    from repro.experiments import apply_overrides, figure_spec
    from repro.experiments.service import CampaignService, ServiceClient

    spec = apply_overrides(
        figure_spec(1),
        {
            "graphs": 1,
            "config.granularities": [0.4],
            "config.num_procs": 6,
            "config.task_range": [12, 18],
        },
    )
    with tempfile.TemporaryDirectory() as root:
        with CampaignService(root, spawn_workers=2) as service:
            service.start()
            client = ServiceClient(service.address)
            warm = client.submit(spec, tenant="warmup")
            client.wait(warm["job_id"], timeout=600.0)

            t0 = time.perf_counter()
            snap = client.submit(spec, tenant="measured")
            first_result_s = None
            while time.perf_counter() - t0 < 60.0:
                status = client.status(snap["job_id"])
                if status["done"] >= 1:
                    first_result_s = time.perf_counter() - t0
                    break
                time.sleep(0.01)
            final = client.wait(snap["job_id"], timeout=600.0)
            total_s = time.perf_counter() - t0
    assert final["state"] == "done"
    assert first_result_s is not None, (
        "warm service produced no row within 60s of the submit"
    )

    record = {
        "bench": "campaign-service-latency",
        "timestamp": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "workers": 2,
        "cpus": os.cpu_count(),
        "units": final["total"],
        "submit_to_first_result_s": round(first_result_s, 3),
        "submit_to_done_s": round(total_s, 3),
    }
    append_bench_record(record)

    print(f"\ncampaign service latency: warm pool, 2 workers, "
          f"{final['total']} unit(s)")
    print(f"  submit -> first result {first_result_s:7.3f}s")
    print(f"  submit -> job done     {total_s:7.3f}s")

    # A warm pool answers in well under a second on an idle box; the
    # ceiling is deliberately loose for shared-box noise.  Paying a
    # worker (re)spawn or a wedged scheduling pass lands far above it.
    assert first_result_s < 10.0, (
        f"warm-service first result took {first_result_s:.2f}s (>= 10s "
        "floor) — submission is no longer served by the idle pool"
    )


def test_campaign_executors():
    graphs = bench_graphs(default=1)
    workers = bench_workers(default=2)

    serial_s, serial = _timed("serial")
    process_s, process = _timed(f"process:{workers}")
    assert process.rows() == serial.rows(), "process executor changed rows"

    socket_s = None
    if sockets_available():
        socket_s, socketed = _timed(
            SocketExecutor(spawn_workers=workers, timeout=600.0)
        )
        assert socketed.rows() == serial.rows(), "socket executor changed rows"

    record = {
        "bench": "campaign-executors",
        "timestamp": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "graphs_per_point": graphs,
        "workers": workers,
        "cpus": os.cpu_count(),
        "serial_s": round(serial_s, 3),
        "process_s": round(process_s, 3),
        "socket_s": round(socket_s, 3) if socket_s is not None else None,
    }
    append_bench_record(record)

    print(f"\ncampaign executors: figure1 x{graphs} graphs, {workers} workers")
    print(f"  serial   {serial_s:7.2f}s")
    print(f"  process  {process_s:7.2f}s ({serial_s / process_s:.2f}x vs serial)")
    if socket_s is not None:
        print(f"  socket   {socket_s:7.2f}s ({serial_s / socket_s:.2f}x vs serial)")
    else:
        print("  socket   skipped (sockets unavailable)")
