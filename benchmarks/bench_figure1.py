"""Regenerates paper Figure 1: sweep A (0.2..2.0), m=10, eps=1, 1 crash.

Panels (a) normalized latency + upper bounds + fault-free references,
(b) latency with 0 vs c crashes, (c) average overhead (%), plus message
counts.  Series are printed in the paper's layout and written to
results/figure1.csv.
"""

from benchmarks.conftest import run_figure_bench


def test_figure1(benchmark):
    run_figure_bench(benchmark, 1)
