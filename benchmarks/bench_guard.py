"""Perf-guard smoke target: tiny figure-1 campaign through the full fast
path (kernel + 2 workers), timed and appended to ``BENCH_fastpath.json``.

Cheap enough for every CI run (one graph per data point), so future PRs
accumulate a timing series and regressions in the hot paths show up as a
trend break::

    PYTHONPATH=src REPRO_GRAPHS=1 python -m pytest benchmarks/bench_guard.py -s
"""

from __future__ import annotations

import os
import time
from datetime import datetime, timezone

from benchmarks.bench_fastpath import append_bench_record
from repro.experiments.figures import check_shape, run_figure

GUARD_GRAPHS = max(1, int(os.environ.get("REPRO_GRAPHS", "1")))
GUARD_WORKERS = 2


def test_fastpath_guard():
    t0 = time.perf_counter()
    result = run_figure(1, num_graphs=GUARD_GRAPHS, workers=GUARD_WORKERS)
    elapsed = time.perf_counter() - t0

    shape = check_shape(result)
    assert shape.ok, f"shape checks failed: {shape.failed()}"

    record = {
        "bench": "guard",
        "timestamp": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "graphs_per_point": GUARD_GRAPHS,
        "workers": GUARD_WORKERS,
        "cpus": os.cpu_count(),
        "fast_s": round(elapsed, 3),
    }
    append_bench_record(record)
    print(f"\nguard: figure1 x{GUARD_GRAPHS} graphs in {elapsed:.2f}s (workers=2)")
