"""Perf-guard smoke target: tiny figure-1 campaign through the full fast
path (kernel + 2 workers), timed, appended to ``BENCH_fastpath.json``
and checked against a regression threshold derived from the recorded
series — so a hot-path regression fails CI loudly instead of only
drifting in the JSON numbers.

Runs as its own pytest tier (marker registered in ``pytest.ini``)::

    PYTHONPATH=src python -m pytest benchmarks -m guard -s

The threshold is the **median** of the most recent comparable guard
runs (same per-point graph count and CPU budget), times ``GUARD_SLACK``
— generous enough for shared-box noise (a single anomalously fast run
cannot ratchet the ceiling down for good), tight enough that an
accidental return to reserve-and-rollback trials (historically a 2-5x
hit) trips it.  The first run on a fresh series just records a
baseline.
"""

from __future__ import annotations

import json
import os
import statistics
import time
from datetime import datetime, timezone

import pytest

from benchmarks.bench_fastpath import BENCH_LOG, append_bench_record
from repro.experiments.config import ExperimentConfig
from repro.experiments.figures import check_shape, run_figure
from repro.experiments.harness import run_campaign

GUARD_GRAPHS = max(1, int(os.environ.get("REPRO_GRAPHS", "1")))
GUARD_WORKERS = 2
#: fail when slower than GUARD_SLACK x the median recent comparable run
GUARD_SLACK = 3.0
#: how many of the most recent comparable runs feed the median
GUARD_WINDOW = 5


def guard_threshold(
    path: str = BENCH_LOG,
    graphs: int = GUARD_GRAPHS,
    slack: float = GUARD_SLACK,
    bench: str = "guard",
) -> float | None:
    """Regression ceiling (seconds) from the recorded guard series.

    Median over the last ``GUARD_WINDOW`` comparable records of the
    ``bench`` series — the series is append-only, so a min() would let
    one anomalously fast run tighten the ceiling forever.  ``None``
    when no comparable record exists (first run, different graph count,
    or a different CPU budget — wall clock is only comparable on a
    same-shaped box).
    """
    if not os.path.exists(path):
        return None
    try:
        with open(path) as fh:
            series = json.load(fh)
    except json.JSONDecodeError:
        return None
    comparable = [
        rec["fast_s"]
        for rec in series
        if rec.get("bench") == bench
        and rec.get("graphs_per_point") == graphs
        and rec.get("cpus") == os.cpu_count()
        and isinstance(rec.get("fast_s"), (int, float))
        # runs that tripped the guard must not feed the window, or a
        # sustained regression would ratchet itself into the median and
        # start passing after a few failing runs
        and not rec.get("regression")
    ]
    if not comparable:
        return None
    return statistics.median(comparable[-GUARD_WINDOW:]) * slack


@pytest.mark.guard
def test_fastpath_guard():
    threshold = guard_threshold()

    t0 = time.perf_counter()
    result = run_figure(1, num_graphs=GUARD_GRAPHS, workers=GUARD_WORKERS)
    elapsed = time.perf_counter() - t0

    shape = check_shape(result)
    assert shape.ok, f"shape checks failed: {shape.failed()}"

    regressed = threshold is not None and elapsed > threshold
    record = {
        "bench": "guard",
        "timestamp": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "graphs_per_point": GUARD_GRAPHS,
        "workers": GUARD_WORKERS,
        "cpus": os.cpu_count(),
        "fast_s": round(elapsed, 3),
    }
    if regressed:
        record["regression"] = True
    append_bench_record(record)
    print(f"\nguard: figure1 x{GUARD_GRAPHS} graphs in {elapsed:.2f}s (workers=2)")

    # The record is appended *before* the assertion so a regression run
    # still lands in the series (the trend break stays visible), flagged
    # so it never feeds future thresholds.
    if regressed:
        raise AssertionError(
            f"fast-path regression: guard campaign took {elapsed:.2f}s, "
            f"threshold {threshold:.2f}s ({GUARD_SLACK}x median of the last "
            f"{GUARD_WINDOW} comparable runs in {os.path.basename(BENCH_LOG)})"
        )


#: within-2x-of-dense acceptance for the vectorized evaluators (m=40)
MODEL_GUARD_RATIO = 2.0


def _model_guard(bench: str, model: str, topology: str | None, policy: str):
    """m=40 FTBAR campaign for one contention model, gated two ways.

    Absolute: ``fast_s`` against ``GUARD_SLACK`` x the median of this
    bench's own recorded series (same ratchet-proof scheme as the
    figure-1 guard).  Relative: within ``MODEL_GUARD_RATIO`` of a
    dense-model run timed in the same process — the acceptance floor
    for the routed/insertion vectorization, immune to box speed.

    Both sides are min-of-2 with collection disabled inside the timed
    region: these are sub-2s campaigns on a shared (often single-CPU)
    box, where one stray GC pass over the heap left by earlier guard
    campaigns — or a scheduler hiccup — can double a single rep and
    turn the ratio gate into a coin flip.
    """
    import gc

    threshold = guard_threshold(bench=bench)

    def campaign(model, topology, policy):
        config = ExperimentConfig(
            name=f"{bench}-m40",
            granularities=(1.0,),
            num_procs=40,
            epsilon=2,
            crashes=1,
            num_graphs=GUARD_GRAPHS,
            algorithms=("ftbar",),
            model=model,
            topology=topology,
            port_policy=policy,
        )
        best = float("inf")
        for _ in range(2):
            gc.collect()
            gc.disable()
            try:
                t0 = time.perf_counter()
                run_campaign(config)
                best = min(best, time.perf_counter() - t0)
            finally:
                gc.enable()
        return best

    dense_s = campaign("oneport", None, "append")
    fast_s = campaign(model, topology, policy)
    ratio = fast_s / dense_s

    regressed = threshold is not None and fast_s > threshold
    record = {
        "bench": bench,
        "timestamp": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "num_procs": 40,
        "graphs_per_point": GUARD_GRAPHS,
        "cpus": os.cpu_count(),
        "fast_s": round(fast_s, 3),
        "dense_s": round(dense_s, 3),
        "ratio_vs_dense": round(ratio, 2),
    }
    if regressed:
        record["regression"] = True
    append_bench_record(record)
    print(
        f"\n{bench}: ftbar m=40 x{GUARD_GRAPHS} graphs in {fast_s:.2f}s "
        f"(dense {dense_s:.2f}s, {ratio:.2f}x)"
    )

    if regressed:
        raise AssertionError(
            f"fast-path regression: {bench} campaign took {fast_s:.2f}s, "
            f"threshold {threshold:.2f}s ({GUARD_SLACK}x median of the last "
            f"{GUARD_WINDOW} comparable runs in {os.path.basename(BENCH_LOG)})"
        )
    assert ratio < MODEL_GUARD_RATIO, (
        f"{bench}: m=40 campaign at {ratio:.2f}x the dense-model fast path "
        f"(floor {MODEL_GUARD_RATIO}x) — the vectorized evaluator lost its "
        f"edge over the dense kernel"
    )


@pytest.mark.guard
def test_routed_m40_guard():
    """Routed evaluator: ring m=40 within 2x of the dense fast path."""
    _model_guard("guard-routed-m40", "routed-oneport", "ring", "append")


@pytest.mark.guard
def test_insertion_m40_guard():
    """Insertion evaluator: gap timelines m=40 within 2x of dense."""
    _model_guard("guard-insertion-m40", "oneport", None, "insertion")
