"""Regenerates paper Figure 2: sweep A (0.2..2.0), m=10, eps=3, 2 crashes.

Panels (a) normalized latency + upper bounds + fault-free references,
(b) latency with 0 vs c crashes, (c) average overhead (%), plus message
counts.  Series are printed in the paper's layout and written to
results/figure2.csv.
"""

from benchmarks.conftest import run_figure_bench


def test_figure2(benchmark):
    run_figure_bench(benchmark, 2)
