"""Perf guard for the online workload subsystem (marker: ``guard``).

Runs the shipped ``figure_online`` spec — a Poisson arrival-rate sweep
with correlated failure domains — through the process executor, checks
the online shape invariants, and appends an ``online`` record to
``BENCH_fastpath.json``: wall clock, scheduling throughput (jobs
scheduled per second of bench time), and the p95 per-job response time
across reps.  Two ceilings guard regressions:

* **wall clock** — the same median-of-recent-comparable-runs threshold
  the fast-path guard uses (``guard_threshold(bench="online")``), so an
  accidental de-vectorization of the incremental scheduling path fails
  CI loudly;
* **latency percentile** — p95 response must stay within
  ``LATENCY_SLACK`` x the median recorded p95: the workload is fully
  seeded, so a drift here means the *policy* changed (dispatch order,
  width, sub-platform carving), not the machine.

Run it directly::

    PYTHONPATH=src python -m pytest benchmarks/bench_online.py -m guard -s
"""

from __future__ import annotations

import json
import os
import statistics
import time
from datetime import datetime, timezone

import numpy as np
import pytest

from benchmarks.bench_fastpath import BENCH_LOG, append_bench_record
from benchmarks.bench_guard import GUARD_WINDOW, guard_threshold
from repro.experiments.api import (
    CampaignSpec,
    apply_overrides,
    shipped_spec_paths,
)
from repro.experiments.online import check_online_shape

GUARD_GRAPHS = max(1, int(os.environ.get("REPRO_GRAPHS", "2")))
GUARD_WORKERS = 2
#: p95 response ceiling: slack over the median recorded percentile
LATENCY_SLACK = 1.5
#: the latency percentile the guard records and bounds
PERCENTILE = 95


def latency_ceiling(path: str = BENCH_LOG, graphs: int = GUARD_GRAPHS):
    """p95-response ceiling from the recorded ``online`` series.

    The workload is deterministic per (spec, graphs), so comparable
    records need the same graph count but *not* the same CPU budget —
    latency here is simulated time, not wall clock.  ``None`` on a
    fresh series.
    """
    if not os.path.exists(path):
        return None
    try:
        with open(path) as fh:
            series = json.load(fh)
    except json.JSONDecodeError:
        return None
    comparable = [
        rec["response_p95"]
        for rec in series
        if rec.get("bench") == "online"
        and rec.get("graphs_per_point") == graphs
        and isinstance(rec.get("response_p95"), (int, float))
        and not rec.get("regression")
    ]
    if not comparable:
        return None
    return statistics.median(comparable[-GUARD_WINDOW:]) * LATENCY_SLACK


@pytest.mark.guard
def test_online_guard():
    wall_threshold = guard_threshold(bench="online", graphs=GUARD_GRAPHS)
    p95_threshold = latency_ceiling()

    path = next(p for p in shipped_spec_paths() if p.stem == "figure_online")
    spec = apply_overrides(
        CampaignSpec.load(path),
        {
            "graphs": GUARD_GRAPHS,
            "executor.kind": "process",
            "executor.workers": GUARD_WORKERS,
        },
    )
    from repro.experiments.api import Campaign

    t0 = time.perf_counter()
    result = Campaign(spec).run().result()
    elapsed = time.perf_counter() - t0

    shape = check_online_shape(result)
    assert shape.ok, f"online shape checks failed: {shape.failed()}"

    reference = result.config.algorithms[0]
    responses = [
        rep.metrics[reference]["response_mean"] for rep in result.reps
    ]
    p95 = float(np.percentile(responses, PERCENTILE))
    jobs = result.config.arrival.num_jobs * len(result.reps)

    wall_regressed = wall_threshold is not None and elapsed > wall_threshold
    p95_regressed = p95_threshold is not None and p95 > p95_threshold
    record = {
        "bench": "online",
        "timestamp": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "graphs_per_point": GUARD_GRAPHS,
        "workers": GUARD_WORKERS,
        "cpus": os.cpu_count(),
        "fast_s": round(elapsed, 3),
        "jobs_per_s": round(jobs / elapsed, 1),
        "response_p95": round(p95, 3),
    }
    if wall_regressed or p95_regressed:
        record["regression"] = True
    append_bench_record(record)
    print(
        f"\nonline guard: {jobs} jobs over "
        f"{len(result.config.granularities)} rates in {elapsed:.2f}s "
        f"({jobs / elapsed:.0f} jobs/s, {reference} p95 response {p95:.1f})"
    )

    if wall_regressed:
        raise AssertionError(
            f"online scheduling regression: sweep took {elapsed:.2f}s, "
            f"threshold {wall_threshold:.2f}s"
        )
    if p95_regressed:
        raise AssertionError(
            f"online latency regression: {reference} p95 response "
            f"{p95:.2f}, ceiling {p95_threshold:.2f} "
            f"({LATENCY_SLACK}x recorded median)"
        )
