"""Sparse-interconnect benchmark (paper §7 extension).

Schedules the same workloads over a clique, ring, star and 2-D mesh of 10
(resp. 9) processors with routed one-port contention, reporting CAFT's
latency and message counts.  Richer connectivity must never lose to a
sparser subgraph topology on average.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import bench_graphs
from repro.comm.routed import RoutedOnePortNetwork
from repro.core.caft import caft
from repro.dag.generators import random_dag
from repro.platform.heterogeneity import range_exec_matrix, scale_to_granularity
from repro.platform.instance import ProblemInstance
from repro.platform.topology import Topology

EPS = 1


def _topologies():
    return {
        "clique": Topology.clique(10),
        "ring": Topology.ring(10),
        "star": Topology.star(10),
        "mesh3x3": Topology.mesh2d(3, 3),
    }


def test_topology_sweep(benchmark):
    trials = bench_graphs(3)
    topos = _topologies()

    def run():
        out = {}
        for name, topo in topos.items():
            platform = topo.to_platform()
            lats, msgs = [], []
            for t in range(trials):
                graph = random_dag(60, rng=t)
                rng = np.random.default_rng(t + 5)
                E = range_exec_matrix(
                    rng.uniform(1, 2, 60), topo.num_procs, rng=rng
                )
                E = scale_to_granularity(graph, platform, E, 1.0)
                inst = ProblemInstance(graph, platform, E)
                sched = caft(inst, EPS, model=RoutedOnePortNetwork(topo), rng=t)
                lats.append(sched.latency())
                msgs.append(sched.message_count())
            out[name] = (float(np.mean(lats)), float(np.mean(msgs)))
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\nrouted topologies (caft, eps=1, v=60):")
    for name, (lat, msgs) in out.items():
        print(f"  {name:8s} latency={lat:9.1f} msgs={msgs:7.1f}")
    # the clique dominates every sparse topology of the same radix
    clique = out["clique"][0]
    assert clique <= out["ring"][0]
    assert clique <= out["star"][0]
