"""Shared helpers for the benchmark suite.

Every figure bench runs the corresponding campaign once (via
``benchmark.pedantic``), prints the paper-style panels so the series can
be compared against the paper, and asserts the §6 qualitative shape.

Repetitions default to ``REPRO_GRAPHS`` (or 3) per data point for
wall-clock sanity; export ``REPRO_GRAPHS=60`` to reproduce the paper's
averaging (EXPERIMENTS.md records such runs).  ``REPRO_WORKERS=N`` fans
each campaign out over ``N`` worker processes (identical results — see
``repro.experiments.executors.ProcessExecutor``; campaign specs say
``executor = {kind = "process", workers = N}``).
"""

from __future__ import annotations

import os

import pytest

from repro.experiments.figures import check_shape, run_figure
from repro.experiments.report import render_figure, write_csv


def bench_graphs(default: int = 3) -> int:
    """Graphs per data point for benchmark runs."""
    return max(1, int(os.environ.get("REPRO_GRAPHS", default)))


def bench_workers(default: int = 1) -> int:
    """Worker processes for benchmark campaigns (``REPRO_WORKERS``)."""
    return max(1, int(os.environ.get("REPRO_WORKERS", default)))


def run_figure_bench(benchmark, number: int) -> None:
    """Run figure ``number`` once under the benchmark timer, print panels,
    persist the CSV under results/, and assert the paper's shape."""
    graphs = bench_graphs()

    result = benchmark.pedantic(
        run_figure,
        args=(number,),
        kwargs={"num_graphs": graphs, "workers": bench_workers()},
        rounds=1,
        iterations=1,
    )
    print()
    print(render_figure(result))
    out = os.path.join(os.path.dirname(__file__), "..", "results", f"figure{number}.csv")
    write_csv(result, os.path.abspath(out))
    shape = check_shape(result)
    assert shape.ok, f"shape checks failed: {shape.failed()}"
