"""Ablation benches for the design choices called out in DESIGN.md.

1. **Contention awareness** — the paper's motivating claim: schedules built
   under macro-dataflow assumptions mispredict badly once ports serialize.
   We schedule under each model and report latencies.
2. **Locking discipline** — literal Algorithm 5.2 vs the robust support
   discipline: latency, messages, and the fraction of single-crash
   scenarios each schedule actually survives.
3. **Port allocation policy** — append (paper eqs. (4)/(6)) vs
   insertion-based gap filling.
4. **Model variants** (§2) — bi-directional vs uni-directional one-port vs
   no comm/comp overlap.
5. **Batched mapping** (§7) — window sizes 1 / 4 / 10.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import bench_graphs
from repro.comm.oneport import OnePortNetwork
from repro.core.caft import caft
from repro.core.caft_batch import caft_batch
from repro.dag.generators import random_dag
from repro.fault.model import FailureScenario
from repro.fault.simulator import replay
from repro.platform.heterogeneity import (
    range_exec_matrix,
    scale_to_granularity,
    uniform_delay_platform,
)
from repro.platform.instance import ProblemInstance
from repro.schedulers.ftsa import ftsa

M = 10
EPS = 1


def _instances(trials, granularity=0.5, v=100):
    out = []
    for t in range(trials):
        graph = random_dag(v, rng=t)
        platform = uniform_delay_platform(M, rng=t + 1)
        rng = np.random.default_rng(t + 2)
        E = range_exec_matrix(rng.uniform(1, 2, v), M, rng=rng)
        E = scale_to_granularity(graph, platform, E, granularity)
        out.append(ProblemInstance(graph, platform, E))
    return out


def test_contention_awareness(benchmark):
    """FTSA latency under one-port vs macro-dataflow evaluation."""
    insts = _instances(bench_graphs(4))

    def run():
        one, macro = [], []
        for i, inst in enumerate(insts):
            one.append(ftsa(inst, EPS, model="oneport", rng=i).latency())
            macro.append(ftsa(inst, EPS, model="macro-dataflow", rng=i).latency())
        return float(np.mean(one)), float(np.mean(macro))

    one, macro = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nftsa latency: one-port={one:.1f}  macro-dataflow={macro:.1f} "
          f"(contention penalty x{one / macro:.2f})")
    assert one >= macro  # contention can only slow a schedule down


def test_locking_discipline(benchmark):
    """Robust vs literal CAFT: the price and value of provable tolerance."""
    insts = _instances(bench_graphs(4))

    def run():
        stats = {"support": [], "paper": []}
        for i, inst in enumerate(insts):
            for mode in stats:
                sched = caft(inst, EPS, locking=mode, rng=i)
                survived = 0
                for p in range(M):
                    if replay(sched, FailureScenario.crash_at_start([p])).success:
                        survived += 1
                stats[mode].append(
                    (sched.latency(), sched.message_count(), survived / M)
                )
        return {
            mode: tuple(np.mean(np.array(v), axis=0)) for mode, v in stats.items()
        }

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\nlocking ablation (eps=1, single-crash survival rate):")
    for mode, (lat, msgs, surv) in out.items():
        print(f"  {mode:8s} latency={lat:9.1f} msgs={msgs:7.1f} survival={surv:5.1%}")
    # the robust discipline must actually survive everything
    assert out["support"][2] == 1.0
    # ... and the literal one must demonstrate the flaw
    assert out["paper"][2] < 1.0


def test_port_policy(benchmark):
    """Append-only (paper) vs insertion-based port allocation."""
    insts = _instances(bench_graphs(4))

    def run():
        append_lat, insert_lat = [], []
        for i, inst in enumerate(insts):
            append_lat.append(caft(inst, EPS, rng=i).latency())
            net = OnePortNetwork(inst.platform, policy="insertion")
            insert_lat.append(caft(inst, EPS, model=net, rng=i).latency())
        return float(np.mean(append_lat)), float(np.mean(insert_lat))

    append_lat, insert_lat = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nport policy: append={append_lat:.1f} insertion={insert_lat:.1f}")
    assert insert_lat <= append_lat * 1.05  # gap filling should not hurt


def test_model_variants(benchmark):
    """§2 variants: bi-directional vs uni-port vs no-overlap."""
    insts = _instances(bench_graphs(3))

    def run():
        out = {}
        for model in ("oneport", "uniport", "oneport-nooverlap"):
            out[model] = float(
                np.mean([caft(inst, EPS, model=model, rng=i).latency()
                         for i, inst in enumerate(insts)])
            )
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\nmodel variants (caft, eps=1):")
    for model, lat in out.items():
        print(f"  {model:18s} {lat:9.1f}")
    assert out["uniport"] >= out["oneport"] * 0.95
    assert out["oneport-nooverlap"] >= out["oneport"] * 0.95


def test_ftsa_reselect(benchmark):
    """Paper's single-pass replica selection vs per-commit re-selection."""
    insts = _instances(bench_graphs(4))

    def run():
        single, re = [], []
        for i, inst in enumerate(insts):
            single.append(ftsa(inst, EPS, rng=i).latency())
            re.append(ftsa(inst, EPS, reselect=True, rng=i).latency())
        return float(np.mean(single)), float(np.mean(re))

    single, re = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nftsa replica selection: single-pass={single:.1f} re-select={re:.1f} "
          f"(improvement {100 * (single - re) / single:.1f}%)")
    assert re <= single * 1.05


def test_batched_mapping(benchmark):
    """§7 extension: window sizes 1 / 4 / 10."""
    insts = _instances(bench_graphs(3))

    def run():
        return {
            w: float(np.mean([
                caft_batch(inst, EPS, window=w, rng=i).latency()
                for i, inst in enumerate(insts)
            ]))
            for w in (1, 4, 10)
        }

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\nbatched caft (window sweep):")
    for w, lat in out.items():
        print(f"  window={w:<3d} {lat:9.1f}")
    assert all(v > 0 for v in out.values())
