"""Runtime-scaling benchmarks (Theorem 5.1 and the §4 complexity claims).

* CAFT runs in ``O(e·m·(ε+1)²·log(ε+1) + v·log ω)`` — near-linear in the
  number of edges for fixed platform;
* FTSA has the same flavour (``O(e·m²+v·log ω)`` in the paper);
* FTBAR is ``O(P·N³)`` — markedly superlinear in the task count.

The bench times each scheduler across growing task counts and asserts the
qualitative ordering: CAFT scales like FTSA, and FTBAR grows faster than
both.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.caft import caft
from repro.dag.generators import random_dag
from repro.platform.heterogeneity import (
    range_exec_matrix,
    scale_to_granularity,
    uniform_delay_platform,
)
from repro.platform.instance import ProblemInstance
from repro.schedulers.ftbar import ftbar
from repro.schedulers.ftsa import ftsa

SIZES = (50, 100, 200)
M = 10
EPS = 1


def _instance(v, seed=0):
    graph = random_dag(v, rng=seed)
    platform = uniform_delay_platform(M, rng=seed + 1)
    rng = np.random.default_rng(seed + 2)
    E = range_exec_matrix(rng.uniform(1, 2, v), M, rng=rng)
    E = scale_to_granularity(graph, platform, E, 1.0)
    return ProblemInstance(graph, platform, E)


def _time(fn) -> float:
    t0 = time.perf_counter()
    fn()
    return time.perf_counter() - t0


def test_scaling_with_tasks(benchmark):
    """Wall-clock of each scheduler across task counts (fixed m, ε)."""

    def run():
        rows = []
        for v in SIZES:
            inst = _instance(v)
            rows.append(
                dict(
                    v=v,
                    caft=_time(lambda: caft(inst, EPS, rng=0)),
                    ftsa=_time(lambda: ftsa(inst, EPS, rng=0)),
                    ftbar=_time(lambda: ftbar(inst, EPS, rng=0)),
                )
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\nruntime (s) vs task count (m=10, eps=1)")
    print(f"{'v':>6} {'caft':>9} {'ftsa':>9} {'ftbar':>9}")
    for r in rows:
        print(f"{r['v']:>6} {r['caft']:>9.3f} {r['ftsa']:>9.3f} {r['ftbar']:>9.3f}")

    # FTBAR (O(PN^3)) grows faster than CAFT between the extreme sizes.
    growth_caft = rows[-1]["caft"] / max(rows[0]["caft"], 1e-9)
    growth_ftbar = rows[-1]["ftbar"] / max(rows[0]["ftbar"], 1e-9)
    assert growth_ftbar > growth_caft


def test_scaling_with_epsilon(benchmark):
    """CAFT cost grows polynomially in (ε+1) — Theorem 5.1."""

    def run():
        inst = _instance(100)
        return {
            eps: _time(lambda: caft(inst, eps, rng=0)) for eps in (0, 1, 2, 3, 4)
        }

    times = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\ncaft runtime (s) vs epsilon (v=100, m=10)")
    for eps, t in times.items():
        print(f"  eps={eps}: {t:.3f}")
    assert times[3] > times[0]


def test_scheduler_throughput_caft(benchmark):
    """Single-schedule latency of CAFT at the paper's instance size."""
    inst = _instance(100)
    benchmark(lambda: caft(inst, 1, rng=0))


def test_scheduler_throughput_ftsa(benchmark):
    inst = _instance(100)
    benchmark(lambda: ftsa(inst, 1, rng=0))


def test_scheduler_throughput_ftbar(benchmark):
    inst = _instance(100)
    benchmark(lambda: ftbar(inst, 1, rng=0))
