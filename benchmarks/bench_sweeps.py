"""Extension sweeps: heterogeneity and platform size (beyond the paper).

The paper fixes the unrelated-machine spread and evaluates m ∈ {10, 20}
only; these benches vary those dimensions at the paper's central
granularity (g = 1) and check that the contention-awareness advantage is
not an artifact of one heterogeneity setting or platform size.
"""

from __future__ import annotations

from benchmarks.conftest import bench_graphs
from repro.experiments.extra import (
    heterogeneity_sweep,
    platform_size_sweep,
    sweep_table,
)


def test_heterogeneity_sweep(benchmark):
    graphs = bench_graphs(3)

    def run():
        return heterogeneity_sweep(
            factors=(0.0, 0.5, 1.0, 1.5), num_graphs=graphs
        )

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\nnormalized latency vs heterogeneity (m=10, eps=1, g=1):")
    print(sweep_table(results, metric="norm_latency", label="h"))
    print("\nmessages vs heterogeneity:")
    print(sweep_table(results, metric="messages", label="h"))
    # CAFT (either variant) keeps beating FTSA at every heterogeneity level
    for _h, point in results:
        best_caft = min(
            point.per_algorithm["caft"].mean("norm_latency"),
            point.per_algorithm["caft-paper"].mean("norm_latency"),
        )
        assert best_caft < point.per_algorithm["ftsa"].mean("norm_latency") * 1.05


def test_platform_size_sweep(benchmark):
    graphs = bench_graphs(3)

    def run():
        return platform_size_sweep(sizes=(5, 10, 20, 40), num_graphs=graphs)

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\nnormalized latency vs platform size (eps=1, g=1):")
    print(sweep_table(results, metric="norm_latency", label="m"))
    # more processors can only help (weak check: m=40 beats m=5 for caft)
    first = results[0][1].per_algorithm["caft"].mean("norm_latency")
    last = results[-1][1].per_algorithm["caft"].mean("norm_latency")
    assert last <= first
